"""Tests for the container cleaner (secure repacking)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers.cleaner import ContainerCleaner, SecurityViolation
from repro.containers.matching import MatchLevel
from repro.containers.volumes import VolumeKind, VolumeStore

from conftest import make_container, make_image


@pytest.fixture
def cleaner():
    return ContainerCleaner(VolumeStore())


class TestInitialMount:
    def test_mounts_all_volume_groups(self, cleaner):
        c = make_container(1)
        vols = cleaner.initial_mount(c, "f")
        assert c.mounted_volumes == vols
        assert {v.kind for v in vols} == {
            VolumeKind.LANGUAGE, VolumeKind.RUNTIME, VolumeKind.USER_DATA
        }

    def test_mount_counted(self, cleaner):
        cleaner.initial_mount(make_container(1), "f")
        assert cleaner.store.mount_count == 3


class TestRepack:
    def test_repack_same_stack_swaps_only_user_data(self, cleaner):
        c = make_container(1)
        cleaner.initial_mount(c, "f1")
        result = cleaner.repack(c, make_image("same"), "f2")
        assert result.match is MatchLevel.L3
        # Language and runtime volumes are identical content -> kept.
        assert [v.kind for v in result.unmounted] == [VolumeKind.USER_DATA]
        assert [v.kind for v in result.mounted] == [VolumeKind.USER_DATA]

    def test_repack_updates_image(self, cleaner):
        c = make_container(1)
        cleaner.initial_mount(c, "f1")
        new_image = make_image("new", runtime_names=("numpy",))
        cleaner.repack(c, new_image, "f2")
        assert c.image is new_image

    def test_repack_l2_swaps_runtime_volume(self, cleaner):
        c = make_container(1)  # flask runtime
        cleaner.initial_mount(c, "f1")
        result = cleaner.repack(c, make_image("n", runtime_names=("numpy",)),
                                "f2")
        assert result.match is MatchLevel.L2
        unmounted_kinds = {v.kind for v in result.unmounted}
        assert VolumeKind.RUNTIME in unmounted_kinds

    def test_repack_os_mismatch_is_security_violation(self, cleaner):
        c = make_container(1, image=make_image("a", os_name="alpine"))
        cleaner.initial_mount(c, "f1")
        with pytest.raises(SecurityViolation):
            cleaner.repack(c, make_image("d", os_name="debian"), "f2")

    def test_no_foreign_user_data_after_repack(self, cleaner):
        c = make_container(1)
        cleaner.initial_mount(c, "alice")
        cleaner.repack(c, make_image("x", runtime_names=("numpy",)), "bob")
        owners = [
            v.owner_function
            for v in c.mounted_volumes
            if v.kind is VolumeKind.USER_DATA
        ]
        assert owners == ["bob"]

    def test_repack_count(self, cleaner):
        c = make_container(1)
        cleaner.initial_mount(c, "f1")
        cleaner.repack(c, make_image("x"), "f2")
        cleaner.repack(c, make_image("y"), "f3")
        assert cleaner.repack_count == 2


# -- property: user-data isolation holds under arbitrary repack chains --------

functions = st.sampled_from(["alice", "bob", "carol", "dave"])
runtimes = st.sets(st.sampled_from(["flask", "numpy", "pandas"]), max_size=2)
langs = st.sampled_from(["python", "nodejs"])


@given(st.lists(st.tuples(functions, langs, runtimes), min_size=1,
                max_size=12))
def test_user_data_isolation_invariant(chain):
    """After any chain of repacks, only the current user's data is mounted."""
    cleaner = ContainerCleaner(VolumeStore())
    first_fn, first_lang, first_rts = chain[0]
    container = make_container(
        1, image=make_image("img0", lang_name=first_lang,
                            runtime_names=tuple(first_rts))
    )
    cleaner.initial_mount(container, first_fn)
    current = first_fn
    for i, (fn, lang, rts) in enumerate(chain[1:], start=1):
        new_image = make_image(f"img{i}", lang_name=lang,
                               runtime_names=tuple(rts))
        cleaner.repack(container, new_image, fn)
        current = fn
        for vol in container.mounted_volumes:
            if vol.kind is VolumeKind.USER_DATA:
                assert vol.owner_function == current
