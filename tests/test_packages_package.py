"""Unit tests for the Package / PackageSet value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packages.package import Package, PackageLevel, PackageSet

from conftest import make_package


class TestPackage:
    def test_key_combines_name_and_version(self):
        pkg = make_package("numpy", "1.24")
        assert pkg.key == "numpy==1.24"

    def test_same_name_different_version_are_different(self):
        a = make_package("numpy", "1.24")
        b = make_package("numpy", "1.25")
        assert a != b

    def test_equality_ignores_metadata(self):
        a = Package("x", "1", PackageLevel.OS, 10.0, 0.1)
        b = Package("x", "1", PackageLevel.RUNTIME, 99.0, 9.9)
        assert a == b  # identity is (name, version) only

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Package("", "1", PackageLevel.OS, 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Package("x", "1", PackageLevel.OS, -1.0)

    def test_negative_install_cost_rejected(self):
        with pytest.raises(ValueError):
            Package("x", "1", PackageLevel.OS, 1.0, install_cost_s=-0.5)

    def test_level_labels(self):
        assert PackageLevel.OS.label == "L1"
        assert PackageLevel.LANGUAGE.label == "L2"
        assert PackageLevel.RUNTIME.label == "L3"

    def test_levels_are_ordered_by_depth(self):
        assert PackageLevel.OS < PackageLevel.LANGUAGE < PackageLevel.RUNTIME


class TestPackageSet:
    def test_partitions_by_level(self):
        os_pkg = make_package("alpine", "3", PackageLevel.OS)
        lang = make_package("python", "3.9", PackageLevel.LANGUAGE)
        rt = make_package("flask", "2", PackageLevel.RUNTIME)
        ps = PackageSet([os_pkg, lang, rt])
        assert ps.os_packages == frozenset([os_pkg])
        assert ps.language_packages == frozenset([lang])
        assert ps.runtime_packages == frozenset([rt])

    def test_len_and_iteration(self):
        pkgs = [make_package(f"p{i}") for i in range(5)]
        ps = PackageSet(pkgs)
        assert len(ps) == 5
        assert set(ps) == set(pkgs)

    def test_duplicates_collapse(self):
        pkg = make_package("x")
        ps = PackageSet([pkg, pkg, make_package("x")])
        assert len(ps) == 1

    def test_equality_and_hash(self):
        a = PackageSet([make_package("a"), make_package("b")])
        b = PackageSet([make_package("b"), make_package("a")])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_with_other_types(self):
        assert PackageSet() != "not a set"

    def test_total_size(self):
        ps = PackageSet([make_package("a", size_mb=3.0),
                         make_package("b", size_mb=7.0)])
        assert ps.total_size_mb == pytest.approx(10.0)

    def test_level_size(self):
        ps = PackageSet([
            make_package("os1", level=PackageLevel.OS, size_mb=5.0),
            make_package("rt1", level=PackageLevel.RUNTIME, size_mb=11.0),
        ])
        assert ps.level_size_mb(PackageLevel.OS) == pytest.approx(5.0)
        assert ps.level_size_mb(PackageLevel.RUNTIME) == pytest.approx(11.0)
        assert ps.level_size_mb(PackageLevel.LANGUAGE) == 0.0

    def test_level_install_cost(self):
        ps = PackageSet([
            make_package("a", level=PackageLevel.LANGUAGE, install_cost_s=0.4),
            make_package("b", level=PackageLevel.LANGUAGE, install_cost_s=0.6),
        ])
        assert ps.level_install_cost_s(PackageLevel.LANGUAGE) == pytest.approx(1.0)

    def test_union(self):
        a = PackageSet([make_package("a")])
        b = PackageSet([make_package("b")])
        assert set((a.union(b)).names()) == {"a==1.0", "b==1.0"}

    def test_names(self):
        ps = PackageSet([make_package("x", "2.0")])
        assert ps.names() == frozenset({"x==2.0"})

    def test_contains(self):
        pkg = make_package("x")
        assert pkg in PackageSet([pkg])
        assert make_package("y") not in PackageSet([pkg])


@given(
    sizes=st.lists(st.floats(min_value=0.0, max_value=1e4,
                             allow_nan=False), min_size=0, max_size=20)
)
def test_total_size_is_sum_of_unique_packages(sizes):
    pkgs = [make_package(f"p{i}", size_mb=s) for i, s in enumerate(sizes)]
    ps = PackageSet(pkgs)
    assert ps.total_size_mb == pytest.approx(sum(sizes))


@given(st.integers(min_value=0, max_value=30))
def test_packageset_levels_partition_everything(n):
    levels = [PackageLevel.OS, PackageLevel.LANGUAGE, PackageLevel.RUNTIME]
    pkgs = [make_package(f"p{i}", level=levels[i % 3]) for i in range(n)]
    ps = PackageSet(pkgs)
    total = sum(len(ps.level_set(lvl)) for lvl in levels)
    assert total == len(ps) == n
