"""Tests for per-worker pool sharding (PoolSet)."""

import pytest

from repro.cluster.eviction import RejectNewcomerEviction
from repro.cluster.pool import PoolFullError, PoolSet
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.fstartbench import overall_workload
from repro.workloads.workload import Workload

from conftest import make_image, make_invocation, make_spec
from test_cluster_pool import small_container


class TestPoolSet:
    def test_single_shard_degenerates_to_global(self):
        ps = PoolSet(300.0, n_shards=1)
        ps.add(small_container(1), 0)
        ps.add(small_container(2), 3)  # index wraps to shard 0
        assert len(ps) == 2
        assert ps.used_mb == pytest.approx(200.0)

    def test_per_shard_capacity(self):
        ps = PoolSet(200.0, n_shards=2)  # 100 MB per shard
        ps.add(small_container(1), 0)
        with pytest.raises(PoolFullError):
            ps.add(small_container(2), 0)  # shard 0 full
        ps.add(small_container(3), 1)      # shard 1 has room
        assert len(ps) == 2

    def test_aggregate_capacity(self):
        ps = PoolSet(400.0, n_shards=4)
        assert ps.capacity_mb == pytest.approx(400.0)
        assert ps.shard(0).capacity_mb == pytest.approx(100.0)

    def test_remove_routes_to_owning_shard(self):
        ps = PoolSet(400.0, n_shards=2)
        c = small_container(1)
        ps.add(c, 1)
        assert ps.remove(1) is c
        assert 1 not in ps

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            PoolSet(100.0).remove(7)

    def test_get_and_contains(self):
        ps = PoolSet(400.0, n_shards=2)
        c = small_container(1)
        ps.add(c, 0)
        assert ps.get(1) is c
        assert ps.get(2) is None
        assert 1 in ps and 2 not in ps

    def test_merged_lru_order(self):
        ps = PoolSet(1000.0, n_shards=2)
        old = small_container(1, last_used=1.0)
        newer = small_container(2, last_used=5.0)
        middle = small_container(3, last_used=3.0)
        ps.add(newer, 0)
        ps.add(old, 1)
        ps.add(middle, 0)
        assert [c.container_id for c in ps.lru_order()] == [1, 3, 2]

    def test_shard_of(self):
        ps = PoolSet(400.0, n_shards=2)
        ps.add(small_container(1), 1)
        assert ps.shard_of(1) is ps.shard(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolSet(100.0, n_shards=0)
        with pytest.raises(ValueError):
            PoolSet(-1.0)


class TestShardedSimulation:
    def _run(self, per_worker: bool, scheduler_cls=GreedyMatchScheduler):
        workload = overall_workload(seed=0, n=120)
        scheduler = scheduler_cls()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=1200.0, n_workers=4,
                             per_worker_pools=per_worker),
            scheduler.make_eviction_policy(),
        )
        return sim.run(workload, scheduler).telemetry

    def test_sharded_run_completes(self):
        t = self._run(per_worker=True)
        assert t.n_invocations == 120

    def test_sharding_respects_per_worker_capacity(self):
        workload = overall_workload(seed=0, n=120)
        scheduler = GreedyMatchScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=1200.0, n_workers=4,
                             per_worker_pools=True),
            scheduler.make_eviction_policy(),
        )
        sim.run(workload, scheduler)
        for i in range(4):
            shard = sim.pool.shard(i)
            assert shard.peak_used_mb <= shard.capacity_mb + 1e-6

    def test_sharding_is_no_better_than_global(self):
        """Fragmented capacity cannot beat the pooled global capacity
        (it can strand space on the wrong worker)."""
        global_t = self._run(per_worker=False)
        sharded_t = self._run(per_worker=True)
        assert (sharded_t.total_startup_latency_s
                >= 0.95 * global_t.total_startup_latency_s)

    def test_lru_under_sharding(self):
        t = self._run(per_worker=True, scheduler_cls=LRUScheduler)
        assert t.cold_starts >= 1
        assert t.peak_warm_memory_mb <= 1200.0 + 1e-6


class TestShardedTTLAndEviction:
    """per_worker_pools combined with TTL expiry and eviction."""

    def test_expire_older_than_spans_all_shards(self):
        ps = PoolSet(1000.0, n_shards=2)
        ps.add(small_container(1, last_used=1.0), 0)
        ps.add(small_container(2, last_used=2.0), 1)
        ps.add(small_container(3, last_used=9.0), 0)
        expired = ps.expire_older_than(5.0)
        assert sorted(c.container_id for c in expired) == [1, 2]
        assert 3 in ps and 1 not in ps and 2 not in ps

    def test_expired_container_is_rekeyed_out_of_shard_map(self):
        ps = PoolSet(1000.0, n_shards=2)
        ps.add(small_container(1, last_used=1.0), 1)
        ps.expire_older_than(5.0)
        with pytest.raises(KeyError):
            ps.shard_of(1)
        # The id can re-enter on a different shard after expiry.
        ps.add(small_container(1, last_used=10.0), 0)
        assert ps.shard_of(1) is ps.shard(0)

    def _ttl_sim(self, ttl_s=600.0, n_workers=2):
        return ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0, n_workers=n_workers,
                             per_worker_pools=True),
            RejectNewcomerEviction(ttl_s=ttl_s),
        )

    def test_ttl_expiry_in_sharded_run(self):
        spec = make_spec(name="fa", image=make_image("a"))
        wl = Workload.from_invocations("ttl", [
            make_invocation(spec, 0, arrival_time=0.0, execution_time_s=0.5),
            # Arrives long after the TTL: the pooled container must expire
            # from its shard, forcing a second cold start.
            make_invocation(spec, 1, arrival_time=2000.0),
        ])
        sim = self._ttl_sim()
        t = sim.run(wl, LRUScheduler()).telemetry
        assert t.ttl_expirations == 1
        assert t.cold_starts == 2
        assert len(sim.pool) == 1  # only the second container remains

    def test_ttl_and_eviction_account_exactly_once_per_container(self):
        workload = overall_workload(seed=0, n=150)
        scheduler = GreedyMatchScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=1200.0, n_workers=4,
                             per_worker_pools=True),
            RejectNewcomerEviction(ttl_s=60.0),
        )
        t = sim.run(workload, scheduler).telemetry
        assert t.ttl_expirations > 0
        # Conservation: every created container is either still live
        # (pooled or executing) or left exactly one destruction record.
        destroyed = (t.evictions + t.ttl_expirations
                     + t.keep_alive_rejections + t.container_crashes)
        created = t.cold_starts
        assert destroyed <= created
        assert len(sim.lifecycle.live_containers()) == created - destroyed

    def test_sharded_ttl_respects_per_shard_recency(self):
        # Two workers; the container on shard 0 is older than the TTL
        # threshold, the one on shard 1 is fresh -- only the former expires.
        sim = self._ttl_sim(ttl_s=100.0)
        ps = sim.pool
        ps.add(small_container(1, last_used=0.0), 0)
        ps.add(small_container(2, last_used=150.0), 1)
        sim.lifecycle._live[1] = ps.get(1)
        sim.lifecycle._live[2] = ps.get(2)
        sim.placement.place(1, 100.0, 0.0)
        sim.placement.place(2, 100.0, 0.0)
        sim.lifecycle.expire_ttl(now=160.0)
        assert sim.telemetry.ttl_expirations == 1
        assert 1 not in ps and 2 in ps
