"""Tests for losses, optimizers and epsilon schedules."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.drl.layers import Parameter
from repro.drl.losses import huber_loss, mse_loss
from repro.drl.optim import SGD, Adam
from repro.drl.schedules import ConstantEpsilon, LinearDecayEpsilon


class TestMSE:
    def test_zero_at_target(self):
        x = np.array([1.0, 2.0])
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros(2))

    def test_value(self):
        loss, _ = mse_loss(np.array([0.0, 2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.0)

    def test_grad_matches_numeric(self, rng):
        pred = rng.normal(size=5)
        target = rng.normal(size=5)
        _, grad = mse_loss(pred, target)
        eps = 1e-6
        for i in range(5):
            p = pred.copy()
            p[i] += eps
            up, _ = mse_loss(p, target)
            p[i] -= 2 * eps
            down, _ = mse_loss(p, target)
            assert grad[i] == pytest.approx((up - down) / (2 * eps), abs=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros(2), np.zeros(3))


class TestHuber:
    def test_quadratic_region(self):
        loss, grad = huber_loss(np.array([0.5]), np.array([0.0]), delta=1.0)
        assert loss == pytest.approx(0.125)
        assert grad[0] == pytest.approx(0.5)

    def test_linear_region(self):
        loss, grad = huber_loss(np.array([3.0]), np.array([0.0]), delta=1.0)
        assert loss == pytest.approx(2.5)
        assert grad[0] == pytest.approx(1.0)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            huber_loss(np.zeros(1), np.zeros(1), delta=0.0)

    @given(st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_grad_bounded_by_delta(self, x):
        _, grad = huber_loss(np.array([x]), np.array([0.0]), delta=1.0)
        assert abs(grad[0]) <= 1.0 + 1e-12

    @given(st.floats(min_value=-5, max_value=5, allow_nan=False))
    def test_huber_below_mse(self, x):
        h, _ = huber_loss(np.array([x]), np.array([0.0]))
        m, _ = mse_loss(np.array([x]), np.array([0.0]))
        assert h <= m / 2 + 0.51 * x**2 + 1e-9  # huber <= quadratic envelope


class TestOptimizers:
    def _quadratic_descent(self, make_opt, steps=200):
        """Minimize ||p - t||^2 and return the final distance."""
        rng = np.random.default_rng(0)
        target = rng.normal(size=4)
        p = Parameter(np.zeros(4))
        opt = make_opt([p])
        for _ in range(steps):
            opt.zero_grad()
            p.grad += 2 * (p.value - target)
            opt.step()
        return float(np.abs(p.value - target).max())

    def test_sgd_converges(self):
        assert self._quadratic_descent(lambda ps: SGD(ps, lr=0.1)) < 1e-6

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(
            lambda ps: SGD(ps, lr=0.05, momentum=0.9)
        ) < 1e-6

    def test_adam_converges(self):
        assert self._quadratic_descent(lambda ps: Adam(ps, lr=0.1)) < 1e-4

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_grad_clipping(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad += np.full(4, 100.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_leaves_small_grads(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad += 0.01
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, 0.01)


class TestSchedules:
    def test_constant(self):
        s = ConstantEpsilon(0.3)
        assert s.value(0) == s.value(10_000) == 0.3

    def test_constant_bounds(self):
        with pytest.raises(ValueError):
            ConstantEpsilon(1.5)

    def test_linear_decay_endpoints(self):
        s = LinearDecayEpsilon(1.0, 0.1, 100)
        assert s.value(0) == pytest.approx(1.0)
        assert s.value(100) == pytest.approx(0.1)
        assert s.value(10_000) == pytest.approx(0.1)

    def test_linear_decay_midpoint(self):
        s = LinearDecayEpsilon(1.0, 0.0, 100)
        assert s.value(50) == pytest.approx(0.5)

    def test_monotone(self):
        s = LinearDecayEpsilon(0.9, 0.05, 1000)
        values = [s.value(i) for i in range(0, 2000, 37)]
        assert values == sorted(values, reverse=True)

    def test_bad_decay_steps(self):
        with pytest.raises(ValueError):
            LinearDecayEpsilon(decay_steps=0)
