"""Tests for structured event tracing."""

import json

import pytest

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.cluster.telemetry import Telemetry, TraceEvent
from repro.schedulers.lru import LRUScheduler
from repro.workloads.fstartbench import overall_workload


class TestTraceEvent:
    def test_to_json_roundtrip(self):
        event = TraceEvent(1.5, "cold_start", 3, "fn", "latency=2.1s")
        data = json.loads(event.to_json())
        assert data["kind"] == "cold_start"
        assert data["container"] == 3
        assert data["function"] == "fn"


class TestTelemetryTrace:
    def test_disabled_by_default(self):
        t = Telemetry()
        t.record_event(0.0, "x")
        assert t.trace == []

    def test_enabled_records(self):
        t = Telemetry(trace_enabled=True)
        t.record_event(0.0, "x", 1, "f")
        assert len(t.trace) == 1

    def test_jsonl_output(self, tmp_path):
        t = Telemetry(trace_enabled=True)
        t.record_event(0.0, "a")
        t.record_event(1.0, "b", 2, "g", "d")
        path = t.trace_to_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)


class TestSimulatorTracing:
    @pytest.fixture(scope="class")
    def telemetry(self):
        workload = overall_workload(seed=0, n=60)
        scheduler = LRUScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=800.0, trace=True),
            scheduler.make_eviction_policy(),
        )
        return sim.run(workload, scheduler).telemetry

    def test_start_events_match_invocations(self, telemetry):
        starts = [e for e in telemetry.trace
                  if e.kind.startswith(("cold_", "warm_"))]
        assert len(starts) == telemetry.n_invocations

    def test_completion_events_present(self, telemetry):
        completes = [e for e in telemetry.trace
                     if e.kind == "execution_complete"]
        assert len(completes) == telemetry.n_invocations

    def test_eviction_events_match_counter(self, telemetry):
        evictions = [e for e in telemetry.trace if e.kind == "eviction"]
        assert len(evictions) == telemetry.evictions

    def test_events_time_ordered(self, telemetry):
        times = [e.time for e in telemetry.trace]
        assert times == sorted(times)

    def test_untraced_run_is_empty(self):
        workload = overall_workload(seed=0, n=20)
        scheduler = LRUScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=800.0),
            scheduler.make_eviction_policy(),
        )
        t = sim.run(workload, scheduler).telemetry
        assert t.trace == []
