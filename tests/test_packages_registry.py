"""Tests for the synthetic Docker Hub registry (Fig. 3 substrate)."""

import pytest

from repro.packages.package import PackageLevel
from repro.packages.registry import RegistryImage, SyntheticRegistry


class TestRegistryImage:
    def test_negative_pulls_rejected(self):
        with pytest.raises(ValueError):
            RegistryImage("x", PackageLevel.OS, -1)


class TestSyntheticRegistry:
    def test_default_has_1000_images(self):
        assert len(SyntheticRegistry().images()) == 1000

    def test_images_sorted_by_popularity(self):
        pulls = [im.pull_count for im in SyntheticRegistry().images()]
        assert pulls == sorted(pulls, reverse=True)

    def test_top4_base_share_matches_paper(self):
        share = SyntheticRegistry().top_k_share(PackageLevel.OS, 4)
        assert 0.70 <= share <= 0.84  # paper: ~77 %

    def test_named_heads_present(self):
        reg = SyntheticRegistry()
        base_names = {im.name for im in reg.images_at_level(PackageLevel.OS)}
        assert {"ubuntu", "alpine", "busybox", "centos"} <= base_names
        lang_names = {im.name
                      for im in reg.images_at_level(PackageLevel.LANGUAGE)}
        assert {"python", "openjdk", "golang"} <= lang_names

    def test_three_levels_partition(self):
        reg = SyntheticRegistry()
        total = sum(
            len(reg.images_at_level(lvl)) for lvl in PackageLevel
        )
        assert total == reg.n_images

    def test_popularity_weights_normalized(self):
        reg = SyntheticRegistry()
        for level in PackageLevel:
            weights = reg.popularity_weights(level)
            assert sum(weights.values()) == pytest.approx(1.0)
            assert all(w >= 0 for w in weights.values())

    def test_top_k_share_monotone_in_k(self):
        reg = SyntheticRegistry()
        shares = [reg.top_k_share(PackageLevel.OS, k) for k in range(1, 8)]
        assert shares == sorted(shares)

    def test_full_share_is_one(self):
        reg = SyntheticRegistry()
        n = len(reg.images_at_level(PackageLevel.OS))
        assert reg.top_k_share(PackageLevel.OS, n) == pytest.approx(1.0)

    def test_determinism(self):
        a = SyntheticRegistry(seed=3).images()
        b = SyntheticRegistry(seed=3).images()
        assert a == b

    def test_too_few_images_rejected(self):
        with pytest.raises(ValueError):
            SyntheticRegistry(n_images=3)

    def test_bad_exponent_rejected(self):
        with pytest.raises(ValueError):
            SyntheticRegistry(zipf_exponent=0.0)

    def test_higher_exponent_more_concentrated(self):
        low = SyntheticRegistry(zipf_exponent=0.8)
        high = SyntheticRegistry(zipf_exponent=2.0)
        assert high.top_k_share(PackageLevel.OS, 2) > low.top_k_share(
            PackageLevel.OS, 2
        )
