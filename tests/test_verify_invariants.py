"""Property and negative tests for the runtime invariant monitors.

Positive direction: random workloads, every scheduler family, sharded and
concurrency-limited clusters, and fault injection (crashes + stragglers)
must all complete with ``SimulationConfig.verify`` on and zero violations.

Negative direction: each monitor must actually *fire* -- for every
invariant there is a seeded-corruption test that breaks exactly that
invariant and asserts the matching :class:`InvariantViolation`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultConfig
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.experiments.parallel import SCHEDULER_FACTORIES, build_scheduler
from repro.verify.invariants import (
    DEFAULT_MONITORS,
    InvariantViolation,
    TTLMonitor,
    VerificationHarness,
)
from repro.workloads.fstartbench import WORKLOAD_BUILDERS, build_workload
from repro.workloads.functions import function_by_id
from repro.workloads.workload import Invocation, Workload

ALL_SCHEDULERS = tuple(sorted(SCHEDULER_FACTORIES))


def random_workload(seed: int, n: int = 40) -> Workload:
    """A small random workload over four Table-II functions."""
    rng = np.random.default_rng(seed)
    specs = [function_by_id(i) for i in (1, 3, 4, 7)]
    invocations = [
        Invocation(
            invocation_id=i,
            spec=specs[int(rng.integers(len(specs)))],
            arrival_time=float(rng.uniform(0.0, 60.0)),
            execution_time_s=float(rng.uniform(0.1, 2.0)),
        )
        for i in range(n)
    ]
    return Workload.from_invocations(f"prop-{seed}", invocations)


def run_verified(workload: Workload, scheduler_key: str,
                 **config_overrides) -> ClusterSimulator:
    """Run one cell with the invariant monitors attached; returns the sim."""
    scheduler = build_scheduler(scheduler_key)
    scheduler.reset()
    if hasattr(scheduler, "observe_workload"):
        scheduler.observe_workload(workload)
    eviction = (
        scheduler.make_eviction_policy()
        if hasattr(scheduler, "make_eviction_policy")
        else None
    )
    config = SimulationConfig(
        pool_capacity_mb=config_overrides.pop("pool_capacity_mb", 1500.0),
        verify=True,
        **config_overrides,
    )
    sim = ClusterSimulator(config, eviction)
    sim.run(workload, scheduler)
    return sim


# ---------------------------------------------------------------------------
# Positive properties: monitors never trip on legitimate runs
# ---------------------------------------------------------------------------

@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scheduler=st.sampled_from(ALL_SCHEDULERS),
    crash_prob=st.sampled_from([0.0, 0.05, 0.2]),
    straggler_prob=st.sampled_from([0.0, 0.1, 0.3]),
    per_worker_pools=st.booleans(),
    worker_concurrency=st.sampled_from([None, 1, 2]),
)
@settings(max_examples=30, deadline=None)
def test_random_runs_never_trip_monitors(
    seed, scheduler, crash_prob, straggler_prob, per_worker_pools,
    worker_concurrency,
):
    """Random workload x scheduler x faults x topology: zero violations."""
    sim = run_verified(
        random_workload(seed),
        scheduler,
        faults=FaultConfig(
            crash_prob=crash_prob,
            straggler_prob=straggler_prob,
            seed=seed,
        ),
        per_worker_pools=per_worker_pools,
        worker_concurrency=worker_concurrency,
    )
    assert sim.verifier is not None
    assert sim.verifier.checks_run > 0


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_fstartbench_cells_clean(scheduler):
    """One full FStartBench workload per scheduler, monitors attached."""
    sim = run_verified(build_workload("LO-Sim", seed=0), scheduler)
    assert sim.verifier.checks_run > 0


@pytest.mark.slow
@pytest.mark.parametrize("workload", sorted(WORKLOAD_BUILDERS))
@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_full_matrix_clean_and_faulted(workload, scheduler):
    """Every FStartBench workload x scheduler, clean and under faults."""
    wl = build_workload(workload, seed=0)
    run_verified(wl, scheduler)
    run_verified(
        wl, scheduler,
        faults=FaultConfig(crash_prob=0.1, straggler_prob=0.2, seed=3),
        per_worker_pools=True,
        worker_concurrency=2,
    )


def test_verify_off_attaches_nothing():
    wl = random_workload(0)
    scheduler = build_scheduler("greedy")
    scheduler.reset()
    sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=1500.0))
    sim.run(wl, scheduler)
    assert sim.verifier is None


# ---------------------------------------------------------------------------
# Negative tests: every monitor fires on seeded corruption
# ---------------------------------------------------------------------------

@pytest.fixture
def finished_sim() -> ClusterSimulator:
    """A completed verified run whose state the tests then corrupt."""
    return run_verified(build_workload("LO-Sim", seed=0), "greedy",
                        pool_capacity_mb=2000.0)


def test_conservation_fires_on_counter_tamper(finished_sim):
    finished_sim.lifecycle.created_count += 1
    with pytest.raises(InvariantViolation, match=r"\[conservation\]"):
        finished_sim.verifier.checkpoint()


def test_conservation_fires_on_live_memory_drift(finished_sim):
    finished_sim.lifecycle.live_memory_mb += 64.0
    with pytest.raises(InvariantViolation, match=r"\[conservation\]"):
        finished_sim.verifier.checkpoint()


def test_capacity_fires_on_memory_book_tamper(finished_sim):
    worker = next(iter(finished_sim.workers.workers()))
    worker.memory_mb += 123.0
    with pytest.raises(InvariantViolation, match=r"\[capacity\]"):
        finished_sim.verifier.checkpoint()


def test_capacity_fires_on_foreign_hosting(finished_sim):
    worker = next(iter(finished_sim.workers.workers()))
    worker.container_ids.add(999_999)  # a container that never existed
    with pytest.raises(InvariantViolation, match=r"\[capacity\]"):
        finished_sim.verifier.checkpoint()


def test_pool_index_fires_on_dropped_index_entry(finished_sim):
    pool = finished_sim.pool
    cid, shard_index = next(iter(pool._shard_of.items()))
    del pool._shards[shard_index]._index_keys[cid]
    with pytest.raises(InvariantViolation, match=r"\[pool-index\]"):
        finished_sim.verifier.checkpoint()


def test_pool_index_fires_on_unpruned_bucket(finished_sim):
    finished_sim.pool._shards[0]._idx_l1[999_999] = {}
    with pytest.raises(InvariantViolation, match=r"\[pool-index\]"):
        finished_sim.verifier.checkpoint()


def test_volume_fires_on_lost_mount(finished_sim):
    container = next(
        c for c in finished_sim.lifecycle.live_containers().values()
        if c.mounted_volumes
    )
    container.mounted_volumes.pop()
    with pytest.raises(InvariantViolation, match=r"\[volumes\]"):
        finished_sim.verifier.checkpoint()


def test_clock_fires_on_rewind(finished_sim):
    harness = finished_sim.verifier
    now = finished_sim.loop.now
    with pytest.raises(InvariantViolation, match=r"\[clock\]"):
        harness.observe_loop("advance", now - 10.0)


def test_ttl_fires_on_unexpired_eviction(finished_sim):
    monitor = next(
        m for m in finished_sim.verifier.monitors if isinstance(m, TTLMonitor)
    )
    fresh = next(iter(finished_sim.lifecycle.live_containers().values()))
    fresh.last_used_at = finished_sim.loop.now
    with pytest.raises(InvariantViolation, match=r"\[ttl\]"):
        monitor.on_event(
            "ttl_expired",
            now=finished_sim.loop.now,
            ttl=600.0,
            containers=[fresh],
        )


def test_harness_default_monitor_set():
    harness = VerificationHarness()
    assert tuple(type(m) for m in harness.monitors) == DEFAULT_MONITORS
