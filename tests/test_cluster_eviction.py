"""Tests for eviction (keep-alive) policies."""

import pytest

from repro.cluster.eviction import (
    FaasCacheEviction,
    LRUEviction,
    RejectNewcomerEviction,
)
from repro.cluster.pool import WarmPool

from test_cluster_pool import small_container


def filled_pool(capacity=500.0, sizes=(100.0, 100.0, 100.0)):
    pool = WarmPool(capacity)
    for i, mem in enumerate(sizes):
        pool.add(small_container(i, mem=mem))
    return pool


class TestLRUEviction:
    def test_no_eviction_when_fits(self):
        policy = LRUEviction()
        pool = filled_pool()
        assert policy.select_victims(pool, small_container(9), 0.0) == []

    def test_evicts_lru_first(self):
        policy = LRUEviction()
        pool = filled_pool(capacity=300.0)  # full with 3x100
        victims = policy.select_victims(pool, small_container(9), 0.0)
        assert [v.container_id for v in victims] == [0]

    def test_evicts_enough_for_large_newcomer(self):
        policy = LRUEviction()
        pool = filled_pool(capacity=300.0)
        victims = policy.select_victims(
            pool, small_container(9, mem=250.0), 0.0
        )
        assert [v.container_id for v in victims] == [0, 1, 2]

    def test_oversized_newcomer_rejected(self):
        policy = LRUEviction()
        pool = filled_pool(capacity=300.0)
        assert policy.select_victims(
            pool, small_container(9, mem=400.0), 0.0
        ) is None

    def test_no_ttl(self):
        assert LRUEviction().ttl_s is None


class TestRejectNewcomer:
    def test_accepts_when_space(self):
        policy = RejectNewcomerEviction()
        pool = filled_pool(capacity=500.0)
        assert policy.select_victims(pool, small_container(9), 0.0) == []

    def test_rejects_when_full(self):
        policy = RejectNewcomerEviction()
        pool = filled_pool(capacity=300.0)
        assert policy.select_victims(pool, small_container(9), 0.0) is None

    def test_default_ttl_10_minutes(self):
        assert RejectNewcomerEviction().ttl_s == 600.0

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            RejectNewcomerEviction(ttl_s=0.0)


class TestFaasCache:
    def test_no_eviction_when_fits(self):
        policy = FaasCacheEviction()
        pool = filled_pool()
        assert policy.select_victims(pool, small_container(9), 0.0) == []

    def test_evicts_lowest_priority(self):
        policy = FaasCacheEviction()
        pool = WarmPool(300.0)
        cheap = small_container(1)
        cheap.current_function = "cheap"
        precious = small_container(2)
        precious.current_function = "precious"
        filler = small_container(3)
        filler.current_function = "filler"
        for c in (cheap, precious, filler):
            pool.add(c)
        # precious: frequent and expensive to restart; cheap: rarely used.
        for _ in range(10):
            policy.on_function_start("precious", 5.0, 100.0, 0.0)
        policy.on_function_start("cheap", 0.2, 100.0, 0.0)
        policy.on_function_start("filler", 0.5, 100.0, 0.0)
        victims = policy.select_victims(pool, small_container(9), 0.0)
        assert victims and victims[0].container_id == 1  # cheap goes first

    def test_clock_advances_on_eviction(self):
        policy = FaasCacheEviction()
        pool = filled_pool(capacity=300.0)
        policy.on_function_start("img0", 1.0, 100.0, 0.0)
        before = policy._clock
        policy.select_victims(pool, small_container(9), 0.0)
        assert policy._clock >= before

    def test_cost_keeps_maximum(self):
        policy = FaasCacheEviction()
        policy.on_function_start("f", 5.0, 10.0, 0.0)
        policy.on_function_start("f", 0.1, 10.0, 0.0)  # lucky warm start
        assert policy._cost["f"] == 5.0

    def test_reset_clears_state(self):
        policy = FaasCacheEviction()
        policy.on_function_start("f", 5.0, 10.0, 0.0)
        policy.reset()
        assert not policy._freq and not policy._cost and policy._clock == 0.0

    def test_oversized_rejected(self):
        policy = FaasCacheEviction()
        pool = filled_pool(capacity=300.0)
        assert policy.select_victims(
            pool, small_container(9, mem=301.0), 0.0
        ) is None
