"""Tests for the Q-networks and the masked DQN agent."""

import numpy as np
import pytest

from repro.drl.dqn import DQNAgent, DQNConfig, masked_argmax
from repro.drl.network import AttentionQNetwork, MLPQNetwork
from repro.drl.replay import Transition

from test_drl_layers import check_gradients

G, S, N = 5, 4, 3  # global dim, slot dim, slots


def attention_net(rng, **kw):
    return AttentionQNetwork(G, S, N, rng, model_dim=8, n_heads=2,
                             head_hidden=8, **kw)


def mlp_net(rng):
    return MLPQNetwork(G, S, N, rng, hidden=16)


class TestNetworks:
    @pytest.mark.parametrize("factory", [attention_net, mlp_net])
    def test_shapes(self, factory, rng):
        net = factory(rng)
        assert net.state_dim == G + N * S
        assert net.action_dim == N + 1
        q = net.forward(rng.normal(size=(6, net.state_dim)))
        assert q.shape == (6, N + 1)

    @pytest.mark.parametrize("factory", [attention_net, mlp_net])
    def test_gradients(self, factory, rng):
        net = factory(rng)
        check_gradients(net, rng.normal(size=(3, net.state_dim)), rng,
                        atol=1e-6)

    def test_bad_state_shape(self, rng):
        net = attention_net(rng)
        with pytest.raises(ValueError):
            net.forward(rng.normal(size=(3, net.state_dim + 1)))

    def test_split_state(self, rng):
        net = attention_net(rng)
        states = rng.normal(size=(2, net.state_dim))
        g, s = net.split_state(states)
        assert g.shape == (2, G)
        assert s.shape == (2, N, S)
        np.testing.assert_array_equal(states[0, :G], g[0])

    def test_slot_symmetry(self, rng):
        """Identical slot features produce identical slot Q-values."""
        net = attention_net(rng)
        state = np.zeros((1, net.state_dim))
        state[0, :G] = rng.normal(size=G)
        slot_feat = rng.normal(size=S)
        for i in range(N):
            state[0, G + i * S : G + (i + 1) * S] = slot_feat
        q = net.forward(state)[0]
        np.testing.assert_allclose(q[:N], q[0], atol=1e-10)

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            attention_net(rng).backward(np.zeros((1, N + 1)))


class TestMaskedArgmax:
    def test_respects_mask(self):
        q = np.array([[10.0, 1.0, 5.0]])
        mask = np.array([[False, True, True]])
        assert masked_argmax(q, mask)[0] == 2

    def test_all_invalid_rejected(self):
        with pytest.raises(ValueError):
            masked_argmax(np.zeros((1, 3)), np.zeros((1, 3), dtype=bool))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            masked_argmax(np.zeros((1, 3)), np.zeros((1, 2), dtype=bool))


@pytest.fixture
def agent():
    return DQNAgent(
        network_factory=lambda: mlp_net(np.random.default_rng(1)),
        config=DQNConfig(batch_size=8, buffer_capacity=64,
                         target_sync_every=5),
        rng=np.random.default_rng(2),
    )


def fill_buffer(agent, n=40, rng=None):
    rng = rng or np.random.default_rng(3)
    mask = np.ones(agent.action_dim, dtype=bool)
    for i in range(n):
        s = rng.normal(size=agent.online.state_dim)
        agent.remember(Transition(s, i % agent.action_dim, -1.0,
                                  rng.normal(size=agent.online.state_dim),
                                  mask, False))


class TestDQNAgent:
    def test_act_respects_mask_greedy(self, agent, rng):
        state = rng.normal(size=agent.online.state_dim)
        mask = np.zeros(agent.action_dim, dtype=bool)
        mask[2] = True
        for _ in range(5):
            assert agent.act(state, mask, epsilon=0.0) == 2

    def test_act_respects_mask_random(self, agent, rng):
        state = rng.normal(size=agent.online.state_dim)
        mask = np.array([True, False, True, False])
        actions = {agent.act(state, mask, epsilon=1.0) for _ in range(50)}
        assert actions <= {0, 2}

    def test_act_all_invalid_rejected(self, agent, rng):
        state = rng.normal(size=agent.online.state_dim)
        with pytest.raises(ValueError):
            agent.act(state, np.zeros(agent.action_dim, dtype=bool), 0.0)

    def test_train_before_batch_returns_none(self, agent):
        assert agent.train_step() is None

    def test_train_step_returns_loss(self, agent):
        fill_buffer(agent)
        loss = agent.train_step()
        assert loss is not None and loss >= 0.0

    def test_training_reduces_td_error_on_fixed_problem(self):
        """Q-learning on a trivial 1-state MDP converges to r/(1-gamma)."""
        agent = DQNAgent(
            network_factory=lambda: mlp_net(np.random.default_rng(1)),
            config=DQNConfig(batch_size=16, buffer_capacity=64, gamma=0.5,
                             lr=3e-3, target_sync_every=10),
            rng=np.random.default_rng(2),
        )
        state = np.ones(agent.online.state_dim)
        mask = np.ones(agent.action_dim, dtype=bool)
        for _ in range(32):
            agent.remember(Transition(state, 0, 1.0, state, mask, False))
        for _ in range(400):
            agent.train_step()
        q = agent.q_values(state)[0]
        assert q == pytest.approx(2.0, rel=0.15)  # 1/(1-0.5)

    def test_target_sync_counts(self, agent):
        fill_buffer(agent)
        for _ in range(5):
            agent.train_step()
        # After target_sync_every=5 steps the networks match.
        x = np.random.default_rng(0).normal(size=(2, agent.online.state_dim))
        np.testing.assert_allclose(agent.online.forward(x),
                                   agent.target.forward(x))

    def test_done_transitions_drop_bootstrap(self):
        agent = DQNAgent(
            network_factory=lambda: mlp_net(np.random.default_rng(1)),
            config=DQNConfig(batch_size=8, buffer_capacity=32, gamma=0.9,
                             lr=3e-3, target_sync_every=4),
            rng=np.random.default_rng(2),
        )
        state = np.ones(agent.online.state_dim)
        mask = np.ones(agent.action_dim, dtype=bool)
        for _ in range(16):
            agent.remember(Transition(state, 1, 3.0, state, mask, True))
        for _ in range(300):
            agent.train_step()
        assert agent.q_values(state)[1] == pytest.approx(3.0, rel=0.1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DQNConfig(gamma=1.5)
        with pytest.raises(ValueError):
            DQNConfig(batch_size=64, buffer_capacity=32)
        with pytest.raises(ValueError):
            DQNConfig(target_sync_every=0)


class TestDuelingNetwork:
    def test_gradients(self, rng):
        from repro.drl.network import DuelingAttentionQNetwork

        net = DuelingAttentionQNetwork(G, S, N, rng, model_dim=8, n_heads=2,
                                       head_hidden=8)
        check_gradients(net, rng.normal(size=(3, net.state_dim)), rng,
                        atol=1e-6)

    def test_q_equals_value_plus_centered_advantage(self, rng):
        from repro.drl.network import DuelingAttentionQNetwork

        net = DuelingAttentionQNetwork(G, S, N, rng, model_dim=8, n_heads=2,
                                       head_hidden=8)
        q = net.forward(rng.normal(size=(4, net.state_dim)))
        assert q.shape == (4, N + 1)
        assert np.isfinite(q).all()

    def test_trainer_builds_dueling_variant(self):
        from repro.cluster.simulator import SimulationConfig
        from repro.core.config import MLCRConfig
        from repro.core.env import SchedulingEnv
        from repro.core.state import StateEncoder
        from repro.core.trainer import MLCRTrainer
        from repro.drl.dqn import DQNConfig
        from repro.drl.network import DuelingAttentionQNetwork
        from test_core_env_trainer import tiny_workload

        env = SchedulingEnv(
            lambda ep: tiny_workload(0, n=6),
            SimulationConfig(pool_capacity_mb=10_000.0),
            StateEncoder(n_slots=4),
        )
        cfg = MLCRConfig(
            n_slots=4, model_dim=8, head_hidden=8, n_episodes=1,
            demo_episodes=0, eval_every=0, use_dueling=True,
            epsilon_decay_steps=10,
            dqn=DQNConfig(batch_size=4, buffer_capacity=64,
                          target_sync_every=10),
        )
        trainer = MLCRTrainer(env, cfg)
        assert isinstance(trainer.agent.online, DuelingAttentionQNetwork)
        trainer.train()
