"""Tests for the volume model."""

import pytest

from repro.containers.volumes import (
    Volume,
    VolumeKind,
    VolumeStore,
    volumes_for_image,
)
from repro.packages.package import PackageLevel

from conftest import make_image, make_package


class TestVolume:
    def test_user_data_requires_owner(self):
        with pytest.raises(ValueError):
            Volume(1, VolumeKind.USER_DATA)

    def test_user_data_carries_no_packages(self):
        with pytest.raises(ValueError):
            Volume(1, VolumeKind.USER_DATA, owner_function="f",
                   packages=frozenset([make_package()]))

    def test_package_volume_has_no_owner(self):
        with pytest.raises(ValueError):
            Volume(1, VolumeKind.RUNTIME, owner_function="f")

    def test_language_volume_rejects_runtime_packages(self):
        rt = make_package("x", level=PackageLevel.RUNTIME)
        with pytest.raises(ValueError):
            Volume(1, VolumeKind.LANGUAGE, packages=frozenset([rt]))

    def test_runtime_volume_rejects_language_packages(self):
        lang = make_package("x", level=PackageLevel.LANGUAGE)
        with pytest.raises(ValueError):
            Volume(1, VolumeKind.RUNTIME, packages=frozenset([lang]))


class TestVolumeStore:
    def test_package_volume_deduplicated_by_content(self):
        store = VolumeStore()
        pkgs = [make_package("a", level=PackageLevel.RUNTIME)]
        v1 = store.package_volume(VolumeKind.RUNTIME, pkgs)
        v2 = store.package_volume(VolumeKind.RUNTIME, pkgs)
        assert v1 is v2

    def test_different_contents_different_volumes(self):
        store = VolumeStore()
        v1 = store.package_volume(
            VolumeKind.RUNTIME, [make_package("a", level=PackageLevel.RUNTIME)]
        )
        v2 = store.package_volume(
            VolumeKind.RUNTIME, [make_package("b", level=PackageLevel.RUNTIME)]
        )
        assert v1.volume_id != v2.volume_id

    def test_user_volume_per_function(self):
        store = VolumeStore()
        assert store.user_data_volume("f") is store.user_data_volume("f")
        assert store.user_data_volume("f") is not store.user_data_volume("g")

    def test_user_data_via_package_volume_rejected(self):
        with pytest.raises(ValueError):
            VolumeStore().package_volume(VolumeKind.USER_DATA, [])

    def test_mount_accounting(self):
        store = VolumeStore()
        store.record_mount(3)
        store.record_unmount(2)
        assert store.mount_count == 3
        assert store.unmount_count == 2


class TestVolumesForImage:
    def test_full_set(self):
        store = VolumeStore()
        img = make_image()
        vols = volumes_for_image(
            store, img.language_packages, img.runtime_packages, "f"
        )
        kinds = [v.kind for v in vols]
        assert kinds.count(VolumeKind.LANGUAGE) == 1
        assert kinds.count(VolumeKind.RUNTIME) == 1
        assert kinds.count(VolumeKind.USER_DATA) == 1

    def test_empty_levels_skip_volumes(self):
        store = VolumeStore()
        vols = volumes_for_image(store, [], [], "f")
        assert [v.kind for v in vols] == [VolumeKind.USER_DATA]
