"""End-to-end integration tests asserting the paper's qualitative shapes.

These use reduced workloads so the whole module stays fast, but they run
the real pipeline: workload -> simulator -> schedulers -> telemetry.
"""

import numpy as np
import pytest

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.experiments.common import evaluate_scheduler, pool_sizes
from repro.schedulers import (
    ColdOnlyScheduler,
    GreedyMatchScheduler,
    KeepAliveScheduler,
    LRUScheduler,
)
from repro.workloads.fstartbench import overall_workload


@pytest.fixture(scope="module")
def workload():
    return overall_workload(seed=0, n=150)


@pytest.fixture(scope="module")
def sizes(workload):
    return pool_sizes(workload)


def run(scheduler, workload, capacity):
    return evaluate_scheduler(scheduler, workload, capacity, "x")


class TestWarmStartingHelps:
    def test_any_reuse_beats_cold_only(self, workload, sizes):
        cold = run(ColdOnlyScheduler(), workload, sizes["Loose"])
        lru = run(LRUScheduler(), workload, sizes["Loose"])
        assert lru.total_startup_s < cold.total_startup_s

    def test_multilevel_reuse_cuts_cold_starts(self, workload, sizes):
        """Fig 8b: Greedy-Match has far fewer cold starts than LRU."""
        for label in ("Tight", "Loose"):
            lru = run(LRUScheduler(), workload, sizes[label])
            greedy = run(GreedyMatchScheduler(), workload, sizes[label])
            assert greedy.cold_starts < lru.cold_starts

    def test_bigger_pool_fewer_cold_starts(self, workload, sizes):
        """Fig 8: latency decreases from Tight to Loose for every method."""
        for scheduler_cls in (LRUScheduler, GreedyMatchScheduler,
                              KeepAliveScheduler):
            tight = run(scheduler_cls(), workload, sizes["Tight"])
            loose = run(scheduler_cls(), workload, sizes["Loose"])
            assert loose.total_startup_s < tight.total_startup_s


class TestPoolAccounting:
    def test_peak_memory_bounded_by_capacity(self, workload, sizes):
        for label, cap in sizes.items():
            res = run(GreedyMatchScheduler(), workload, cap)
            assert res.peak_warm_memory_mb <= cap + 1e-6

    def test_exact_matchers_fill_pool_multilevel_does_not(self, workload,
                                                          sizes):
        """Fig 10 shape: Greedy consumes less warm memory than LRU."""
        lru = run(LRUScheduler(), workload, sizes["Loose"])
        greedy = run(GreedyMatchScheduler(), workload, sizes["Loose"])
        assert greedy.peak_warm_memory_mb <= lru.peak_warm_memory_mb


class TestWorkloadFeatureShapes:
    def test_hi_sim_easier_than_lo_sim(self):
        """Fig 11a shape: every method is faster on HI-Sim."""
        from repro.workloads.fstartbench import hi_sim_workload, lo_sim_workload

        hi = hi_sim_workload(seed=0, n=120)
        lo = lo_sim_workload(seed=0, n=120)
        cap = pool_sizes(lo)["Moderate"]
        for scheduler_cls in (LRUScheduler, GreedyMatchScheduler):
            hi_res = run(scheduler_cls(), hi, cap)
            lo_res = run(scheduler_cls(), lo, cap)
            assert hi_res.total_startup_s < lo_res.total_startup_s


class TestDeterminism:
    def test_same_inputs_same_results(self, workload, sizes):
        a = run(GreedyMatchScheduler(), workload, sizes["Tight"])
        b = run(GreedyMatchScheduler(), workload, sizes["Tight"])
        assert a.total_startup_s == b.total_startup_s
        assert a.cold_starts == b.cold_starts

    def test_cumulative_latency_matches_total(self, workload, sizes):
        res = run(LRUScheduler(), workload, sizes["Tight"])
        t = res.result.telemetry
        assert t.cumulative_latency()[-1] == pytest.approx(
            t.total_startup_latency_s
        )


class TestMLCRIntegration:
    """Train a tiny MLCR and check it behaves like a real scheduler."""

    @pytest.fixture(scope="class")
    def trained(self):
        from repro.core.config import MLCRConfig
        from repro.core.mlcr import train_mlcr_scheduler
        from repro.drl.dqn import DQNConfig

        wl = overall_workload(seed=0, n=80)
        cap = pool_sizes(wl)["Tight"]
        cfg = MLCRConfig(
            n_slots=8, model_dim=16, head_hidden=16, n_episodes=3,
            demo_episodes=2, eval_every=2, eval_episodes=1,
            epsilon_decay_steps=200,
            dqn=DQNConfig(batch_size=16, buffer_capacity=2000,
                          target_sync_every=50),
        )
        scheduler, history = train_mlcr_scheduler(
            lambda ep: overall_workload(seed=100 + ep % 2, n=80),
            SimulationConfig(pool_capacity_mb=cap),
            cfg,
        )
        return scheduler, history, wl, cap

    def test_training_produced_history(self, trained):
        _, history, _, _ = trained
        assert len(history.episode_latencies) == 3
        assert history.best_eval_latency < float("inf")

    def test_trained_scheduler_runs_clean(self, trained):
        scheduler, _, wl, cap = trained
        res = run(scheduler, wl, cap)
        assert res.total_startup_s > 0
        assert res.cold_starts >= 1  # the pool starts empty

    def test_not_catastrophically_worse_than_greedy(self, trained):
        scheduler, _, wl, cap = trained
        mlcr = run(scheduler, wl, cap)
        greedy = run(GreedyMatchScheduler(), wl, cap)
        # Even a barely-trained policy stays in a sane band thanks to the
        # action mask (cannot pick no-match containers).
        assert mlcr.total_startup_s < 1.6 * greedy.total_startup_s

    def test_deterministic_at_serve_time(self, trained):
        scheduler, _, wl, cap = trained
        a = run(scheduler, wl, cap)
        b = run(scheduler, wl, cap)
        assert a.total_startup_s == b.total_startup_s
