"""Hypothesis parity: columnar Telemetry vs the legacy list reference.

Random event streams are fed to both
:class:`repro.cluster.telemetry.Telemetry` (struct-of-arrays) and
:class:`repro.cluster.telemetry_reference.LegacyTelemetry` (the
list-of-records implementation it replaced); every observable --
``summary()``, the materialized records, the queueing report, trace-line
serializations -- must be byte-identical, because downstream reports and
golden traces were recorded against the legacy semantics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import queueing_report, worker_utilization_report
from repro.cluster.telemetry import Telemetry
from repro.cluster.telemetry_reference import LegacyTelemetry
from repro.verify.trace import TraceLine

FUNCTION_NAMES = ("alpha", "beta", "gamma", "delta-9", "f")

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)

event_strategy = st.tuples(
    st.integers(min_value=0, max_value=10**6),      # invocation_id
    st.sampled_from(FUNCTION_NAMES),                # function_name
    finite,                                         # arrival_time
    st.integers(min_value=0, max_value=500),        # container_id
    st.booleans(),                                  # cold_start
    st.integers(min_value=0, max_value=3),          # match level
    finite,                                         # startup_latency_s
    finite, finite, finite, finite, finite, finite,  # breakdown phases
    finite,                                         # execution_time_s
    finite,                                         # queue_delay_s
    st.integers(min_value=0, max_value=7),          # worker_id
)

stream_strategy = st.lists(event_strategy, max_size=60)


def _pair(queueing: bool = False):
    return (
        Telemetry(queueing_enabled=queueing),
        LegacyTelemetry(queueing_enabled=queueing),
    )


def _feed(telemetries, events):
    for t in telemetries:
        for event in events:
            t.record_invocation_values(*event)


@settings(max_examples=40, deadline=None)
@given(events=stream_strategy)
def test_summary_and_records_parity(events):
    columnar, legacy = _pair()
    _feed((columnar, legacy), events)

    assert columnar.summary() == legacy.summary()
    assert columnar.records == legacy.records
    assert columnar.n_invocations == legacy.n_invocations
    assert columnar.latencies().tolist() == legacy.latencies().tolist()
    assert (columnar.cumulative_latency().tolist()
            == legacy.cumulative_latency().tolist())
    assert (columnar.cumulative_cold_starts().tolist()
            == legacy.cumulative_cold_starts().tolist())
    assert columnar.match_histogram() == legacy.match_histogram()
    assert (columnar.per_function_mean_latency()
            == legacy.per_function_mean_latency())


@settings(max_examples=40, deadline=None)
@given(events=stream_strategy)
def test_trace_line_bytes_parity(events):
    """Golden-trace lines from the columns == lines from the row view."""
    columnar, legacy = _pair()
    _feed((columnar, legacy), events)

    cols = columnar.invocation_columns()
    from_columns = [
        TraceLine(
            index=i, invocation_id=inv, function=fn, arrival=arrival,
            cold=bool(cold), container_id=cid, match=match,
            latency_s=latency, queue_s=queue, worker=worker, exec_s=exec_s,
        ).to_json()
        for i, (inv, fn, arrival, cold, cid, match, latency, queue, worker,
                exec_s)
        in enumerate(zip(
            cols.invocation_id, cols.function_name, cols.arrival_time,
            cols.cold_start, cols.container_id, cols.match,
            cols.startup_latency_s, cols.queue_delay_s, cols.worker_id,
            cols.execution_time_s,
        ))
    ]
    from_records = [
        TraceLine.from_record(i, record).to_json()
        for i, record in enumerate(legacy.records)
    ]
    assert from_columns == from_records


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=60.0,
                              allow_nan=False), max_size=40),
    busy=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False)),
        max_size=20,
    ),
    depth=st.integers(min_value=0, max_value=12),
    duration=st.one_of(
        st.just(0.0),
        st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
    ),
    slots=st.integers(min_value=1, max_value=4),
)
def test_queueing_parity(delays, busy, depth, duration, slots):
    columnar, legacy = _pair(queueing=True)
    for t in (columnar, legacy):
        t.worker_slots = slots
        for delay in delays:
            t.record_queueing(delay)
        for worker, seconds in busy:
            t.record_worker_busy(worker, seconds)
        t.record_queue_depth(depth)
        t.duration_s = duration

    assert columnar.queueing_summary() == legacy.queueing_summary()
    assert columnar.worker_utilization() == legacy.worker_utilization()
    assert list(columnar.queue_delays) == list(legacy.queue_delays)
    assert queueing_report(columnar) == queueing_report(legacy)
    assert (worker_utilization_report(columnar)
            == worker_utilization_report(legacy))
    assert columnar.summary() == legacy.summary()


@settings(max_examples=40, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            finite,                                      # time
            st.sampled_from(("create", "evict", "warm")),  # kind
            st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
            st.one_of(st.none(), st.sampled_from(FUNCTION_NAMES)),
            st.sampled_from(("", "detail", "x=1")),
        ),
        max_size=40,
    ),
)
def test_trace_event_parity(events):
    columnar, legacy = _pair()
    columnar.trace_enabled = legacy.trace_enabled = True
    for t in (columnar, legacy):
        for event in events:
            t.record_event(*event)
    assert columnar.trace == legacy.trace
    assert ([e.to_json() for e in columnar.trace]
            == [e.to_json() for e in legacy.trace])


@settings(max_examples=40, deadline=None)
@given(
    increments=st.lists(st.floats(min_value=0.001, max_value=10.0,
                                  allow_nan=False), max_size=60),
    values=st.lists(st.sampled_from((0.0, 128.0, 256.0, 512.0)),
                    max_size=60),
)
def test_memory_timeline_dedup_preserves_step_function(increments, values):
    """The deduped timeline draws the same piecewise-constant curve."""
    n = min(len(increments), len(values))
    samples = []
    now = 0.0
    for i in range(n):
        now += increments[i]
        samples.append((now, values[i]))

    columnar, legacy = _pair()
    for t, mb in samples:
        columnar.sample_memory(t, mb)
        legacy.sample_memory(t, mb)

    assert columnar.peak_warm_memory_mb == legacy.peak_warm_memory_mb
    timeline = columnar.memory_timeline
    assert len(timeline) <= len(legacy.memory_timeline)
    if samples:
        assert timeline[0] == legacy.memory_timeline[0]
        assert timeline[-1] == legacy.memory_timeline[-1]
    # Every original sample must be readable off the deduped step curve.
    for t, mb in legacy.memory_timeline:
        current = None
        for kept_t, kept_mb in timeline:
            if kept_t <= t:
                current = kept_mb
        assert current == mb


def test_memory_timeline_dedup_collapses_constant_run():
    telemetry = Telemetry()
    for i in range(10):
        telemetry.sample_memory(float(i), 256.0)
    telemetry.sample_memory(10.0, 512.0)
    telemetry.sample_memory(11.0, 512.0)
    assert telemetry.memory_timeline == [
        (0.0, 256.0), (9.0, 256.0), (10.0, 512.0), (11.0, 512.0),
    ]
    assert telemetry.peak_warm_memory_mb == 512.0


def test_records_view_is_cached_and_invalidates():
    telemetry = Telemetry()
    event = (1, "f", 0.0, 7, True, 2, 0.4,
             0.1, 0.1, 0.1, 0.05, 0.05, 0.0, 1.0, 0.0, 0)
    telemetry.record_invocation_values(*event)
    first = telemetry.records
    assert telemetry.records is first          # cached
    telemetry.record_invocation_values(*event)
    assert telemetry.records is not first      # new row invalidates
    assert len(telemetry.records) == 2
