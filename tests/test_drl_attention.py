"""Gradient checks and behavioural tests for multi-head attention."""

import numpy as np
import pytest

from repro.drl.attention import AttentionBlock, MultiHeadAttention

from test_drl_layers import check_gradients


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(3, 5, 8))
        assert mha.forward(x).shape == (3, 5, 8)

    def test_indivisible_heads_rejected(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng)

    def test_wrong_input_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        with pytest.raises(ValueError):
            mha.forward(rng.normal(size=(3, 8)))

    def test_gradients(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        check_gradients(mha, rng.normal(size=(2, 4, 8)), rng, atol=1e-6)

    def test_gradients_single_head(self, rng):
        mha = MultiHeadAttention(6, 1, rng)
        check_gradients(mha, rng.normal(size=(2, 3, 6)), rng, atol=1e-6)

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            MultiHeadAttention(8, 2, rng).backward(np.zeros((1, 2, 8)))

    def test_tokens_interact(self, rng):
        """Perturbing one token changes other tokens' outputs."""
        mha = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        base = mha.forward(x)
        x2 = x.copy()
        x2[0, 0] += 1.0
        out = mha.forward(x2)
        assert not np.allclose(base[0, 3], out[0, 3])

    def test_permutation_equivariance(self, rng):
        """Self-attention commutes with token permutation."""
        mha = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 5, 8))
        perm = np.array([2, 0, 4, 1, 3])
        out_perm = mha.forward(x[:, perm, :])
        np.testing.assert_allclose(out_perm, mha.forward(x)[:, perm, :],
                                   atol=1e-10)


class TestAttentionBlock:
    def test_residual_structure(self, rng):
        block = AttentionBlock(8, 2, rng)
        x = rng.normal(size=(2, 3, 8))
        # Zeroing the attention output projection makes the block identity.
        block.attn.w_o.weight.value[...] = 0.0
        block.attn.w_o.bias.value[...] = 0.0
        np.testing.assert_allclose(block.forward(x), x)

    def test_gradients(self, rng):
        block = AttentionBlock(8, 2, rng)
        check_gradients(block, rng.normal(size=(2, 4, 8)), rng, atol=1e-6)

    def test_stacked_blocks_gradients(self, rng):
        from repro.drl.layers import Sequential

        net = Sequential(AttentionBlock(8, 2, rng), AttentionBlock(8, 2, rng))
        check_gradients(net, rng.normal(size=(2, 3, 8)), rng, atol=1e-6)
