"""Focused tests for MLCRScheduler serving behaviour and configs."""

import numpy as np
import pytest

from repro.core.config import MLCRConfig
from repro.core.mlcr import MLCRScheduler
from repro.core.state import StateEncoder
from repro.drl.dqn import DQNAgent, DQNConfig
from repro.drl.network import MLPQNetwork

from conftest import make_container, make_ctx, make_image, make_invocation, make_spec


@pytest.fixture
def scheduler():
    encoder = StateEncoder(n_slots=4)
    agent = DQNAgent(
        network_factory=lambda: MLPQNetwork(
            encoder.global_dim, encoder.slot_dim, encoder.n_slots,
            np.random.default_rng(0), hidden=16,
        ),
        config=DQNConfig(batch_size=4, buffer_capacity=32),
        rng=np.random.default_rng(1),
    )
    return MLCRScheduler(agent, encoder)


class TestServing:
    def test_decisions_always_valid(self, scheduler):
        """Whatever the (untrained) Q-values say, decisions are executable:
        warm picks are reusable pooled containers, otherwise cold."""
        containers = [
            make_container(1),
            make_container(2, image=make_image("o", os_name="debian")),
        ]
        for i in range(10):
            ctx = make_ctx(
                make_invocation(make_spec(name=f"f{i}"), invocation_id=i,
                                arrival_time=float(i)),
                idle_containers=containers,
                now=float(i),
            )
            decision = scheduler.decide(ctx)
            if not decision.is_cold:
                assert decision.container_id == 1  # only the matching one

    def test_counts_decisions(self, scheduler):
        ctx = make_ctx(make_invocation())
        scheduler.decide(ctx)
        scheduler.decide(ctx)
        assert scheduler.decisions_made == 2

    def test_reset_clears_state(self, scheduler):
        scheduler.decide(make_ctx(make_invocation()))
        scheduler.reset()
        assert scheduler.decisions_made == 0

    def test_unmasked_serving_still_executable(self, scheduler):
        scheduler.use_mask = False
        no_match = make_container(2, image=make_image("o", os_name="debian"))
        ctx = make_ctx(make_invocation(), idle_containers=[no_match])
        # The only container is no-match: any action resolves to cold.
        assert scheduler.decide(ctx).is_cold


class TestConfig:
    def test_paper_scale_dimensions(self):
        cfg = MLCRConfig.paper_scale()
        assert cfg.model_dim == 512
        assert cfg.n_heads == 2
        assert cfg.n_blocks == 2

    def test_fast_shrinks_budget(self):
        base = MLCRConfig(n_episodes=30)
        fast = base.fast()
        assert fast.n_episodes < base.n_episodes

    def test_validation(self):
        with pytest.raises(ValueError):
            MLCRConfig(n_slots=0)
        with pytest.raises(ValueError):
            MLCRConfig(n_episodes=0)
        with pytest.raises(ValueError):
            MLCRConfig(reward_scale=0.0)
        with pytest.raises(ValueError):
            MLCRConfig(shaping_coef=-1.0)
        with pytest.raises(ValueError):
            MLCRConfig(n_step=0)
        with pytest.raises(ValueError):
            MLCRConfig(eval_every=-1)

    def test_config_hashable_for_caching(self):
        a = MLCRConfig()
        b = MLCRConfig()
        assert hash(a) == hash(b)
        assert a == b


class TestPaperScaleNetwork:
    def test_paper_dims_instantiate_and_run(self):
        """The published network dimensions build and infer correctly."""
        cfg = MLCRConfig.paper_scale()
        encoder = StateEncoder(n_slots=cfg.n_slots)
        from repro.drl.network import AttentionQNetwork

        net = AttentionQNetwork(
            global_dim=encoder.global_dim,
            slot_dim=encoder.slot_dim,
            n_slots=cfg.n_slots,
            rng=np.random.default_rng(0),
            model_dim=cfg.model_dim,
            n_heads=cfg.n_heads,
            n_blocks=cfg.n_blocks,
            head_hidden=cfg.head_hidden,
        )
        q = net.forward(np.zeros((1, net.state_dim)))
        assert q.shape == (1, cfg.n_slots + 1)
        assert np.isfinite(q).all()


class TestExplain:
    def test_explain_is_side_effect_free(self, scheduler):
        ctx = make_ctx(make_invocation(), idle_containers=[make_container(1)])
        before = scheduler.encoder._demand_total
        explanation = scheduler.explain(ctx)
        assert scheduler.encoder._demand_total == before
        assert scheduler.decisions_made == 0
        assert explanation.decision is not None

    def test_explain_matches_decide(self, scheduler):
        containers = [make_container(1), make_container(2)]
        ctx = make_ctx(make_invocation(), idle_containers=containers)
        explanation = scheduler.explain(ctx)
        decision = scheduler.decide(ctx)
        assert explanation.decision == decision

    def test_masked_rows_flagged(self, scheduler):
        no_match = make_container(9, image=make_image("o", os_name="debian"))
        ctx = make_ctx(make_invocation(), idle_containers=[no_match])
        explanation = scheduler.explain(ctx)
        assert explanation.rows[0].masked

    def test_render(self, scheduler):
        ctx = make_ctx(make_invocation(), idle_containers=[make_container(1)])
        text = scheduler.explain(ctx).render()
        assert "chosen:" in text and "cold" in text
