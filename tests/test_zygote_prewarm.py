"""Tests for zygote containers, pre-warming and delta pricing."""

import pytest

from repro.cluster.eviction import LRUEviction
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.containers.matching import MatchLevel
from repro.schedulers.base import Decision
from repro.schedulers.zygote import ZygoteScheduler, build_zygote_images
from repro.workloads.functions import function_by_id, functions_by_ids
from repro.workloads.workload import Workload

from conftest import make_invocation


def debian_python_specs():
    """Functions 5-8, 10, 13: one (Debian, Python) family."""
    return functions_by_ids([5, 6, 7, 8, 10, 13])


class TestBuildZygoteImages:
    def test_one_zygote_per_family(self):
        specs = functions_by_ids(range(1, 14))
        zygotes = build_zygote_images(specs)
        families = {
            (s.image.os_packages, s.image.language_packages) for s in specs
        }
        assert len(zygotes) == len(families)

    def test_zygote_covers_family(self):
        zygotes = build_zygote_images(debian_python_specs())
        assert len(zygotes) == 1
        zygote = zygotes[0]
        for spec in debian_python_specs():
            assert frozenset(spec.image.packages) <= frozenset(zygote.packages)

    def test_zygote_memory_exceeds_members(self):
        zygotes = build_zygote_images(debian_python_specs())
        biggest_member = max(
            s.image.total_size_mb for s in debian_python_specs()
        )
        assert zygotes[0].total_size_mb >= biggest_member


class TestPrewarm:
    def test_prewarmed_container_joins_pool(self):
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0), LRUEviction()
        )
        zygote = build_zygote_images(debian_python_specs())[0]
        container = sim.prewarm(zygote)
        assert container.container_id in sim.pool
        assert container.is_idle

    def test_prewarm_respects_capacity(self):
        zygote = build_zygote_images(debian_python_specs())[0]
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=zygote.memory_mb * 1.5),
            LRUEviction(),
        )
        first = sim.prewarm(zygote)
        second = sim.prewarm(zygote)  # evicts the first (LRU)
        assert second.container_id in sim.pool
        assert first.container_id not in sim.pool
        assert sim.telemetry.evictions == 1

    def test_prewarm_samples_pool_memory(self):
        # Regression: prewarm must leave a memory-timeline sample of the
        # pool occupancy once the container lands, so prewarm-only
        # experiments get accurate warm-memory traces.
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0), LRUEviction()
        )
        zygote = build_zygote_images(debian_python_specs())[0]
        assert sim.telemetry.memory_timeline == []
        sim.prewarm(zygote)
        assert sim.telemetry.memory_timeline[-1] == (0.0, sim.pool.used_mb)
        assert sim.telemetry.peak_warm_memory_mb == pytest.approx(
            zygote.memory_mb
        )
        sim.prewarm(zygote)
        assert sim.telemetry.memory_timeline[-1] == (0.0, sim.pool.used_mb)
        assert sim.pool.used_mb == pytest.approx(2 * zygote.memory_mb)


class TestZygoteScheduling:
    def _run(self, delta_pricing: bool):
        specs = debian_python_specs()
        zygote = build_zygote_images(specs)[0]
        invocations = [
            make_invocation(specs[i % len(specs)], i, arrival_time=30.0 * i,
                            execution_time_s=0.5)
            for i in range(6)
        ]
        workload = Workload.from_invocations("zy", invocations)
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0,
                             delta_pricing=delta_pricing),
            LRUEviction(),
        )
        sim.prewarm(zygote)
        return sim.run(workload, ZygoteScheduler()).telemetry

    def test_zero_cold_starts_with_zygote(self):
        t = self._run(delta_pricing=True)
        assert t.cold_starts == 0

    def test_zygote_image_preserved_across_functions(self):
        t = self._run(delta_pricing=True)
        # Every start reused the same zygote container.
        assert len({r.container_id for r in t.records}) == 1

    def test_delta_pricing_is_warm_fast(self):
        t = self._run(delta_pricing=True)
        spec = function_by_id(13)
        cold = t.records[0]
        # All packages are present in the zygote: no pull, tiny latencies.
        for r in t.records:
            assert r.breakdown.pull_s == 0.0

    def test_level_pricing_penalizes_zygote(self):
        """Without delta pricing the zygote pays L1-level costs (its levels
        never equal a member's), so zygote reuse is priced pessimistically."""
        warm_delta = self._run(delta_pricing=True)
        warm_level = self._run(delta_pricing=False)
        assert (warm_level.total_startup_latency_s
                > warm_delta.total_startup_latency_s)

    def test_falls_back_to_cold_without_covering_container(self):
        specs = debian_python_specs()
        workload = Workload.from_invocations("zy", [
            make_invocation(specs[0], 0, arrival_time=0.0)
        ])
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0), LRUEviction()
        )
        t = sim.run(workload, ZygoteScheduler()).telemetry
        assert t.cold_starts == 1


class TestDecisionValidation:
    def test_preserve_image_requires_container(self):
        with pytest.raises(ValueError):
            Decision(container_id=None, preserve_image=True)

    def test_warm_factory_flag(self):
        d = Decision.warm(3, preserve_image=True)
        assert d.preserve_image and d.container_id == 3
