"""Tests for the layered simulator: event loop, placement and queueing."""

import pytest

from repro.cluster.eventloop import EventLoop, SimulationClock
from repro.cluster.events import EventKind
from repro.cluster.eviction import LRUEviction
from repro.cluster.placement import PlacementEngine
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.cluster.worker import WorkerSet
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.fstartbench import hi_sim_workload
from repro.workloads.workload import Workload

from conftest import make_image, make_invocation, make_spec


def workload_of(invocations, name="test"):
    return Workload.from_invocations(name, invocations)


def spec_a(name="fa"):
    return make_spec(name=name, image=make_image("a"))


class TestSimulationClock:
    def test_advances_forward(self):
        clock = SimulationClock()
        assert clock.advance_to(5.0) == 5.0
        assert clock.now == 5.0

    def test_never_rewinds(self):
        clock = SimulationClock(start=10.0)
        assert clock.advance_to(3.0) == 10.0
        assert clock.now == 10.0


class TestEventLoop:
    def test_pop_advances_clock_in_time_order(self):
        loop = EventLoop()
        loop.schedule(2.0, EventKind.ARRIVAL, "b")
        loop.schedule(1.0, EventKind.ARRIVAL, "a")
        assert loop.pop_next().payload == "a"
        assert loop.now == 1.0
        assert loop.pop_next().payload == "b"
        assert loop.now == 2.0
        assert loop.pop_next() is None

    def test_sweep_runs_once_per_pop_after_advance(self):
        seen = []
        loop = EventLoop(sweep=seen.append)
        loop.schedule(1.0, EventKind.ARRIVAL)
        loop.schedule(4.0, EventKind.ARRIVAL)
        loop.pop_next()
        loop.pop_next()
        assert seen == [1.0, 4.0]
        loop.pop_next()  # empty queue: no sweep
        assert seen == [1.0, 4.0]

    def test_len_and_peek(self):
        loop = EventLoop()
        assert not loop and len(loop) == 0 and loop.peek() is None
        loop.schedule(1.0, EventKind.ARRIVAL, "x")
        assert loop and len(loop) == 1
        assert loop.peek().payload == "x"
        assert len(loop) == 1  # peek does not pop


class TestPlacementEngine:
    def engine(self, n=2, limit=None, capacity=None):
        return PlacementEngine(WorkerSet(n), concurrency_limit=limit,
                               worker_capacity_mb=capacity)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            self.engine(limit=0)
        with pytest.raises(ValueError):
            self.engine(capacity=0.0)

    def test_no_limit_uses_least_memory_rule(self):
        eng = self.engine(n=2)
        eng.workers.place_on(0, 1, 100.0)
        assert eng.select_worker(50.0, now=0.0) == 1

    def test_no_limit_admits_immediately(self):
        eng = self.engine(n=1)
        assert eng.admit(0, now=5.0, hold_s=100.0) == (5.0, 0.0)
        assert eng.admit(0, now=5.0, hold_s=100.0) == (5.0, 0.0)
        assert eng.queue_depths(5.0) == (0,)
        assert not eng.queueing_enabled

    def test_limit_queues_fifo_with_exact_start_times(self):
        eng = self.engine(n=1, limit=1)
        assert eng.admit(0, now=0.0, hold_s=10.0) == (0.0, 0.0)
        # Second startup waits for the first slot to free at t=10.
        assert eng.admit(0, now=1.0, hold_s=10.0) == (10.0, 9.0)
        # Third queues behind both: starts at t=20.
        assert eng.admit(0, now=2.0, hold_s=10.0) == (20.0, 18.0)
        assert eng.queue_depths(2.0) == (2,)
        # After everything drains the queue view empties.
        assert eng.queue_depths(100.0) == (0,)

    def test_limit_two_runs_pairs_concurrently(self):
        eng = self.engine(n=1, limit=2)
        assert eng.admit(0, now=0.0, hold_s=10.0)[1] == 0.0
        assert eng.admit(0, now=0.0, hold_s=10.0)[1] == 0.0
        start, delay = eng.admit(0, now=0.0, hold_s=10.0)
        assert (start, delay) == (10.0, 10.0)

    def test_freed_slots_admit_immediately(self):
        eng = self.engine(n=1, limit=1)
        eng.admit(0, now=0.0, hold_s=10.0)
        assert eng.admit(0, now=11.0, hold_s=5.0) == (11.0, 0.0)

    def test_limit_balances_on_inflight(self):
        eng = self.engine(n=2, limit=4)
        # Worker 0 hosts more memory but fewer in-flight startups.
        eng.workers.place_on(0, 1, 500.0)
        eng.admit(1, now=0.0, hold_s=100.0)
        assert eng.select_worker(50.0, now=0.0) == 0

    def test_capacity_filter_prefers_fitting_worker(self):
        eng = self.engine(n=2, capacity=200.0)
        eng.workers.place_on(0, 1, 150.0)
        # 100MB no longer fits on worker 0; worker 1 must take it.
        assert eng.select_worker(100.0, now=0.0) == 1

    def test_capacity_filter_falls_back_when_nothing_fits(self):
        eng = self.engine(n=2, capacity=100.0)
        eng.workers.place_on(0, 1, 90.0)
        eng.workers.place_on(1, 2, 95.0)
        # Neither fits 50MB: least-memory fallback, not an error.
        assert eng.select_worker(50.0, now=0.0) == 0


def queueing_sim(n_workers, limit, capacity=2048.0):
    sched = GreedyMatchScheduler()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity, n_workers=n_workers,
                         worker_concurrency=limit),
        sched.make_eviction_policy(),
    )
    return sim, sched


class TestQueueingIntegration:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(pool_capacity_mb=1024.0, worker_concurrency=0)
        with pytest.raises(ValueError):
            SimulationConfig(pool_capacity_mb=1024.0, worker_capacity_mb=-1.0)

    def test_hi_sim_queues_under_finite_limit(self):
        sim, sched = queueing_sim(n_workers=2, limit=1)
        result = sim.run(hi_sim_workload(seed=0), sched)
        summary = result.summary()
        assert summary["total_queueing_s"] > 0
        assert summary["queued_starts"] > 0
        assert summary["max_queue_depth"] >= 1
        assert 0 < summary["mean_worker_utilization"] <= 1.0

    def test_n_workers_changes_mean_startup_latency(self):
        means = []
        for n in (1, 4):
            sim, sched = queueing_sim(n_workers=n, limit=2)
            means.append(
                sim.run(hi_sim_workload(seed=0), sched).summary()["mean_startup_s"]
            )
        assert means[1] < means[0]

    def test_latency_decomposes_into_queue_plus_service(self):
        sim, sched = queueing_sim(n_workers=1, limit=1)
        t = sim.run(hi_sim_workload(seed=0), sched).telemetry
        for r in t.records:
            assert r.startup_latency_s == pytest.approx(
                r.queue_delay_s + r.service_latency_s
            )
            assert r.queue_delay_s >= 0
            assert 0 <= r.worker_id < 1

    def test_queued_startup_completes_after_slot_frees(self):
        # One worker, one slot: the second concurrent startup's record must
        # carry the wait for the first invocation's startup + execution.
        wl = workload_of([
            make_invocation(spec_a(), 0, arrival_time=0.0,
                            execution_time_s=10.0),
            make_invocation(spec_a("fa2"), 1, arrival_time=1.0,
                            execution_time_s=1.0),
        ])
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0, n_workers=1,
                             worker_concurrency=1),
            LRUEviction(),
        )
        t = sim.run(wl, LRUScheduler()).telemetry
        first, second = t.records
        slot_frees = first.arrival_time + first.startup_latency_s + 10.0
        assert second.queue_delay_s == pytest.approx(
            slot_frees - second.arrival_time
        )

    def test_summary_keys_absent_without_limit(self):
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0), LRUEviction()
        )
        summary = sim.run(
            workload_of([make_invocation(spec_a(), 0)]), LRUScheduler()
        ).summary()
        assert "total_queueing_s" not in summary
        assert "mean_worker_utilization" not in summary

    def test_disabled_limit_matches_unconstrained_run(self):
        # A limit high enough to never bind must reproduce the
        # no-admission-control latencies exactly.
        wl = hi_sim_workload(seed=1, n=120)
        base_sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=2048.0), LRUEviction()
        )
        base = base_sim.run(wl, LRUScheduler()).telemetry
        big_sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=2048.0, n_workers=4,
                             worker_concurrency=10_000),
            LRUEviction(),
        )
        big = big_sim.run(wl, LRUScheduler()).telemetry
        assert [r.startup_latency_s for r in base.records] == [
            r.startup_latency_s for r in big.records
        ]
        assert big.total_queueing_s == 0.0

    def test_context_exposes_load_views(self):
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=10_000.0, n_workers=3,
                             worker_concurrency=2),
            LRUEviction(),
        )
        sim.load(workload_of([make_invocation(spec_a(), 0)]))
        ctx = sim.next_decision_point()
        assert ctx.worker_loads == (0, 0, 0)
        assert ctx.queue_depths == (0, 0, 0)
        record = sim.apply_decision(LRUScheduler().decide(ctx))
        assert record.worker_id in (0, 1, 2)
        sim.finish()
