"""Property and metamorphic wall for the proactive policy families.

Four Hypothesis property suites:

* **pre-warm budget** -- an :class:`MPCScheduler` decision never carries
  more than ``prewarm_budget`` pre-warm requests, whatever the horizon,
  smoothing factor or workload draw;
* **invariants under faults** -- MPC and lending runs with the full
  invariant harness attached (conservation, capacity, volume pairing)
  stay violation-free on a sharded, concurrency-limited, fault-injected
  cluster;
* **lending safety** -- lends at tight capacity never break the pool
  monitors, for arbitrary budgets and helping thresholds;
* **shard-order independence** -- :func:`fit_from_traces` produces a
  bit-identical Q table for any permutation of a fixed shard split.

Two metamorphic relations:

* **arrival-shift equivariance** -- shifting every observed arrival by a
  constant shifts every EWMA forecast by exactly that constant
  (integer-valued floats, so the arithmetic is exact);
* **lend-budget monotonicity** -- on empirically pinned cells, raising
  the lend budget never increases the cold-start count.  This is not a
  theorem (a lend perturbs later evictions, and HI-Sim seed 1 is a known
  counterexample), so the test pins cells where the relation holds and
  guards against silent policy regressions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultConfig
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.drl.offline import fit_from_traces, trace_lines_from_result
from repro.schedulers.base import LendRequest, PrewarmRequest
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lending import PagurusLendingScheduler
from repro.schedulers.mpc import ArrivalForecaster, MPCScheduler
from repro.schedulers.offline import OfflineQScheduler
from repro.workloads.fstartbench import build_workload
from repro.workloads.functions import function_by_id
from repro.workloads.workload import Invocation, Workload


def small_workload(seed: int = 0, n: int = 40) -> Workload:
    """A fast n-invocation draw over four Table-II functions."""
    import numpy as np

    rng = np.random.default_rng(seed)
    specs = tuple(function_by_id(i) for i in (1, 3, 4, 6))
    invocations = [
        Invocation(
            invocation_id=i,
            spec=specs[int(rng.integers(len(specs)))],
            arrival_time=float(rng.uniform(0.0, 90.0)),
            execution_time_s=0.5,
        )
        for i in range(n)
    ]
    return Workload.from_invocations(f"families-{seed}", invocations)


def drive_decisions(scheduler, workload, capacity_mb=1500.0):
    """Run the incremental API, yielding every decision the policy makes."""
    eviction = (scheduler.make_eviction_policy()
                if hasattr(scheduler, "make_eviction_policy") else None)
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity_mb), eviction
    )
    sim.load(workload)
    decisions = []
    while (ctx := sim.next_decision_point()) is not None:
        decision = scheduler.decide(ctx)
        decisions.append(decision)
        sim.apply_decision(decision)
    sim.finish(scheduler_name=scheduler.name)
    return decisions


# ---------------------------------------------------------------------------
# Property: pre-warm requests per decision never exceed the budget
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    horizon_s=st.floats(min_value=1.0, max_value=120.0, allow_nan=False),
    prewarm_budget=st.integers(min_value=0, max_value=5),
    alpha=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=7),
)
def test_prewarms_never_exceed_budget(horizon_s, prewarm_budget, alpha, seed):
    scheduler = MPCScheduler(
        horizon_s=horizon_s, prewarm_budget=prewarm_budget, alpha=alpha
    )
    scheduler.reset()
    decisions = drive_decisions(scheduler, small_workload(seed=seed))
    for decision in decisions:
        prewarms = [a for a in decision.actions
                    if isinstance(a, PrewarmRequest)]
        assert len(prewarms) == len(decision.actions)  # MPC only pre-warms
        assert len(prewarms) <= prewarm_budget
        # Never pre-warm the function this very decision serves.
        if prewarm_budget:
            names = {a.function_name for a in prewarms}
            assert len(names) == len(prewarms)  # one per function


def test_budget_zero_decisions_carry_no_actions():
    scheduler = MPCScheduler(prewarm_budget=0)
    scheduler.reset()
    for decision in drive_decisions(scheduler, small_workload()):
        assert decision.actions == ()


# ---------------------------------------------------------------------------
# Property: invariant monitors stay clean under fault injection
# ---------------------------------------------------------------------------

_FAULTED = dict(
    faults=FaultConfig(crash_prob=0.1, straggler_prob=0.2, seed=3),
    per_worker_pools=True,
    worker_concurrency=2,
)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5),
    scheduler_cls=st.sampled_from(
        [MPCScheduler, PagurusLendingScheduler, OfflineQScheduler]
    ),
)
def test_faulted_runs_stay_invariant_clean(seed, scheduler_cls):
    """verify=True raises InvariantViolation on the first broken monitor
    checkpoint, so a completed run IS the property."""
    scheduler = scheduler_cls()
    scheduler.reset()
    if hasattr(scheduler, "observe_workload"):
        workload = small_workload(seed=seed)
        scheduler.observe_workload(workload)
    else:
        workload = small_workload(seed=seed)
    eviction = scheduler.make_eviction_policy()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=1200.0, verify=True, **_FAULTED),
        eviction,
    )
    result = sim.run(workload, scheduler)
    assert result.summary()["invocations"] == float(len(workload))


# ---------------------------------------------------------------------------
# Property: lending never violates capacity / pairing invariants
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(
    lend_budget=st.integers(min_value=0, max_value=64),
    help_threshold_s=st.floats(min_value=0.0, max_value=30.0,
                               allow_nan=False),
    seed=st.integers(min_value=0, max_value=5),
    capacity_mb=st.sampled_from([600.0, 900.0, 1500.0]),
)
def test_lending_respects_pool_invariants(
    lend_budget, help_threshold_s, seed, capacity_mb
):
    scheduler = PagurusLendingScheduler(
        lend_budget=lend_budget, help_threshold_s=help_threshold_s
    )
    scheduler.reset()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity_mb, verify=True),
        scheduler.make_eviction_policy(),
    )
    result = sim.run(small_workload(seed=seed), scheduler)
    summary = result.summary()
    assert summary.get("lends_issued", 0.0) <= float(lend_budget)
    # Every decision's lend side is at most one request, toward the
    # arriving function itself.
    scheduler.reset()
    for decision in drive_decisions(
        scheduler, small_workload(seed=seed), capacity_mb=capacity_mb
    ):
        assert len(decision.actions) <= 1
        for action in decision.actions:
            assert isinstance(action, LendRequest)


# ---------------------------------------------------------------------------
# Property: fit_from_traces is shard-order independent
# ---------------------------------------------------------------------------

def _reference_lines():
    """Greedy decision lines over a fixed workload (computed once)."""
    scheduler = GreedyMatchScheduler()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=float("inf")),
        scheduler.make_eviction_policy(),
    )
    result = sim.run(build_workload("LO-Sim", seed=0), scheduler)
    return trace_lines_from_result(result)


_LINES = _reference_lines()


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_fit_from_traces_shard_order_independent(data):
    n = len(_LINES)
    cuts = sorted(data.draw(st.sets(
        st.integers(min_value=1, max_value=n - 1), min_size=0, max_size=4,
    )))
    bounds = [0] + cuts + [n]
    shards = [_LINES[a:b] for a, b in zip(bounds, bounds[1:])]
    permuted = data.draw(st.permutations(shards))
    base = fit_from_traces(shards)
    shuffled = fit_from_traces(permuted)
    assert base.states == shuffled.states
    assert base.q.tobytes() == shuffled.q.tobytes()
    assert base.n_transitions == shuffled.n_transitions


# ---------------------------------------------------------------------------
# Metamorphic: forecast arrival-shift equivariance
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    arrivals=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=2, max_size=20,
    ).map(sorted),
    delta=st.integers(min_value=1, max_value=100_000),
    alpha=st.sampled_from([0.25, 0.5, 1.0]),
)
def test_forecast_shift_equivariance(arrivals, delta, alpha):
    """Shifting every arrival by ``delta`` shifts the forecast by exactly
    ``delta``: gaps are differences, so the EWMA state is shift-free.
    Integer-valued floats keep every operation exact."""
    base = ArrivalForecaster(alpha=alpha)
    shifted = ArrivalForecaster(alpha=alpha)
    for t in arrivals:
        base.observe("fn", float(t))
        shifted.observe("fn", float(t + delta))
        predicted = base.predict_next("fn")
        moved = shifted.predict_next("fn")
        if predicted is None:
            assert moved is None
        else:
            assert moved == predicted + delta


def test_forecaster_needs_two_arrivals():
    forecaster = ArrivalForecaster()
    assert forecaster.predict_next("fn") is None
    forecaster.observe("fn", 1.0)
    assert forecaster.predict_next("fn") is None
    forecaster.observe("fn", 3.0)
    assert forecaster.predict_next("fn") == 5.0
    forecaster.reset()
    assert forecaster.predict_next("fn") is None


# ---------------------------------------------------------------------------
# Metamorphic: lend-budget monotonicity on pinned cells
# ---------------------------------------------------------------------------

#: Cells where "more budget => no more cold starts" holds empirically.
#: Not universal -- a lend perturbs later evictions, and e.g. HI-Sim
#: seed 1 at 1200 MB is a measured counterexample -- so the test pins
#: cells where it does hold to catch silent lending regressions.
_MONOTONE_CELLS = (
    ("LO-Sim", 0, 846.4),
    ("LO-Sim", 2, 800.0),
    ("Overall", 0, 1500.0),
    ("Peak", 0, 1500.0),
)


def _cold_starts(workload, budget, capacity_mb):
    scheduler = PagurusLendingScheduler(lend_budget=budget)
    scheduler.reset()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity_mb),
        scheduler.make_eviction_policy(),
    )
    return sim.run(workload, scheduler).summary()["cold_starts"]


def test_lend_budget_monotone_on_pinned_cells():
    for workload_name, seed, capacity_mb in _MONOTONE_CELLS:
        workload = build_workload(workload_name, seed=seed)
        colds = [_cold_starts(workload, budget, capacity_mb)
                 for budget in (0, 4, 16, 64)]
        for tighter, looser in zip(colds, colds[1:]):
            assert looser <= tighter, (
                f"{workload_name}/seed{seed}: budget increase raised cold "
                f"starts {colds}"
            )
