"""Tests for the event queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.events import EventKind, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "late")
        q.push(1.0, EventKind.ARRIVAL, "early")
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_fifo_for_simultaneous_events(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, EventKind.ARRIVAL, i)
        assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.ARRIVAL)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek(self):
        q = EventQueue()
        assert q.peek() is None
        q.push(2.0, EventKind.ARRIVAL, "x")
        assert q.peek().payload == "x"
        assert len(q) == 1  # peek does not remove

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.ARRIVAL)
        assert q and len(q) == 1

    def test_event_kinds(self):
        assert {k.value for k in EventKind} == {
            "arrival", "startup", "execution"
        }


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=0, max_size=50))
def test_pops_in_nondecreasing_time_order(times):
    q = EventQueue()
    for t in times:
        q.push(t, EventKind.ARRIVAL)
    popped = [q.pop().time for _ in range(len(times))]
    assert popped == sorted(popped)
