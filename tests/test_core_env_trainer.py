"""Tests for the RL environment and the trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.cluster.simulator import SimulationConfig
from repro.core.config import MLCRConfig
from repro.core.env import SchedulingEnv
from repro.core.mlcr import MLCRScheduler, train_mlcr_scheduler
from repro.core.state import StateEncoder
from repro.core.trainer import EVAL_EPISODE_BASE, MLCRTrainer
from repro.drl.dqn import DQNConfig
from repro.workloads.workload import Workload

from conftest import make_image, make_invocation, make_spec


def tiny_workload(seed=0, n=12):
    rng = np.random.default_rng(seed)
    specs = [
        make_spec(name="fa", image=make_image("a")),
        make_spec(name="fb", image=make_image("b", runtime_names=("numpy",))),
    ]
    invs = [
        make_invocation(specs[i % 2], i, arrival_time=float(rng.uniform(0, 30)),
                        execution_time_s=0.5)
        for i in range(n)
    ]
    return Workload.from_invocations(f"tiny{seed}", invs)


def tiny_config(**kw):
    defaults = dict(
        n_slots=4,
        model_dim=8,
        head_hidden=8,
        n_episodes=2,
        demo_episodes=1,
        eval_every=2,
        eval_episodes=1,
        epsilon_decay_steps=50,
        dqn=DQNConfig(batch_size=4, buffer_capacity=256,
                      target_sync_every=10),
    )
    defaults.update(kw)
    return MLCRConfig(**defaults)


@pytest.fixture
def env():
    encoder = StateEncoder(n_slots=4)
    return SchedulingEnv(
        workload_factory=lambda ep: tiny_workload(seed=ep % 3),
        sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
        encoder=encoder,
    )


class TestEnv:
    def test_episode_runs_to_completion(self, env):
        encoded = env.reset(0)
        steps = 0
        while encoded is not None:
            result = env.step(encoded.mask.size - 1, encoded)  # always cold
            encoded = result.state
            steps += 1
        assert steps == 12
        assert result.done

    def test_reward_is_negative_scaled_latency(self, env):
        encoded = env.reset(0)
        result = env.step(encoded.mask.size - 1, encoded)
        assert result.reward == pytest.approx(
            -result.startup_latency_s * env.reward_scale
        )

    def test_step_before_reset_rejected(self, env):
        with pytest.raises(RuntimeError):
            env.step(0, None)

    def test_finish_returns_result(self, env):
        encoded = env.reset(0)
        while encoded is not None:
            encoded = env.step(encoded.mask.size - 1, encoded).state
        result = env.finish()
        assert result.telemetry.n_invocations == 12

    def test_shaped_rewards_telescope(self):
        """With shaping, total shaped return == plain return (phi end = 0)."""
        encoder = StateEncoder(n_slots=4)
        gamma = 1.0  # telescoping is exact when gamma == 1
        env_plain = SchedulingEnv(
            lambda ep: tiny_workload(0),
            SimulationConfig(pool_capacity_mb=10_000.0),
            StateEncoder(n_slots=4),
        )
        env_shaped = SchedulingEnv(
            lambda ep: tiny_workload(0),
            SimulationConfig(pool_capacity_mb=10_000.0),
            encoder, shaping_coef=2.0, gamma=gamma,
        )

        def rollout(env):
            total = 0.0
            encoded = env.reset(0)
            while encoded is not None:
                r = env.step(encoded.mask.size - 1, encoded)
                total += r.reward
                encoded = r.state
            return total

        assert rollout(env_shaped) == pytest.approx(rollout(env_plain),
                                                    abs=1e-9)


class TestTrainer:
    def test_training_completes(self, env):
        trainer = MLCRTrainer(env, tiny_config())
        history = trainer.train()
        assert len(history.episode_latencies) == 2
        assert len(history.eval_latencies) >= 1
        assert history.best_eval_latency < float("inf")

    def test_demo_episodes_fill_buffer(self, env):
        trainer = MLCRTrainer(env, tiny_config(n_episodes=1))
        trainer.train()
        # 1 demo + 1 training + eval episodes; buffer holds demo+train
        # transitions (12 per episode).
        assert len(trainer.agent.buffer) >= 20

    def test_losses_recorded(self, env):
        trainer = MLCRTrainer(env, tiny_config())
        history = trainer.train()
        assert history.losses, "no gradient steps happened"

    def test_mlp_variant(self, env):
        trainer = MLCRTrainer(env, tiny_config(use_attention=False))
        trainer.train()
        from repro.drl.network import MLPQNetwork

        assert isinstance(trainer.agent.online, MLPQNetwork)

    def test_no_mask_variant(self, env):
        trainer = MLCRTrainer(env, tiny_config(use_mask=False))
        history = trainer.train()
        assert len(history.episode_latencies) == 2

    def test_eval_episodes_use_held_out_indices(self):
        seen = []

        def factory(ep):
            seen.append(ep)
            return tiny_workload(0)

        env = SchedulingEnv(
            factory, SimulationConfig(pool_capacity_mb=10_000.0),
            StateEncoder(n_slots=4),
        )
        MLCRTrainer(env, tiny_config(n_episodes=2, demo_episodes=0)).train()
        assert any(ep >= EVAL_EPISODE_BASE for ep in seen)


class TestTrainMLCRScheduler:
    def test_end_to_end(self):
        scheduler, history = train_mlcr_scheduler(
            workload_factory=lambda ep: tiny_workload(seed=ep % 2),
            sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
            config=tiny_config(),
        )
        assert isinstance(scheduler, MLCRScheduler)
        assert history.episode_latencies
