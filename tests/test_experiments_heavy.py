"""Micro-scale runs of the training-heavy experiment modules.

Uses a deliberately tiny :class:`ExperimentScale` so the fig8/9/10/11,
overhead and ablation code paths are exercised inside the unit suite in
seconds; the real budgets live in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    fig8_overall,
    fig9_trajectory,
    fig10_memory,
    fig11_benchmarks,
    overhead,
)
from repro.experiments.common import ExperimentScale, clear_mlcr_cache

MICRO = ExperimentScale(
    repeats=1,
    train_episodes=1,
    demo_episodes=1,
    n_slots=6,
    model_dim=8,
    fig11_pool_fractions=(1.0,),
    restarts=1,
)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_mlcr_cache()
    yield
    clear_mlcr_cache()


@pytest.mark.slow
class TestFig8Micro:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_overall.run(MICRO)

    def test_all_cells_present(self, result):
        assert len(result.cells) == 5 * 3  # methods x pool sizes

    def test_capacities_ordered(self, result):
        caps = list(result.capacities.values())
        assert caps == sorted(caps)

    def test_report_renders(self, result):
        text = fig8_overall.report(result)
        assert "MLCR" in text and "Tight" in text

    def test_reduction_helper(self, result):
        value = result.mlcr_reduction_vs("LRU", "Tight")
        assert -100.0 < value < 100.0


@pytest.mark.slow
class TestFig9Micro:
    def test_series_shapes(self):
        result = fig9_trajectory.run(MICRO)
        assert len(result.arrival_index) == 400
        assert result.greedy_cum_latency.shape == result.mlcr_cum_latency.shape
        text = fig9_trajectory.report(result)
        assert "final latency gap" in text


@pytest.mark.slow
class TestFig10Micro:
    def test_rows_and_report(self):
        result = fig10_memory.run(MICRO)
        assert {r.method for r in result.rows} == {
            "LRU", "FaasCache", "KeepAlive", "Greedy-Match", "MLCR"
        }
        assert all(0.0 <= r.pool_utilization <= 1.0 + 1e-9
                   for r in result.rows)
        assert "pool util" in fig10_memory.report(result)


@pytest.mark.slow
class TestFig11Micro:
    def test_subfigure_a(self):
        result = fig11_benchmarks.run_subfigure("a:similarity", MICRO)
        assert {b.workload for b in result.boxes} == {"HI-Sim", "LO-Sim"}
        assert "Fig 11a" in fig11_benchmarks.report(result)

    def test_unknown_subfigure(self):
        with pytest.raises(KeyError):
            fig11_benchmarks.run_subfigure("z:nope", MICRO)


@pytest.mark.slow
class TestOverheadMicro:
    def test_overhead_runs(self):
        result = overhead.run(MICRO)
        assert result.decisions == 400
        assert result.mean_decision_ms > 0
        assert "decision time" in overhead.report(result)
