"""Unit tests for the package catalog and group resolution."""

import pytest

from repro.packages.catalog import (
    LANGUAGE_GROUPS,
    OS_GROUPS,
    PackageCatalog,
    default_catalog,
    language_group,
    os_group,
)
from repro.packages.package import PackageLevel

from conftest import make_package


class TestPackageCatalog:
    def test_add_and_get(self):
        cat = PackageCatalog()
        pkg = make_package("x", "1.0")
        cat.add(pkg)
        assert cat.get("x", "1.0") is pkg

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            PackageCatalog().get("nope", "0")

    def test_conflicting_metadata_rejected(self):
        cat = PackageCatalog()
        cat.add(make_package("x", "1.0", size_mb=10.0))
        with pytest.raises(ValueError):
            cat.add(make_package("x", "1.0", size_mb=10.0, install_cost_s=9.0))

    def test_identical_readd_is_idempotent(self):
        cat = PackageCatalog()
        cat.add(make_package("x", "1.0"))
        cat.add(make_package("x", "1.0"))
        assert len(cat) == 1

    def test_contains_by_key(self):
        cat = PackageCatalog([make_package("x", "2")])
        assert "x==2" in cat
        assert "x==3" not in cat

    def test_by_key(self):
        cat = PackageCatalog([make_package("x", "2")])
        assert cat.by_key("x==2").name == "x"

    def test_all_packages_sorted_deterministically(self):
        cat = PackageCatalog([make_package("b"), make_package("a")])
        names = [p.name for p in cat.all_packages()]
        assert names == sorted(names)

    def test_at_level(self):
        cat = PackageCatalog([
            make_package("os1", level=PackageLevel.OS),
            make_package("rt1", level=PackageLevel.RUNTIME),
        ])
        assert [p.name for p in cat.at_level(PackageLevel.OS)] == ["os1"]

    def test_index_of_is_stable(self):
        cat = default_catalog()
        pkg = cat.get("flask", "2.3")
        idx1 = cat.index_of(pkg)
        idx2 = cat.index_of(pkg)
        assert idx1 == idx2
        assert cat.key_order()[idx1] == pkg.key


class TestDefaultCatalog:
    def test_contains_core_stacks(self, catalog):
        for name, version in [
            ("alpine-base", "3.18"), ("debian-base", "11"),
            ("python", "3.9.17"), ("openjdk", "11"),
            ("tensorflow", "2.12"), ("flask", "2.3"),
        ]:
            assert f"{name}=={version}" in catalog

    def test_all_three_levels_populated(self, catalog):
        for level in PackageLevel:
            assert catalog.at_level(level), f"no packages at {level}"

    def test_deterministic_rebuild(self):
        a = default_catalog()
        b = default_catalog()
        assert [p.key for p in a.all_packages()] == [
            p.key for p in b.all_packages()
        ]


class TestGroups:
    def test_all_os_groups_resolve(self, catalog):
        for name in OS_GROUPS:
            pkgs = os_group(catalog, name)
            assert pkgs
            assert all(p.level is PackageLevel.OS for p in pkgs)

    def test_all_language_groups_resolve(self, catalog):
        for name in LANGUAGE_GROUPS:
            pkgs = language_group(catalog, name)
            assert pkgs
            assert all(p.level is PackageLevel.LANGUAGE for p in pkgs)

    def test_debian_and_centos_share_glibc(self, catalog):
        debian = set(os_group(catalog, "debian"))
        centos = set(os_group(catalog, "centos"))
        shared = {p.name for p in debian & centos}
        assert "glibc" in shared  # drives non-trivial Jaccard similarity

    def test_alpine_and_debian_differ_as_levels(self, catalog):
        assert set(os_group(catalog, "alpine")) != set(os_group(catalog, "debian"))

    def test_unknown_group_raises(self, catalog):
        with pytest.raises(KeyError):
            os_group(catalog, "windows")
