"""Gradient checks and unit tests for the layer framework."""

import numpy as np
import pytest

from repro.drl.layers import (
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)


def numeric_param_grad(module, param, idx, x, proj, eps=1e-6):
    """Central-difference derivative of sum(forward(x) * proj) wrt param."""
    orig = param.value[idx]
    param.value[idx] = orig + eps
    up = float((module.forward(x) * proj).sum())
    param.value[idx] = orig - eps
    down = float((module.forward(x) * proj).sum())
    param.value[idx] = orig
    return (up - down) / (2 * eps)


def check_gradients(module, x, rng, atol=1e-7):
    """Verify analytic parameter and input grads against numeric ones."""
    proj = rng.normal(size=module.forward(x).shape)
    module.zero_grad()
    module.forward(x)
    dx = module.backward(proj)
    # Parameter gradients.
    for p in module.parameters():
        for _ in range(3):
            idx = tuple(int(rng.integers(0, s)) for s in p.value.shape)
            num = numeric_param_grad(module, p, idx, x, proj)
            assert abs(num - p.grad[idx]) < atol * max(1.0, abs(num)), (
                p.name, idx, num, p.grad[idx]
            )
    # Input gradient.
    for _ in range(3):
        idx = tuple(int(rng.integers(0, s)) for s in x.shape)
        orig = x[idx]
        eps = 1e-6
        x[idx] = orig + eps
        up = float((module.forward(x) * proj).sum())
        x[idx] = orig - eps
        down = float((module.forward(x) * proj).sum())
        x[idx] = orig
        num = (up - down) / (2 * eps)
        assert abs(num - dx[idx]) < atol * max(1.0, abs(num))


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        np.testing.assert_array_equal(p.grad, np.zeros(3))

    def test_float64(self):
        p = Parameter(np.ones(3, dtype=np.float32))
        assert p.value.dtype == np.float64


class TestLinear:
    def test_forward_shape_flat(self, rng):
        lin = Linear(4, 7, rng)
        assert lin.forward(rng.normal(size=(5, 4))).shape == (5, 7)

    def test_forward_shape_tokens(self, rng):
        lin = Linear(4, 7, rng)
        assert lin.forward(rng.normal(size=(5, 3, 4))).shape == (5, 3, 7)

    def test_wrong_input_dim(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 7, rng).forward(rng.normal(size=(5, 3)))

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            Linear(4, 7, rng).backward(rng.normal(size=(5, 7)))

    def test_gradients_flat(self, rng):
        lin = Linear(4, 3, rng)
        check_gradients(lin, rng.normal(size=(6, 4)), rng)

    def test_gradients_tokens(self, rng):
        lin = Linear(4, 3, rng)
        check_gradients(lin, rng.normal(size=(2, 5, 4)), rng)

    def test_no_bias(self, rng):
        lin = Linear(4, 3, rng, bias=False)
        assert lin.bias is None
        check_gradients(lin, rng.normal(size=(6, 4)), rng)

    def test_bad_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng)


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([-1.0, 3.0]))
        grad = relu.backward(np.array([10.0, 10.0]))
        np.testing.assert_array_equal(grad, [0.0, 10.0])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones(3))


class TestLayerNorm:
    def test_normalizes(self, rng):
        ln = LayerNorm(8)
        out = ln.forward(rng.normal(size=(4, 8)) * 10 + 5)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_gradients(self, rng):
        ln = LayerNorm(6)
        # Nudge gamma/beta off their init for a non-trivial check.
        ln.gamma.value += rng.normal(size=6) * 0.1
        ln.beta.value += rng.normal(size=6) * 0.1
        check_gradients(ln, rng.normal(size=(3, 6)), rng)

    def test_gradients_tokens(self, rng):
        ln = LayerNorm(6)
        check_gradients(ln, rng.normal(size=(2, 4, 6)), rng)

    def test_wrong_dim(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(6).forward(rng.normal(size=(3, 5)))


class TestSequential:
    def test_chains(self, rng):
        net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        assert net.forward(rng.normal(size=(3, 4))).shape == (3, 2)
        assert len(net) == 3

    def test_gradients(self, rng):
        net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng),
                         LayerNorm(2))
        check_gradients(net, rng.normal(size=(3, 4)), rng)

    def test_collects_parameters(self, rng):
        net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        assert len(net.parameters()) == 4  # two weights + two biases


class TestStateDict:
    def test_roundtrip(self, rng):
        a = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        b = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        x = rng.normal(size=(3, 4))
        assert not np.allclose(a.forward(x), b.forward(x))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_shape_mismatch_rejected(self, rng):
        a = Linear(4, 8, rng)
        b = Linear(4, 9, rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_count_mismatch_rejected(self, rng):
        a = Linear(4, 8, rng, bias=False)
        b = Linear(4, 8, rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_copy_from(self, rng):
        a, b = Linear(4, 4, rng), Linear(4, 4, rng)
        b.copy_from(a)
        np.testing.assert_array_equal(a.weight.value, b.weight.value)
        # Copies, not aliases.
        a.weight.value += 1.0
        assert not np.allclose(a.weight.value, b.weight.value)
