"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np
import pytest

from repro.containers.container import Container, ContainerState
from repro.containers.costmodel import StartupCostModel
from repro.containers.image import FunctionImage
from repro.packages.catalog import default_catalog, language_group, os_group
from repro.packages.package import Package, PackageLevel
from repro.schedulers.base import SchedulingContext
from repro.workloads.functions import FunctionSpec, function_by_id
from repro.workloads.workload import Invocation


@pytest.fixture(autouse=True)
def _isolated_experiment_cache(tmp_path, monkeypatch):
    """Point the content-addressed experiment cache at a per-test tmp dir.

    Keeps CLI/experiment tests from writing ``.repro_cache/`` into the
    repo and from serving each other stale state across runs (explicit
    ``ExperimentCache(root=...)`` construction in tests is unaffected).
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))


@pytest.fixture(scope="session")
def catalog():
    return default_catalog()


@pytest.fixture(scope="session")
def cost_model():
    return StartupCostModel()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


# ---------------------------------------------------------------------------
# Builders (plain functions so tests can parameterize freely)
# ---------------------------------------------------------------------------

def make_package(
    name: str = "pkg",
    version: str = "1.0",
    level: PackageLevel = PackageLevel.RUNTIME,
    size_mb: float = 10.0,
    install_cost_s: float = 0.1,
) -> Package:
    return Package(name, version, level, size_mb, install_cost_s)


def make_image(
    name: str = "img",
    os_name: str = "alpine",
    lang_name: str = "python",
    runtime_names: Sequence[str] = ("flask",),
    catalog=None,
) -> FunctionImage:
    cat = catalog or default_catalog()
    packages: List[Package] = []
    packages += os_group(cat, os_name)
    packages += language_group(cat, lang_name)
    runtime_versions = {
        "flask": "2.3", "numpy": "1.24", "pandas": "2.0",
        "matplotlib": "3.7", "tensorflow": "2.12", "express": "4.18",
        "springboot": "2.7", "gin": "1.9", "libcos-sdk": "5.9",
    }
    for rt in runtime_names:
        packages.append(cat.get(rt, runtime_versions[rt]))
    return FunctionImage.from_packages(name, packages)


def make_container(
    container_id: int,
    image: Optional[FunctionImage] = None,
    state: ContainerState = ContainerState.IDLE,
    last_used_at: float = 0.0,
) -> Container:
    return Container(
        container_id=container_id,
        image=image or make_image(),
        state=state,
        last_used_at=last_used_at,
    )


def make_spec(
    func_id: int = 999,
    name: str = "test-func",
    image: Optional[FunctionImage] = None,
    function_init_s: float = 0.1,
    exec_time_mean_s: float = 0.5,
) -> FunctionSpec:
    return FunctionSpec(
        func_id=func_id,
        name=name,
        image=image or make_image(),
        function_init_s=function_init_s,
        exec_time_mean_s=exec_time_mean_s,
        exec_time_cv=0.0,
    )


def make_invocation(
    spec: Optional[FunctionSpec] = None,
    invocation_id: int = 0,
    arrival_time: float = 0.0,
    execution_time_s: float = 0.5,
) -> Invocation:
    return Invocation(
        invocation_id=invocation_id,
        spec=spec or make_spec(),
        arrival_time=arrival_time,
        execution_time_s=execution_time_s,
    )


def make_ctx(
    invocation: Optional[Invocation] = None,
    idle_containers: Iterable[Container] = (),
    now: float = 0.0,
    capacity_mb: float = 4096.0,
    used_mb: float = 0.0,
    cost_model: Optional[StartupCostModel] = None,
    worker_loads: Sequence[int] = (),
    queue_depths: Sequence[int] = (),
) -> SchedulingContext:
    return SchedulingContext(
        now=now,
        invocation=invocation or make_invocation(),
        idle_containers=tuple(idle_containers),
        cost_model=cost_model or StartupCostModel(),
        pool_capacity_mb=capacity_mb,
        pool_used_mb=used_mb,
        worker_loads=tuple(worker_loads),
        queue_depths=tuple(queue_depths),
    )


def fstart_spec(func_id: int) -> FunctionSpec:
    """Shortcut to a Table-II function."""
    return function_by_id(func_id)
