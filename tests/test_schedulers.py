"""Unit tests for the baseline scheduling policies."""

import pytest

from repro.cluster.eviction import (
    FaasCacheEviction,
    LRUEviction,
    RejectNewcomerEviction,
)
from repro.schedulers import (
    ColdOnlyScheduler,
    FaasCacheScheduler,
    GreedyMatchScheduler,
    KeepAliveScheduler,
    LookaheadScheduler,
    LRUScheduler,
)
from repro.workloads.workload import Workload

from conftest import (
    make_container,
    make_ctx,
    make_image,
    make_invocation,
    make_spec,
)


def ctx_for(containers, spec=None, **kw):
    spec = spec or make_spec(name="f", image=make_image("f"))
    return make_ctx(make_invocation(spec), idle_containers=containers, **kw)


class TestColdOnly:
    def test_always_cold(self):
        ctx = ctx_for([make_container(1)])
        assert ColdOnlyScheduler().decide(ctx).is_cold


class TestExactMatchers:
    """KeepAlive / LRU / FaasCache share exact-match scheduling."""

    @pytest.mark.parametrize(
        "scheduler_cls", [KeepAliveScheduler, LRUScheduler, FaasCacheScheduler]
    )
    def test_exact_match_reused(self, scheduler_cls):
        exact = make_container(1)
        partial = make_container(2, image=make_image("p",
                                                     runtime_names=("numpy",)))
        ctx = ctx_for([partial, exact])
        decision = scheduler_cls().decide(ctx)
        assert decision == decision.warm(1)

    @pytest.mark.parametrize(
        "scheduler_cls", [KeepAliveScheduler, LRUScheduler, FaasCacheScheduler]
    )
    def test_partial_match_not_used(self, scheduler_cls):
        partial = make_container(2, image=make_image("p",
                                                     runtime_names=("numpy",)))
        ctx = ctx_for([partial])
        assert scheduler_cls().decide(ctx).is_cold

    def test_mru_tie_break(self):
        older = make_container(1, last_used_at=0.0)
        newer = make_container(2, last_used_at=10.0)
        # Pool order is LRU-first: [older, newer].
        ctx = ctx_for([older, newer])
        assert LRUScheduler().decide(ctx).container_id == 2

    def test_paired_eviction_policies(self):
        assert isinstance(LRUScheduler.make_eviction_policy(), LRUEviction)
        assert isinstance(FaasCacheScheduler.make_eviction_policy(),
                          FaasCacheEviction)
        keepalive_policy = KeepAliveScheduler(ttl_s=120.0).make_eviction_policy()
        assert isinstance(keepalive_policy, RejectNewcomerEviction)
        assert keepalive_policy.ttl_s == 120.0


class TestGreedyMatch:
    def test_takes_deepest_match(self):
        c_l1 = make_container(1, image=make_image("x", lang_name="nodejs"))
        c_l2 = make_container(2, image=make_image("y",
                                                  runtime_names=("numpy",)))
        ctx = ctx_for([c_l1, c_l2])
        assert GreedyMatchScheduler().decide(ctx).container_id == 2

    def test_uses_shallow_match_when_only_option(self):
        c_l1 = make_container(1, image=make_image("x", lang_name="nodejs"))
        ctx = ctx_for([c_l1])
        assert GreedyMatchScheduler().decide(ctx).container_id == 1

    def test_cold_when_nothing_matches(self):
        other_os = make_container(1, image=make_image("o", os_name="debian"))
        ctx = ctx_for([other_os])
        assert GreedyMatchScheduler().decide(ctx).is_cold


class TestLookahead:
    def _two_arrival_workload(self):
        contested_spec = make_spec(name="later", image=make_image("f"))
        probe_spec = make_spec(
            name="now", image=make_image("probe", runtime_names=("numpy",))
        )
        inv_now = make_invocation(probe_spec, 0, arrival_time=0.0)
        inv_later = make_invocation(contested_spec, 1, arrival_time=1.0)
        return inv_now, inv_later, Workload.from_invocations(
            "w", [inv_now, inv_later]
        )

    def test_preserves_contested_container(self):
        """Fig. 2: leave the container for the deeper future match."""
        inv_now, _, workload = self._two_arrival_workload()
        contested = make_container(1)  # L3 for `later`, L2 for `now`
        scheduler = LookaheadScheduler(horizon=4)
        scheduler.observe_workload(workload)
        ctx = make_ctx(inv_now, idle_containers=[contested])
        assert scheduler.decide(ctx).is_cold

    def test_takes_container_when_no_future_contention(self):
        inv_now, _, _ = self._two_arrival_workload()
        contested = make_container(1)
        scheduler = LookaheadScheduler(horizon=4)
        scheduler.observe_workload(
            Workload.from_invocations("w", [inv_now])  # nothing follows
        )
        ctx = make_ctx(inv_now, idle_containers=[contested])
        assert ctx.reusable_containers()
        assert not scheduler.decide(ctx).is_cold

    def test_reset_clears_future(self):
        scheduler = LookaheadScheduler()
        _, _, workload = self._two_arrival_workload()
        scheduler.observe_workload(workload)
        scheduler.reset()
        assert scheduler._future == []

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            LookaheadScheduler(horizon=-1)


class TestSchedulingContext:
    def test_estimated_latency_orders_by_match(self):
        ctx = ctx_for([make_container(1)])
        cold = ctx.estimated_latency(None)
        warm = ctx.estimated_latency(ctx.idle_containers[0])
        assert warm < cold

    def test_match_counts(self):
        ctx = ctx_for([
            make_container(1),
            make_container(2, image=make_image("o", os_name="debian")),
        ])
        counts = ctx.match_counts()
        assert sum(counts.values()) == 2

    def test_reusable_sorted_deepest_first(self):
        c_l1 = make_container(1, image=make_image("x", lang_name="nodejs"))
        c_l3 = make_container(2)
        ctx = ctx_for([c_l1, c_l3])
        levels = [int(m) for _, m in ctx.reusable_containers()]
        assert levels == sorted(levels, reverse=True)
