"""Time-source abstraction: VirtualClock, WallClock, event-loop injection,
and the simulator's online feed (offer / pump_until)."""

import pytest

from repro.cluster import (
    ClusterSimulator,
    Decision,
    EventLoop,
    SimulationClock,
    SimulationConfig,
    TimeSource,
    VirtualClock,
    WallClock,
)
from repro.cluster.events import EventKind
from repro.workloads.functions import function_by_id
from repro.workloads.workload import Invocation


def _invocation(i, t, exec_s=0.5):
    return Invocation(
        invocation_id=i,
        spec=function_by_id(4),
        arrival_time=t,
        execution_time_s=exec_s,
    )


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------

class TestVirtualClock:
    def test_starts_at_zero_and_moves_forward(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance_to(3.5) == 3.5
        assert clock.now == 3.5

    def test_never_rewinds(self):
        clock = VirtualClock(start=10.0)
        assert clock.advance_to(4.0) == 10.0
        assert clock.now == 10.0

    def test_simulation_clock_alias(self):
        # The historical name must keep working (and keep behavior).
        assert SimulationClock is VirtualClock

    def test_satisfies_protocol(self):
        assert isinstance(VirtualClock(), TimeSource)
        assert isinstance(WallClock(), TimeSource)


class TestWallClock:
    def test_reads_relative_to_epoch(self):
        readings = iter([100.0, 101.5, 103.25])
        clock = WallClock(monotonic=lambda: next(readings))
        assert clock.now == 1.5
        assert clock.now == 3.25

    def test_advance_to_is_a_forward_floor(self):
        readings = iter([0.0, 1.0, 2.0, 10.0])
        clock = WallClock(monotonic=lambda: next(readings))
        # Floor above the wall reading: now clamps up to the floor.
        assert clock.advance_to(5.0) == 5.0
        assert clock.now == 5.0  # raw reading 2.0 < floor
        assert clock.now == 10.0  # raw reading past the floor again

    def test_never_rewinds_on_misbehaving_source(self):
        readings = iter([0.0, 7.0, 3.0, 3.0])
        clock = WallClock(monotonic=lambda: next(readings))
        assert clock.advance_to(clock.now) == 7.0  # floor at first reading
        assert clock.now == 7.0  # source regressed to 3.0; floor holds


# ---------------------------------------------------------------------------
# EventLoop clock injection and no-event advancement
# ---------------------------------------------------------------------------

class TestEventLoopClock:
    def test_default_clock_is_virtual(self):
        assert isinstance(EventLoop().clock, VirtualClock)

    def test_injected_clock_is_used(self):
        clock = VirtualClock(start=2.0)
        loop = EventLoop(clock=clock)
        assert loop.now == 2.0
        loop.schedule(5.0, EventKind.ARRIVAL, "x")
        event = loop.pop_next()
        assert event.time == 5.0 and clock.now == 5.0

    def test_advance_to_runs_sweep_and_observer(self):
        calls = []
        loop = EventLoop(
            sweep=lambda now: calls.append(("sweep", now)),
            observer=lambda kind, t: calls.append((kind, t)),
        )
        assert loop.advance_to(4.0) == 4.0
        assert loop.now == 4.0
        assert ("advance", 4.0) in calls
        assert ("sweep", 4.0) in calls

    def test_advance_to_never_rewinds(self):
        loop = EventLoop()
        loop.advance_to(9.0)
        assert loop.advance_to(1.0) == 9.0


# ---------------------------------------------------------------------------
# ClusterSimulator online feed
# ---------------------------------------------------------------------------

class TestOffer:
    def test_offered_arrival_reaches_decision_point(self):
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0))
        sim.offer(_invocation(0, 1.25))
        ctx = sim.next_decision_point()
        assert ctx is not None and ctx.now == 1.25
        record = sim.apply_decision(Decision.cold())
        assert record.cold_start and record.arrival_time == 1.25

    def test_out_of_order_offer_rejected(self):
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0))
        sim.offer(_invocation(0, 5.0))
        with pytest.raises(ValueError, match="out of order"):
            sim.offer(_invocation(1, 4.0))

    def test_offer_after_finish_rejected(self):
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0))
        sim.finish()
        with pytest.raises(RuntimeError, match="finished"):
            sim.offer(_invocation(0, 0.0))


class TestPumpUntil:
    def _run_one(self, sim, t=1.0):
        sim.offer(_invocation(0, t))
        sim.next_decision_point()
        return sim.apply_decision(Decision.cold())

    def test_processes_due_completions(self):
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0))
        record = self._run_one(sim)
        ready_at = 1.0 + record.startup_latency_s
        done_at = ready_at + record.execution_time_s
        # Not yet due: nothing processed, but the clock advances.
        assert sim.pump_until(ready_at - 0.1) == 0
        assert sim.now == ready_at - 0.1
        # Due: startup + execution completions both fire, container pools.
        assert sim.pump_until(done_at + 0.1) == 2
        assert len(sim.pool) == 1

    def test_trailing_sweep_expires_ttl(self):
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0))
        sim.eviction.ttl_s = 5.0
        self._run_one(sim)
        sim.pump_until(20.0)  # completions fire, then the sweep at t=20
        assert len(sim.pool) == 0
        assert sim.lifecycle.destroyed_count == 1
        assert sim.telemetry.ttl_expirations == 1

    def test_refuses_undecided_arrival(self):
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0))
        sim.offer(_invocation(0, 1.0))
        with pytest.raises(RuntimeError, match="undecided arrival"):
            sim.pump_until(2.0)

    def test_refuses_pending_decision(self):
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0))
        sim.offer(_invocation(0, 1.0))
        sim.next_decision_point()
        with pytest.raises(RuntimeError, match="pending"):
            sim.pump_until(2.0)

    def test_pump_is_decision_neutral(self):
        """Extra pumps between arrivals never change scheduling outcomes."""
        def run(pump: bool):
            sim = ClusterSimulator(
                SimulationConfig(pool_capacity_mb=10_000.0, verify=True)
            )
            from repro.schedulers.greedy import GreedyMatchScheduler

            scheduler = GreedyMatchScheduler()
            records = []
            for i, t in enumerate([1.0, 4.0, 9.0, 9.1, 30.0]):
                if pump:
                    # Sweep at several wall instants before the arrival.
                    for tick in (t - 0.6, t - 0.3, t - 0.05):
                        if tick > sim.now:
                            sim.pump_until(tick)
                sim.offer(_invocation(i, t))
                ctx = sim.next_decision_point()
                records.append(sim.apply_decision(scheduler.decide(ctx)))
            sim.finish()
            return records

        assert run(pump=False) == run(pump=True)
