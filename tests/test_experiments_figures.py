"""Tests for SVG figure rendering of experiment results."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.stats import box_stats
from repro.experiments.fig8_overall import Fig8Cell, Fig8Result, METHOD_ORDER
from repro.experiments.fig9_trajectory import Fig9Result
from repro.experiments.fig10_memory import Fig10Result, Fig10Row
from repro.experiments.fig11_benchmarks import Fig11Box, Fig11Result
from repro.experiments.figures import (
    fig8_cold_chart,
    fig8_latency_chart,
    fig9_chart,
    fig10_chart,
    fig11_chart,
    save_figures,
)


@pytest.fixture
def fig8_result():
    cells = []
    for pool in ("Tight", "Loose"):
        for i, method in enumerate(METHOD_ORDER):
            cells.append(Fig8Cell(
                method=method, pool_label=pool,
                total_startup_s=100.0 - 5 * i,
                cold_starts=50.0 - i, evictions=float(i),
                peak_warm_memory_mb=1000.0,
            ))
    return Fig8Result(
        cells=cells,
        capacities={"Tight": 500.0, "Loose": 2500.0},
        repeats=1,
        raw=[],
    )


@pytest.fixture
def fig9_result():
    n = 50
    return Fig9Result(
        arrival_index=np.arange(1, n + 1),
        greedy_cum_latency=np.cumsum(np.full(n, 1.0)),
        mlcr_cum_latency=np.cumsum(np.full(n, 0.8)),
        greedy_cum_cold=np.arange(n),
        mlcr_cum_cold=np.arange(n),
        capacity_mb=2000.0,
    )


@pytest.fixture
def fig10_result():
    rows = [
        Fig10Row(method=m, peak_warm_memory_mb=900.0 - 50 * i,
                 pool_utilization=0.9, evictions=1.0,
                 keep_alive_rejections=0.0, total_startup_s=100.0)
        for i, m in enumerate(METHOD_ORDER)
    ]
    return Fig10Result(rows=rows, capacity_mb=1000.0)


@pytest.fixture
def fig11_result():
    stats = box_stats([10.0, 20.0, 30.0, 40.0])
    boxes = [
        Fig11Box(workload=w, method=m, stats=stats, samples=(10.0,))
        for w in ("HI-Sim", "LO-Sim")
        for m in METHOD_ORDER
    ]
    return Fig11Result(subfigure="a:similarity", boxes=boxes,
                       loose_mb={"HI-Sim": 1.0, "LO-Sim": 1.0}, repeats=1)


def is_valid_svg(canvas) -> bool:
    root = ET.fromstring(canvas.to_svg())
    return root.tag.endswith("svg")


class TestCharts:
    def test_fig8_charts(self, fig8_result):
        assert is_valid_svg(fig8_latency_chart(fig8_result))
        assert is_valid_svg(fig8_cold_chart(fig8_result))

    def test_fig9_chart(self, fig9_result):
        assert is_valid_svg(fig9_chart(fig9_result))

    def test_fig10_chart(self, fig10_result):
        assert is_valid_svg(fig10_chart(fig10_result))

    def test_fig11_chart(self, fig11_result):
        assert is_valid_svg(fig11_chart(fig11_result))


class TestSaveFigures:
    def test_writes_known_results(self, tmp_path, fig8_result, fig9_result,
                                  fig10_result, fig11_result):
        written = save_figures(
            {
                "fig8": fig8_result,
                "fig9": fig9_result,
                "fig10": fig10_result,
                "fig11a": fig11_result,
                "unknown": object(),
            },
            tmp_path,
        )
        names = {p.name for p in written}
        assert names == {
            "fig8a_latency.svg", "fig8b_cold_starts.svg",
            "fig9_trajectory.svg", "fig10_memory.svg", "fig11a.svg",
        }
        for path in written:
            ET.parse(path)  # well-formed XML

    def test_empty_results(self, tmp_path):
        assert save_figures({}, tmp_path) == []
