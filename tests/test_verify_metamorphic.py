"""Metamorphic tests: known input transformations with known output effects.

Three relations from the issue:

* **match invariance** -- adding a package unrelated to any function to
  *both* images of a pair never changes their Table-I match level, and
  adding it to only one image can lower but never raise the level;
* **time-shift equivariance** -- uniformly shifting every arrival time by
  ``delta`` shifts completion times by exactly ``delta`` and changes no
  decision (same containers, matches, latencies, queueing, workers);
* **concurrency monotonicity** -- raising ``worker_concurrency`` never
  increases total queueing delay.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_image
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.containers.image import FunctionImage
from repro.containers.matching import match_level
from repro.experiments.parallel import build_scheduler
from repro.packages.package import Package, PackageLevel
from repro.workloads.fstartbench import build_workload
from repro.workloads.workload import Workload

# ---------------------------------------------------------------------------
# Match-level invariance under unrelated packages
# ---------------------------------------------------------------------------

_OS_NAMES = ("alpine", "ubuntu", "centos")
_LANG_NAMES = ("python", "nodejs", "go")
_RUNTIME_NAMES = ("flask", "numpy", "pandas", "express", "gin")

_image_strategy = st.builds(
    make_image,
    name=st.just("img"),
    os_name=st.sampled_from(_OS_NAMES),
    lang_name=st.sampled_from(_LANG_NAMES),
    runtime_names=st.sets(
        st.sampled_from(_RUNTIME_NAMES), min_size=1, max_size=3
    ).map(sorted),
)

_unrelated_package = st.builds(
    Package,
    st.just("totally-unrelated"),
    st.sampled_from(["0.1", "0.2"]),
    st.sampled_from(list(PackageLevel)),
    st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def _with_package(image: FunctionImage, pkg: Package) -> FunctionImage:
    return FunctionImage.from_packages(
        image.name, list(image.packages) + [pkg],
        memory_overhead_mb=0.0,
    )


@given(a=_image_strategy, b=_image_strategy, pkg=_unrelated_package)
@settings(max_examples=60, deadline=None)
def test_unrelated_package_added_to_both_preserves_match(a, b, pkg):
    """The same unrelated package on both sides never moves the level."""
    before = match_level(a, b)
    after = match_level(_with_package(a, pkg), _with_package(b, pkg))
    assert after is before


@given(a=_image_strategy, b=_image_strategy, pkg=_unrelated_package)
@settings(max_examples=60, deadline=None)
def test_unrelated_package_on_one_side_never_raises_match(a, b, pkg):
    """A fresh package on one side can only break levels, never add one."""
    before = match_level(a, b)
    assert match_level(_with_package(a, pkg), b) <= before
    assert match_level(a, _with_package(b, pkg)) <= before


# ---------------------------------------------------------------------------
# Time-shift equivariance
# ---------------------------------------------------------------------------

def _shift(workload: Workload, delta: float) -> Workload:
    return Workload.from_invocations(
        f"{workload.name}+{delta}",
        [replace(inv, arrival_time=inv.arrival_time + delta)
         for inv in workload],
    )


def _records(workload: Workload, scheduler_key: str,
             worker_concurrency=None):
    scheduler = build_scheduler(scheduler_key)
    scheduler.reset()
    if hasattr(scheduler, "observe_workload"):
        scheduler.observe_workload(workload)
    sim = ClusterSimulator(SimulationConfig(
        pool_capacity_mb=1200.0,
        worker_concurrency=worker_concurrency,
    ))
    return sim.run(workload, scheduler).telemetry.records


@pytest.mark.parametrize("scheduler", ["lru", "greedy", "keepalive"])
@pytest.mark.parametrize("delta", [7.25, 120.0])
def test_arrival_shift_shifts_completions_by_delta(scheduler, delta):
    workload = build_workload("LO-Sim", seed=0)
    base = _records(workload, scheduler)
    shifted = _records(_shift(workload, delta), scheduler)
    assert len(base) == len(shifted)
    for a, b in zip(base, shifted):
        assert b.arrival_time == pytest.approx(a.arrival_time + delta)
        # Completion = arrival + queueing + startup + execution; everything
        # after the shifted arrival is decision-for-decision identical.
        assert b.container_id == a.container_id
        assert b.cold_start == a.cold_start
        assert b.match == a.match
        assert b.startup_latency_s == a.startup_latency_s
        assert b.queue_delay_s == a.queue_delay_s
        assert b.worker_id == a.worker_id
        assert b.execution_time_s == a.execution_time_s


# ---------------------------------------------------------------------------
# Concurrency monotonicity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload_name", ["LO-Sim", "Peak"])
def test_raising_worker_concurrency_never_increases_queueing(workload_name):
    workload = build_workload(workload_name, seed=0)
    totals = []
    for concurrency in (1, 2, 4, None):
        records = _records(workload, "greedy",
                           worker_concurrency=concurrency)
        totals.append(sum(r.queue_delay_s for r in records))
    for tighter, looser in zip(totals, totals[1:]):
        assert looser <= tighter + 1e-9
    assert totals[-1] == 0.0  # no admission control, no queueing
