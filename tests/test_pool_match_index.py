"""Consistency tests for the warm pool's fingerprint match index.

The index must mirror pool membership exactly through every mutation --
add, remove, TTL expiry, and the claim/repack/re-add cycle (repack changes
the container's image, so re-adding must re-key it).  Each check compares
the index answers against a brute-force scan of the same pool.
"""

from repro.cluster.pool import PoolSet, WarmPool
from repro.containers.container import ContainerState
from repro.containers.matching import MatchLevel, match_level

from conftest import make_container, make_image


def scan_depth_counts(pool, image):
    """Brute-force per-level counts, the index's ground truth."""
    counts = [0, 0, 0, 0]
    for c in pool.containers():
        counts[int(match_level(image, c.image))] += 1
    return tuple(counts)


def scan_best_match(pool, image):
    """Brute-force deepest match with MRU tie-break."""
    best, best_level = None, MatchLevel.NO_MATCH
    for c in pool.containers():
        level = match_level(image, c.image)
        if level > best_level or (
            level == best_level
            and best is not None
            and (c.last_used_at, c.container_id)
            > (best.last_used_at, best.container_id)
        ):
            if level.is_reusable:
                best, best_level = c, level
    return best, best_level


def assert_index_consistent(pool, images):
    """Index answers equal brute-force scans for every probe image."""
    for image in images:
        assert pool.match_depth_counts(image) == scan_depth_counts(pool, image)
        container, level = pool.best_match(image)
        expected_container, expected_level = scan_best_match(pool, image)
        assert level is expected_level
        assert container is expected_container


def make_probe_images():
    return [
        make_image("p-full"),
        make_image("p-l2", runtime_names=("numpy",)),
        make_image("p-l1", lang_name="nodejs"),
        make_image("p-no", os_name="debian"),
    ]


class TestWarmPoolIndex:
    def test_add_remove_keeps_index_consistent(self):
        pool = WarmPool(capacity_mb=float("inf"))
        probes = make_probe_images()
        variants = [
            make_image("v0"),
            make_image("v1", runtime_names=("numpy",)),
            make_image("v2", lang_name="nodejs"),
            make_image("v3", os_name="debian"),
        ]
        for i in range(12):
            pool.add(make_container(i, image=variants[i % 4],
                                    last_used_at=float(i)))
            assert_index_consistent(pool, probes)
        for i in (3, 0, 11, 7):
            pool.remove(i)
            assert_index_consistent(pool, probes)

    def test_expiry_keeps_index_consistent(self):
        pool = WarmPool(capacity_mb=float("inf"))
        probes = make_probe_images()
        for i in range(8):
            pool.add(make_container(i, last_used_at=float(i)))
        expired = pool.expire_older_than(4.0)
        assert sorted(c.container_id for c in expired) == [0, 1, 2, 3]
        assert len(pool) == 4
        assert_index_consistent(pool, probes)

    def test_expiry_only_pops_expired_heads(self):
        pool = WarmPool(capacity_mb=float("inf"))
        for i in range(5):
            pool.add(make_container(i, last_used_at=float(i)))
        assert pool.expire_older_than(0.0) == []
        assert len(pool) == 5
        head = pool.oldest()
        assert head is not None and head.container_id == 0

    def test_repack_rekeys_index(self):
        """claim -> repack (image swap) -> re-add must re-key the entry."""
        pool = WarmPool(capacity_mb=float("inf"))
        probes = make_probe_images()
        old_image = make_image("old")
        new_image = make_image("new", runtime_names=("numpy", "pandas"))
        c = make_container(1, image=old_image)
        pool.add(c)
        assert pool.best_match(old_image)[1] is MatchLevel.L3

        claimed = pool.remove(1)
        claimed.claim()
        claimed.image = new_image  # what the cleaner's repack does
        claimed.state = ContainerState.IDLE
        pool.add(claimed)

        assert pool.best_match(new_image)[1] is MatchLevel.L3
        assert pool.best_match(old_image)[1] is MatchLevel.L2
        assert_index_consistent(pool, probes + [new_image])

    def test_mutated_image_while_pooled_still_removable(self):
        """Removal uses the add-time key even if the image was swapped."""
        pool = WarmPool(capacity_mb=float("inf"))
        c = make_container(1, image=make_image("old"))
        pool.add(c)
        c.image = make_image("new", runtime_names=("tensorflow",))
        removed = pool.remove(1)
        assert removed is c
        assert len(pool) == 0
        assert pool.match_depth_counts(make_image("old")) == (0, 0, 0, 0)

    def test_match_candidates_levels_nest(self):
        pool = WarmPool(capacity_mb=float("inf"))
        image = make_image("probe")
        pool.add(make_container(1, image=make_image("a")))
        pool.add(make_container(2, image=make_image("b", runtime_names=("numpy",))))
        pool.add(make_container(3, image=make_image("c", lang_name="nodejs")))
        pool.add(make_container(4, image=make_image("d", os_name="debian")))
        l3 = {c.container_id for c in pool.match_candidates(image, MatchLevel.L3)}
        l2 = {c.container_id for c in pool.match_candidates(image, MatchLevel.L2)}
        l1 = {c.container_id for c in pool.match_candidates(image, MatchLevel.L1)}
        assert l3 == {1}
        assert l2 == {1, 2}
        assert l1 == {1, 2, 3}
        assert l3 <= l2 <= l1


class TestPoolSetIndex:
    def test_sharded_queries_match_scan(self):
        pools = PoolSet(capacity_mb=float("inf"), n_shards=3)
        probes = make_probe_images()
        variants = [
            make_image("v0"),
            make_image("v1", runtime_names=("numpy",)),
            make_image("v2", lang_name="nodejs"),
            make_image("v3", os_name="debian"),
        ]
        for i in range(12):
            pools.add(make_container(i, image=variants[i % 4],
                                     last_used_at=float(i)),
                      shard_index=i)
        assert_index_consistent(pools, probes)
        for i in (2, 5, 9):
            pools.remove(i)
        assert_index_consistent(pools, probes)

    def test_sharded_expiry_pops_shard_map(self):
        pools = PoolSet(capacity_mb=float("inf"), n_shards=2)
        for i in range(6):
            pools.add(make_container(i, last_used_at=float(i)), shard_index=i)
        expired = pools.expire_older_than(3.0)
        assert sorted(c.container_id for c in expired) == [0, 1, 2]
        assert len(pools) == 3
        for c in expired:
            assert c.container_id not in pools

    def test_exact_matches_mru_first(self):
        pools = PoolSet(capacity_mb=float("inf"), n_shards=2)
        image = make_image("probe")
        for i in range(4):
            pools.add(make_container(i, last_used_at=float(i)), shard_index=i)
        ids = [c.container_id for c in pools.exact_matches(image)]
        assert ids == [3, 2, 1, 0]
