"""Tests for worker placement accounting."""

import pytest

from repro.cluster.worker import WorkerSet


class TestWorkerSet:
    def test_least_loaded_placement(self):
        ws = WorkerSet(n_workers=2)
        ws.place(1, 100.0)
        ws.place(2, 50.0)   # goes to the other worker
        ws.place(3, 10.0)   # goes to the lighter worker (worker of #2)
        assert ws.worker_of(1) != ws.worker_of(2)
        assert ws.worker_of(3) == ws.worker_of(2)

    def test_release_rebalances(self):
        ws = WorkerSet(n_workers=2)
        ws.place(1, 100.0)
        ws.place(2, 50.0)
        ws.release(1, 100.0)
        ws.place(3, 10.0)
        assert ws.worker_of(3) == 0  # worker 0 is now empty

    def test_duplicate_placement_rejected(self):
        ws = WorkerSet()
        ws.place(1, 10.0)
        with pytest.raises(ValueError):
            ws.place(1, 10.0)

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            WorkerSet().release(42, 1.0)

    def test_load_snapshot(self):
        ws = WorkerSet(n_workers=3)
        ws.place(1, 64.0)
        snap = ws.load_snapshot()
        assert len(snap) == 3
        assert sum(s["memory_mb"] for s in snap) == pytest.approx(64.0)

    def test_at_least_one_worker(self):
        with pytest.raises(ValueError):
            WorkerSet(n_workers=0)

    def test_memory_never_negative(self):
        ws = WorkerSet(n_workers=1)
        ws.place(1, 10.0)
        ws.release(1, 999.0)  # over-release clamps to zero
        assert ws.load_snapshot()[0]["memory_mb"] == 0.0
