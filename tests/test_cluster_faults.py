"""Tests for fault injection (crashes, pull stragglers)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultConfig, FaultModel
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.containers.costmodel import StartupBreakdown
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.fstartbench import overall_workload


class TestFaultConfig:
    def test_defaults_disabled(self):
        assert not FaultConfig().enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_prob=1.5)
        with pytest.raises(ValueError):
            FaultConfig(straggler_prob=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(straggler_factor=0.5)

    def test_enabled_flag(self):
        assert FaultConfig(crash_prob=0.1).enabled
        assert FaultConfig(straggler_prob=0.1).enabled


class TestFaultModel:
    def test_never_crashes_when_disabled(self):
        model = FaultModel(FaultConfig())
        assert not any(model.should_crash() for _ in range(100))

    def test_always_crashes_at_prob_one(self):
        model = FaultModel(FaultConfig(crash_prob=1.0))
        assert all(model.should_crash() for _ in range(20))

    def test_straggler_multiplies_pull_only(self):
        model = FaultModel(FaultConfig(straggler_prob=1.0,
                                       straggler_factor=3.0))
        bd = StartupBreakdown(create_s=0.5, pull_s=2.0, install_s=0.3)
        out, straggled = model.perturb_breakdown(bd)
        assert straggled
        assert out.pull_s == pytest.approx(6.0)
        assert out.create_s == bd.create_s
        assert out.install_s == bd.install_s

    def test_no_straggle_without_pull(self):
        model = FaultModel(FaultConfig(straggler_prob=1.0))
        bd = StartupBreakdown(clean_s=0.05, function_init_s=0.1)
        out, straggled = model.perturb_breakdown(bd)
        assert not straggled
        assert out == bd

    def test_deterministic_per_seed(self):
        a = FaultModel(FaultConfig(crash_prob=0.5, seed=7))
        b = FaultModel(FaultConfig(crash_prob=0.5, seed=7))
        assert [a.should_crash() for _ in range(30)] == [
            b.should_crash() for _ in range(30)
        ]


class TestFaultySimulation:
    def _run(self, faults: FaultConfig, scheduler_cls=GreedyMatchScheduler):
        workload = overall_workload(seed=0, n=120)
        scheduler = scheduler_cls()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=2000.0, faults=faults),
            scheduler.make_eviction_policy(),
        )
        return sim.run(workload, scheduler).telemetry

    def test_crashes_counted_and_conservation_holds(self):
        t = self._run(FaultConfig(crash_prob=0.3, seed=1))
        assert t.container_crashes > 0
        assert t.n_invocations == 120  # every arrival still served

    def test_crashes_increase_cold_starts(self):
        clean = self._run(FaultConfig())
        faulty = self._run(FaultConfig(crash_prob=0.5, seed=1))
        assert faulty.cold_starts > clean.cold_starts

    def test_stragglers_increase_latency(self):
        clean = self._run(FaultConfig())
        slow = self._run(FaultConfig(straggler_prob=0.5,
                                     straggler_factor=5.0, seed=2))
        assert slow.stragglers > 0
        assert slow.total_startup_latency_s > clean.total_startup_latency_s

    def test_summary_includes_fault_counters(self):
        t = self._run(FaultConfig(crash_prob=0.2, seed=3))
        summary = t.summary()
        assert "container_crashes" in summary
        assert "stragglers" in summary

    @settings(max_examples=10, deadline=None)
    @given(crash=st.floats(min_value=0.0, max_value=0.9),
           straggle=st.floats(min_value=0.0, max_value=0.9))
    def test_invariants_hold_under_any_fault_rates(self, crash, straggle):
        t = self._run(FaultConfig(crash_prob=crash, straggler_prob=straggle,
                                  seed=4), scheduler_cls=LRUScheduler)
        assert t.n_invocations == 120
        assert t.cold_starts + t.warm_starts == 120
        assert t.peak_warm_memory_mb <= 2000.0 + 1e-6
