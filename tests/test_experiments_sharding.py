"""Tests for the pool-sharding extension experiment."""

import pytest

from repro.experiments import sharding
from repro.experiments.common import ExperimentScale


MICRO = ExperimentScale(
    repeats=1, train_episodes=1, demo_episodes=0, n_slots=6, model_dim=8,
    fig11_pool_fractions=(1.0,), restarts=1,
)


class TestShardingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return sharding.run(MICRO, worker_counts=(1, 4))

    def test_rows_complete(self, result):
        assert len(result.rows) == 4  # 2 methods x 2 worker counts

    def test_row_lookup(self, result):
        row = result.row("LRU", 4)
        assert row.n_workers == 4
        with pytest.raises(KeyError):
            result.row("LRU", 99)

    def test_fragmentation_not_better(self, result):
        for method in ("LRU", "Greedy-Match"):
            one = result.row(method, 1).total_startup_s
            four = result.row(method, 4).total_startup_s
            assert four >= 0.95 * one

    def test_report_renders(self, result):
        text = sharding.report(result)
        assert "sharding" in text and "workers" in text
