"""End-to-end HTTP tests for the serving plane: every endpoint and status
code, admission-control rejection, and the headline acceptance check --
64 concurrent in-flight requests with live invariant monitors clean.

pytest-asyncio is not a dependency, so each test is a synchronous function
running its async body through ``asyncio.run``.  Engines take a scripted
:class:`VirtualClock` as their wall source so arrival stamps are
deterministic; only connection holds (``time_scale``) consume real time.
"""

import asyncio
import json

import pytest

from repro.cluster.eventloop import VirtualClock
from repro.cluster.simulator import SimulationConfig
from repro.serve import DecisionRecorder, ServeEngine, ServePlane, http_json
from repro.serve.client import http_json as client_http_json


def _plane(config=None, *, engine_kwargs=None, **plane_kwargs):
    """Build an (engine, plane, clock) triple on a free port (unstarted)."""
    clock = VirtualClock()
    config = config or SimulationConfig(pool_capacity_mb=8192.0, n_workers=2)
    engine = ServeEngine(config, wall=clock, **(engine_kwargs or {}))
    plane = ServePlane(engine, **plane_kwargs)
    return engine, plane, clock


async def _serving(plane, body):
    """Start ``plane``, run ``body()``, always shut down cleanly."""
    await plane.start()
    try:
        return await body()
    finally:
        if not plane.engine.closed:
            await plane.stop()


class TestEndpoints:
    def test_invoke_returns_decision(self):
        engine, plane, clock = _plane()

        async def body():
            clock.advance_to(1.0)
            status, payload = await http_json(
                plane.host, plane.port, "POST", "/invoke",
                {"function": "hello-python", "exec_s": 0.25},
            )
            assert status == 200
            assert payload["function"] == "hello-python"
            assert payload["cold_start"] is True
            assert payload["arrival_t"] == 1.0
            assert payload["exec_time_s"] == 0.25
            return payload

        asyncio.run(_serving(plane, body))

    def test_invoke_by_numeric_id(self):
        engine, plane, _ = _plane()

        async def body():
            status, payload = await http_json(
                plane.host, plane.port, "POST", "/invoke", {"function": 4}
            )
            assert status == 200 and payload["function"] == "hello-python"

        asyncio.run(_serving(plane, body))

    def test_error_statuses(self):
        engine, plane, _ = _plane()

        async def body():
            host, port = plane.host, plane.port
            # 404: unknown function name.
            status, payload = await http_json(
                host, port, "POST", "/invoke", {"function": "no-such-fn"}
            )
            assert status == 404 and "error" in payload
            # 400: missing / mistyped fields.
            status, _ = await http_json(host, port, "POST", "/invoke", {})
            assert status == 400
            status, _ = await http_json(
                host, port, "POST", "/invoke",
                {"function": "hello-python", "exec_s": "fast"},
            )
            assert status == 400
            # 404: unknown path; 405: wrong method on a known path.
            status, _ = await http_json(host, port, "GET", "/nope")
            assert status == 404
            status, _ = await http_json(host, port, "GET", "/invoke")
            assert status == 405
            # 400: malformed JSON body.
            reader, writer = await asyncio.open_connection(host, port)
            raw = b"not json"
            writer.write(
                b"POST /invoke HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\nConnection: close\r\n\r\n%s"
                % (len(raw), raw)
            )
            await writer.drain()
            response = await reader.read()
            writer.close()
            assert b"400" in response.split(b"\r\n", 1)[0]

        asyncio.run(_serving(plane, body))

    def test_stats_and_scheduler_swap(self):
        engine, plane, clock = _plane()

        async def body():
            host, port = plane.host, plane.port
            clock.advance_to(1.0)
            await http_json(host, port, "POST", "/invoke",
                            {"function": "hello-python", "exec_s": 0.1})
            status, payload = await http_json(
                host, port, "POST", "/scheduler", {"scheduler": "greedy"}
            )
            assert status == 200
            assert payload == {"scheduler": "greedy", "previous": "lru"}
            status, _ = await http_json(
                host, port, "POST", "/scheduler", {"scheduler": "bogus"}
            )
            assert status == 400

            status, stats = await http_json(host, port, "GET", "/stats")
            assert status == 200
            assert stats["scheduler"] == "greedy"
            assert stats["scheduler_swaps"] == 1
            assert stats["requests"] == 1
            assert stats["cold_starts"] == 1
            assert stats["startup_latency"]["count"] == 1
            assert stats["wall_latency"]["count"] == 1
            assert stats["admission"]["accepted"] == 1
            assert json.dumps(stats)  # entire snapshot is JSON-clean

        asyncio.run(_serving(plane, body))

    def test_healthz_reports_monitor_state(self):
        config = SimulationConfig(
            pool_capacity_mb=8192.0, n_workers=2, verify=True
        )
        engine, plane, clock = _plane(config)

        async def body():
            host, port = plane.host, plane.port
            clock.advance_to(1.0)
            await http_json(host, port, "POST", "/invoke",
                            {"function": "hello-python"})
            status, report = await http_json(host, port, "GET", "/healthz")
            assert status == 200
            assert report["healthy"] and report["verified"]
            # Corrupt the books: the live monitors must turn the page red.
            engine.sim.lifecycle.created_count += 1
            status, report = await http_json(host, port, "GET", "/healthz")
            assert status == 500
            assert not report["healthy"]
            assert "conservation" in report["violation"]
            # Restore so shutdown-time verification stays clean.
            engine.sim.lifecycle.created_count -= 1

        asyncio.run(_serving(plane, body))

    def test_rejects_with_429_when_admission_full(self):
        engine, plane, clock = _plane(
            time_scale=0.2, max_inflight=2, max_queue=0
        )

        async def body():
            host, port = plane.host, plane.port
            clock.advance_to(1.0)

            async def invoke():
                return await http_json(
                    host, port, "POST", "/invoke",
                    {"function": "hello-python", "exec_s": 1.0},
                )

            # Two requests occupy both slots (held ~0.5s wall each)...
            first_two = [asyncio.create_task(invoke()) for _ in range(2)]
            await asyncio.sleep(0.15)
            # ...so the third finds no slot and no queue.
            status, payload = await invoke()
            assert status == 429 and "error" in payload
            assert all(s == 200 for s, _ in await asyncio.gather(*first_two))

            status, stats = await http_json(host, port, "GET", "/stats")
            assert stats["rejected"] == 1
            assert stats["admission"]["rejected"] == 1
            assert stats["admission"]["max_inflight"] == 2

        asyncio.run(_serving(plane, body))

    def test_503_while_draining(self):
        engine, plane, _ = _plane()

        async def body():
            plane._draining = True
            status, payload = await http_json(
                plane.host, plane.port, "POST", "/invoke",
                {"function": "hello-python"},
            )
            assert status == 503 and "drain" in payload["error"]
            plane._draining = False

        asyncio.run(_serving(plane, body))

    def test_client_alias_is_the_package_export(self):
        assert http_json is client_http_json


class TestConcurrency:
    def test_sustains_64_concurrent_inflight_with_clean_monitors(self):
        """Acceptance: >= 64 requests simultaneously in flight, invariant
        monitors live the whole time, every request served."""
        config = SimulationConfig(
            pool_capacity_mb=300_000.0,
            n_workers=4,
            worker_concurrency=16,
            verify=True,
            bounded_telemetry=True,
        )
        engine, plane, clock = _plane(
            config,
            engine_kwargs={"recorder": DecisionRecorder()},
            time_scale=0.08,  # ~0.3-0.6s wall holds; plenty of overlap
        )
        assert plane.admission.max_inflight == 64

        async def body():
            host, port = plane.host, plane.port
            clock.advance_to(1.0)

            async def invoke(i):
                return await http_json(
                    host, port, "POST", "/invoke",
                    {"function": ("hello-python", "hello-node",
                                  "hello-go", "hello-java")[i % 4],
                     "exec_s": 2.0},
                    timeout_s=60.0,
                )

            results = await asyncio.gather(*(invoke(i) for i in range(64)))
            assert all(status == 200 for status, _ in results)

            status, report = await http_json(host, port, "GET", "/healthz")
            assert status == 200 and report["healthy"]
            status, stats = await http_json(host, port, "GET", "/stats")
            assert stats["requests"] == 64
            assert stats["admission"]["peak_inflight"] >= 64
            assert stats["errors"] == 0

        asyncio.run(_serving(plane, body))
        # The session recorded every decision; replay must agree.
        from repro.serve import replay_recording

        report = replay_recording(engine.recorder.lines(), verify=True)
        assert report.ok, str(report.divergence)
        assert report.n_decisions == 64


class TestCliServeWiring:
    def test_cmd_serve_builds_and_drains(self, tmp_path, monkeypatch, capsys):
        """`repro serve` wires config flags through to a live plane and
        prints the drained summary when interrupted."""
        from repro import cli

        record = tmp_path / "session.jsonl"

        # cmd_serve parks on the *first* Event.wait (its forever-wait);
        # interrupt only that one so the shutdown path's own Event waits
        # (connection drain, admission drain) still work.
        real_wait = asyncio.Event.wait
        calls = {"n": 0}

        async def fake_wait(self):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return await real_wait(self)

        monkeypatch.setattr(asyncio.Event, "wait", fake_wait, raising=True)
        rc = cli.main([
            "serve", "--port", "0", "--scheduler", "keepalive",
            "--workers", "2", "--concurrency", "4",
            "--keepalive", "30", "--record", str(record),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving" in out.lower()
        assert record.exists()
        header = json.loads(record.read_text().splitlines()[0])
        assert header["scheduler"] == "keepalive"
        assert header["worker_concurrency"] == 4
