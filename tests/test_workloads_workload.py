"""Tests for Workload and Invocation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.workload import Invocation, Workload, assemble

from conftest import make_invocation, make_spec


class TestInvocation:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_invocation(arrival_time=-1.0)
        with pytest.raises(ValueError):
            make_invocation(execution_time_s=0.0)


class TestWorkload:
    def test_sorted_enforced(self):
        invs = [make_invocation(invocation_id=0, arrival_time=5.0),
                make_invocation(invocation_id=1, arrival_time=1.0)]
        with pytest.raises(ValueError):
            Workload("w", tuple(invs))

    def test_from_invocations_sorts(self):
        invs = [make_invocation(invocation_id=0, arrival_time=5.0),
                make_invocation(invocation_id=1, arrival_time=1.0)]
        wl = Workload.from_invocations("w", invs)
        assert [i.arrival_time for i in wl] == [1.0, 5.0]

    def test_duration(self):
        wl = Workload.from_invocations("w", [
            make_invocation(invocation_id=0, arrival_time=2.0),
            make_invocation(invocation_id=1, arrival_time=9.0),
        ])
        assert wl.duration_s == 9.0
        assert Workload.from_invocations("e", []).duration_s == 0.0

    def test_function_specs_dedup(self):
        spec = make_spec(name="one")
        wl = Workload.from_invocations("w", [
            make_invocation(spec, 0, arrival_time=0.0),
            make_invocation(spec, 1, arrival_time=1.0),
        ])
        assert len(wl.function_specs()) == 1

    def test_invocation_counts(self):
        a, b = make_spec(name="a"), make_spec(name="b")
        wl = Workload.from_invocations("w", [
            make_invocation(a, 0, arrival_time=0.0),
            make_invocation(a, 1, arrival_time=1.0),
            make_invocation(b, 2, arrival_time=2.0),
        ])
        assert wl.invocation_counts() == {"a": 2, "b": 1}

    def test_interarrival(self):
        wl = Workload.from_invocations("w", [
            make_invocation(invocation_id=0, arrival_time=0.0),
            make_invocation(invocation_id=1, arrival_time=3.0),
            make_invocation(invocation_id=2, arrival_time=4.0),
        ])
        np.testing.assert_allclose(wl.interarrival_times(), [3.0, 1.0])
        assert Workload.from_invocations("x", []).interarrival_times().size == 0


class TestAssemble:
    def test_merges_and_renumbers(self, rng):
        a, b = make_spec(name="a"), make_spec(name="b")
        wl = assemble("w", [a, b],
                      [np.array([5.0, 1.0]), np.array([3.0])], rng)
        assert [i.invocation_id for i in wl] == [0, 1, 2]
        assert [i.spec.name for i in wl] == ["a", "b", "a"]

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            assemble("w", [make_spec()], [], rng)

    def test_exec_times_sampled_positive(self, rng):
        spec = make_spec(name="a")
        wl = assemble("w", [spec], [np.linspace(0, 10, 20)], rng)
        assert all(i.execution_time_s > 0 for i in wl)


@given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                min_size=0, max_size=30))
def test_workload_always_ordered(times):
    invs = [make_invocation(invocation_id=i, arrival_time=t)
            for i, t in enumerate(times)]
    wl = Workload.from_invocations("w", invs)
    arr = wl.arrival_times()
    assert (np.diff(arr) >= 0).all() if arr.size > 1 else True
    assert len(wl) == len(times)
