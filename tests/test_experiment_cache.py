"""The content-addressed experiment cache: keys, storage, equivalence."""

from __future__ import annotations

import json

import pytest

from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    ExperimentCache,
    cache_enabled_by_env,
    config_fingerprint,
    default_cache_root,
    digest_payload,
    pool_sizes_cached,
    version_stamp,
)
from repro.experiments.common import pool_sizes
from repro.experiments.parallel import (
    GridResult,
    GridTask,
    cached_workload,
    run_grid,
)
from repro.cluster.simulator import SimulationConfig

TASK = GridTask(scheduler="lru", workload="LO-Sim", seed=0,
                pool_label="Fixed", capacity_mb=2000.0)


class TestDigests:
    def test_digest_is_stable(self):
        payload = {"b": 2, "a": [1.5, float("inf")]}
        assert digest_payload(payload) == digest_payload(dict(payload))

    def test_digest_key_order_canonical(self):
        assert (digest_payload({"a": 1, "b": 2})
                == digest_payload({"b": 2, "a": 1}))

    def test_digest_handles_non_finite(self):
        d1 = digest_payload({"x": float("inf")})
        d2 = digest_payload({"x": float("-inf")})
        d3 = digest_payload({"x": float("nan")})
        assert len({d1, d2, d3}) == 3

    def test_config_fingerprint_covers_capacity(self):
        a = config_fingerprint(SimulationConfig(pool_capacity_mb=1000.0))
        b = config_fingerprint(SimulationConfig(pool_capacity_mb=2000.0))
        assert a != b
        assert digest_payload(a) != digest_payload(b)

    def test_cell_key_changes_with_any_task_field(self):
        from dataclasses import replace

        cache = ExperimentCache(enabled=True)
        base = cache.cell_key(TASK)
        assert base == cache.cell_key(TASK)  # deterministic
        for change in (
            {"scheduler": "greedy"},
            {"workload": "Peak"},
            {"seed": 1},
            {"pool_label": "Tight"},
            {"capacity_mb": 2048.0},
        ):
            assert cache.cell_key(replace(TASK, **change)) != base

    def test_version_bump_invalidates(self, monkeypatch):
        cache = ExperimentCache(enabled=True)
        base = cache.cell_key(TASK)
        monkeypatch.setattr(cache_mod, "ENGINE_VERSION", 2)
        assert cache.cell_key(TASK) != base
        assert version_stamp()["engine"] == 2


class TestStorage:
    def test_cell_round_trip_is_exact(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        [cell] = run_grid([TASK], cache=cache)
        hit = cache.get_cell(TASK)
        assert hit is not None
        assert hit.method == cell.method
        assert hit.summary == cell.summary  # bit-exact doubles
        assert hit.task == TASK

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        run_grid([TASK], cache=cache)
        path = tmp_path / "cells" / f"{cache.cell_key(TASK)}.json"
        path.write_text("{not json")
        assert cache.get_cell(TASK) is None
        path.write_text(json.dumps({"method": "x"}))  # missing columns
        assert cache.get_cell(TASK) is None

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=False)
        run_grid([TASK], cache=cache)
        assert not (tmp_path / "cells").exists()
        assert cache.get_cell(TASK) is None
        assert cache.hits == 0

    def test_hit_miss_counters(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        assert cache.get_cell(TASK) is None
        assert (cache.hits, cache.misses) == (0, 1)
        run_grid([TASK], cache=cache)
        assert cache.get_cell(TASK) is not None
        assert cache.hits == 1

    def test_pool_sizes_round_trip(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        fresh = pool_sizes(cached_workload("LO-Sim", 0))
        stored = pool_sizes_cached("LO-Sim", 0, cache)
        assert stored == fresh
        served = pool_sizes_cached("LO-Sim", 0, cache)
        assert served == fresh
        assert list(served) == list(fresh)  # label order preserved
        assert cache.hits == 1

    def test_section_round_trip(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        scale = {"repeats": 2, "train_episodes": 5, "restarts": 1}
        assert cache.get_section("fig8", scale) is None
        cache.put_section("fig8", scale, "the body\nline 2")
        assert cache.get_section("fig8", scale) == "the body\nline 2"
        assert cache.get_section("fig8", {**scale, "repeats": 3}) is None

    def test_prune_empties_every_bucket(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        run_grid([TASK], cache=cache)
        pool_sizes_cached("LO-Sim", 0, cache)
        cache.put_section("s", {}, "body")
        assert cache.prune() == 3
        assert cache.get_cell(TASK) is None


class TestEnvOverrides:
    def test_repro_cache_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not cache_enabled_by_env()
        assert ExperimentCache().enabled is False

    def test_repro_cache_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled_by_env()

    def test_repro_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"
        assert ExperimentCache(enabled=True).root == tmp_path / "elsewhere"

    def test_explicit_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert ExperimentCache(enabled=True).enabled is True


class TestEquivalence:
    @pytest.fixture(scope="class")
    def tasks(self):
        return [
            GridTask(scheduler=key, workload="LO-Sim", seed=seed,
                     pool_label="Fixed", capacity_mb=1500.0)
            for key in ("lru", "greedy")
            for seed in (0, 1)
        ]

    def test_cached_report_bytes_equal_fresh(self, tasks, tmp_path):
        fresh = GridResult(cells=run_grid(tasks)).report()
        cache = ExperimentCache(root=tmp_path, enabled=True)
        cold = GridResult(cells=run_grid(tasks, cache=cache)).report()
        warm = GridResult(cells=run_grid(tasks, cache=cache)).report()
        assert cold == fresh
        assert warm == fresh

    def test_warm_run_is_all_hits(self, tasks, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        run_grid(tasks, cache=cache)
        assert cache.misses == len(tasks)
        run_grid(tasks, cache=cache)
        assert cache.hits == len(tasks)

    def test_parallel_and_serial_share_cache_entries(self, tasks, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        serial = run_grid(tasks, jobs=1, cache=cache)
        warm_parallel = run_grid(tasks, jobs=2, cache=cache)
        assert ([c.summary for c in warm_parallel]
                == [c.summary for c in serial])
        assert cache.hits == len(tasks)
