"""Tests for the training-free experiments (fig1, fig2, fig3, tab2)."""

import pytest

from repro.containers.matching import MatchLevel
from repro.experiments import fig1_breakdown, fig2_motivation, fig3_dockerhub
from repro.experiments import tab2_functions


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_breakdown.run()

    def test_warm_always_faster(self, result):
        for label in result.cold:
            assert result.warm[label].total_s < result.cold[label].total_s

    def test_speedup_shape(self, result):
        """Paper: W accelerates startup by up to 14x over C."""
        assert result.max_speedup > 3.0

    def test_probes_reusable(self, result):
        assert all(m.is_reusable for m in result.match_levels.values())

    def test_warm_skips_create(self, result):
        for bd in result.warm.values():
            assert bd.create_s == 0.0
            assert bd.clean_s > 0.0

    def test_report_renders(self, result):
        text = fig1_breakdown.report(result)
        assert "speedups" in text and "Fig 1" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_motivation.run()

    def test_greedy_is_suboptimal(self, result):
        """The paper's core motivation: best-effort != globally best."""
        assert result.greedy_is_suboptimal
        assert result.policy1_total_s > result.policy2_total_s

    def test_option_table_structure(self, result):
        assert set(result.options) == {"F2", "F3"}
        for row in result.options.values():
            assert set(row) == {"C1", "C2", "cold"}

    def test_f2_full_match_is_cheap(self, result):
        assert result.options["F2"]["C1"] < 0.2

    def test_c2_unusable_by_both(self, result):
        assert result.options["F2"]["C2"] != result.options["F2"]["C2"]  # NaN
        assert result.options["F3"]["C2"] != result.options["F3"]["C2"]

    def test_report_renders(self, result):
        text = fig2_motivation.report(result)
        assert "Policy 1" in text and "Policy 2" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_dockerhub.run()

    def test_top4_share_near_77pct(self, result):
        assert 0.70 <= result.top4_base_share <= 0.84

    def test_top_lists_sorted(self, result):
        pulls = [c for _, c in result.top_base_images]
        assert pulls == sorted(pulls, reverse=True)

    def test_report_renders(self, result):
        text = fig3_dockerhub.report(result)
        assert "ubuntu" in text and "77%" in text


class TestTab2:
    @pytest.fixture(scope="class")
    def result(self):
        return tab2_functions.run()

    def test_13_rows(self, result):
        assert len(result.rows) == 13

    def test_ratio_band(self, result):
        assert result.min_ratio >= 1.2
        assert result.max_ratio <= 170

    def test_report_lists_all_functions(self, result):
        text = tab2_functions.report(result)
        for row in result.rows:
            assert row.name in text
