"""Tests for policy persistence and online fine-tuning."""

import numpy as np
import pytest

from repro.cluster.simulator import SimulationConfig
from repro.core.config import MLCRConfig
from repro.core.finetune import OnlineFineTuner
from repro.core.mlcr import train_mlcr_scheduler
from repro.core.persistence import load_scheduler, save_scheduler
from repro.drl.dqn import DQNConfig
from repro.experiments.common import evaluate_scheduler

from test_core_env_trainer import tiny_config, tiny_workload


@pytest.fixture(scope="module")
def trained():
    cfg = tiny_config()
    scheduler, _ = train_mlcr_scheduler(
        workload_factory=lambda ep: tiny_workload(seed=ep % 2),
        sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
        config=cfg,
    )
    return scheduler, cfg


class TestPersistence:
    def test_roundtrip_identical_decisions(self, trained, tmp_path):
        scheduler, cfg = trained
        path = save_scheduler(scheduler, cfg, tmp_path / "policy.npz")
        loaded = load_scheduler(path)

        wl = tiny_workload(seed=9)
        a = evaluate_scheduler(scheduler, wl, 10_000.0, "x")
        b = evaluate_scheduler(loaded, wl, 10_000.0, "x")
        assert a.total_startup_s == pytest.approx(b.total_startup_s)
        assert a.cold_starts == b.cold_starts

    def test_weights_identical(self, trained, tmp_path):
        scheduler, cfg = trained
        path = save_scheduler(scheduler, cfg, tmp_path / "p.npz")
        loaded = load_scheduler(path)
        for key, value in scheduler.agent.online.state_dict().items():
            np.testing.assert_array_equal(
                value, loaded.agent.online.state_dict()[key]
            )

    def test_mlp_roundtrip(self, tmp_path):
        cfg = tiny_config(use_attention=False)
        scheduler, _ = train_mlcr_scheduler(
            workload_factory=lambda ep: tiny_workload(seed=0),
            sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
            config=cfg,
        )
        path = save_scheduler(scheduler, cfg, tmp_path / "mlp.npz")
        loaded = load_scheduler(path)
        from repro.drl.network import MLPQNetwork

        assert isinstance(loaded.agent.online, MLPQNetwork)

    def test_bad_version_rejected(self, trained, tmp_path):
        import json

        scheduler, cfg = trained
        path = save_scheduler(scheduler, cfg, tmp_path / "p.npz")
        data = dict(np.load(path, allow_pickle=False))
        meta = json.loads(str(data["_meta"]))
        meta["format_version"] = 99
        data["_meta"] = np.array(json.dumps(meta))
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_scheduler(path)


class TestOnlineFineTuning:
    def test_serves_valid_decisions_and_learns(self, trained):
        scheduler, _ = trained
        tuner = OnlineFineTuner(scheduler, epsilon=0.0,
                                updates_per_decision=1)
        res = evaluate_scheduler(tuner, tiny_workload(seed=4), 10_000.0, "x")
        assert res.total_startup_s > 0
        assert tuner.decisions == 12
        assert tuner.updates > 0  # buffer was pre-filled by offline training

    def test_exploration_bounds(self, trained):
        scheduler, _ = trained
        with pytest.raises(ValueError):
            OnlineFineTuner(scheduler, epsilon=1.5)
        with pytest.raises(ValueError):
            OnlineFineTuner(scheduler, updates_per_decision=-1)

    def test_weights_change_during_fine_tuning(self, trained):
        scheduler, _ = trained
        before = {
            k: v.copy()
            for k, v in scheduler.agent.online.state_dict().items()
        }
        tuner = OnlineFineTuner(scheduler, epsilon=0.1,
                                updates_per_decision=2)
        evaluate_scheduler(tuner, tiny_workload(seed=5), 10_000.0, "x")
        after = scheduler.agent.online.state_dict()
        changed = any(
            not np.array_equal(before[k], after[k]) for k in before
        )
        assert changed

    def test_reset_clears_pending(self, trained):
        scheduler, _ = trained
        tuner = OnlineFineTuner(scheduler)
        evaluate_scheduler(tuner, tiny_workload(seed=6), 10_000.0, "x")
        tuner.reset()
        assert tuner._pending is None


class TestDuelingPersistence:
    def test_dueling_roundtrip(self, tmp_path):
        cfg = tiny_config(use_dueling=True)
        scheduler, _ = train_mlcr_scheduler(
            workload_factory=lambda ep: tiny_workload(seed=0),
            sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
            config=cfg,
        )
        path = save_scheduler(scheduler, cfg, tmp_path / "dueling.npz")
        loaded = load_scheduler(path)
        from repro.drl.network import DuelingAttentionQNetwork

        assert isinstance(loaded.agent.online, DuelingAttentionQNetwork)
        wl = tiny_workload(seed=3)
        a = evaluate_scheduler(scheduler, wl, 10_000.0, "x")
        b = evaluate_scheduler(loaded, wl, 10_000.0, "x")
        assert a.total_startup_s == pytest.approx(b.total_startup_s)
