"""DQN policy distillation: tree fitting, surrogate serving, telemetry.

Pinned properties:

* ``fit_tree`` reproduces any consistent labelling exactly in-sample
  (unique states, unconstrained depth) -- the 100%-agreement floor the
  distillation pipeline relies on.
* ``predict_batch`` is pointwise identical to the scalar ``predict``
  walk for arbitrary states (property-based).
* ``act`` returns ``None`` exactly when the live mask forbids the
  prediction; the scheduler's ``act_surrogate`` then falls back to the
  network and counts the fallback.
* Periodic audits count disagreements observationally (the surrogate's
  choice still serves) and fold into the telemetry summary.
* ``save_surrogate``/``load_surrogate`` round-trip every array and the
  metadata.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.telemetry import BoundedTelemetry, Telemetry
from repro.analysis.report import surrogate_report
from repro.core.mlcr import MLCRScheduler
from repro.drl.distill import (
    DistillConfig,
    TreeSurrogate,
    fit_tree,
    load_surrogate,
    save_surrogate,
)


def unique_states(rng, n, dim):
    """Random states with no duplicate rows (consistent labelling)."""
    states = rng.integers(0, 50, size=(n, dim)).astype(np.float64)
    _, keep = np.unique(states, axis=0, return_index=True)
    return states[np.sort(keep)]


def fitted(states, actions, n_actions, **config):
    return fit_tree(np.asarray(states, dtype=np.float64),
                    np.asarray(actions, dtype=np.int64),
                    n_actions, DistillConfig(**config))


class TestConfig:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            DistillConfig(max_depth=0)

    def test_rejects_bad_leaf(self):
        with pytest.raises(ValueError):
            DistillConfig(min_samples_leaf=0)


class TestFitTree:
    def test_axis_aligned_split(self):
        states = [[0.0], [1.0], [10.0], [11.0]]
        actions = [0, 0, 1, 1]
        tree = fitted(states, actions, 2)
        np.testing.assert_array_equal(
            tree.predict_batch(np.asarray(states)), actions)
        assert tree.n_nodes == 3  # one split, two leaves

    def test_pure_labels_single_leaf(self):
        tree = fitted([[0.0, 1.0], [5.0, 2.0]], [3, 3], 4)
        assert tree.n_nodes == 1
        assert tree.predict(np.array([99.0, -4.0])) == 3

    def test_depth_limit_falls_back_to_majority(self):
        states = [[0.0], [1.0], [2.0], [3.0]]
        tree = fitted(states, [0, 1, 0, 0], 2, max_depth=1)
        preds = tree.predict_batch(np.asarray(states))
        assert set(preds) <= {0, 1}
        assert (preds == [0, 1, 0, 0]).sum() >= 3

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(2, 40),
           dim=st.integers(1, 6),
           n_actions=st.integers(2, 5))
    def test_consistent_labels_fit_exactly(self, seed, n, dim, n_actions):
        rng = np.random.default_rng(seed)
        states = unique_states(rng, n, dim)
        actions = rng.integers(0, n_actions, size=len(states))
        tree = fitted(states, actions, n_actions, max_depth=64)
        np.testing.assert_array_equal(tree.predict_batch(states), actions)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_batch_matches_scalar_walk(self, seed):
        rng = np.random.default_rng(seed)
        train = unique_states(rng, 30, 4)
        tree = fitted(train, rng.integers(0, 3, size=len(train)), 3)
        probe = rng.normal(size=(25, 4)) * 30.0
        batch = tree.predict_batch(probe)
        for i, state in enumerate(probe):
            assert tree.predict(state) == batch[i]


class TestAct:
    def make_tree(self):
        return fitted([[0.0], [10.0]], [0, 1], 3)

    def test_mask_allows_prediction(self):
        tree = self.make_tree()
        assert tree.act(np.array([0.0]), np.array([1.0, 0.0, 0.0])) == 0

    def test_mask_forbids_prediction(self):
        tree = self.make_tree()
        assert tree.act(np.array([0.0]), np.array([0.0, 1.0, 1.0])) is None

    def test_prediction_beyond_mask_is_invalid(self):
        tree = self.make_tree()
        assert tree.act(np.array([20.0]), np.array([1.0])) is None


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        rng = np.random.default_rng(7)
        states = unique_states(rng, 25, 3)
        tree = fitted(states, rng.integers(0, 4, size=len(states)), 4)
        path = str(tmp_path / "surrogate.npz")
        save_surrogate(tree, path)
        loaded = load_surrogate(path)
        assert isinstance(loaded, TreeSurrogate)
        assert loaded.n_actions == tree.n_actions
        assert loaded.state_dim == tree.state_dim
        for attr in ("feature", "threshold", "left", "right", "value"):
            np.testing.assert_array_equal(
                getattr(loaded, attr), getattr(tree, attr))
        np.testing.assert_array_equal(
            loaded.predict_batch(states), tree.predict_batch(states))


class _FakeEncoder:
    def reset(self):
        pass


class _FakeAgent:
    """Network stand-in: always answers ``network_action``."""

    def __init__(self, network_action=1):
        self.network_action = network_action
        self.calls = 0

    def act(self, state, mask, epsilon=0.0):
        assert epsilon == 0.0
        self.calls += 1
        return self.network_action


def scheduler_with(surrogate, network_action=1, audit_every=1):
    scheduler = MLCRScheduler(agent=_FakeAgent(network_action),
                              encoder=_FakeEncoder())
    scheduler.attach_surrogate(surrogate, audit_every=audit_every)
    return scheduler


class TestActSurrogate:
    tree = staticmethod(lambda: fitted([[0.0], [10.0]], [0, 1], 3))

    def test_audit_counts_disagreement(self):
        scheduler = scheduler_with(self.tree(), network_action=1)
        mask = np.array([1.0, 1.0, 1.0])
        assert scheduler.act_surrogate(np.array([0.0]), mask) == 0
        assert scheduler.surrogate_audits == 1
        assert scheduler.surrogate_disagreements == 1  # tree 0 vs net 1
        assert scheduler.act_surrogate(np.array([20.0]), mask) == 1
        assert scheduler.surrogate_disagreements == 1

    def test_fallback_on_masked_prediction(self):
        scheduler = scheduler_with(self.tree(), network_action=2)
        action = scheduler.act_surrogate(
            np.array([0.0]), np.array([0.0, 1.0, 1.0]))
        assert action == 2  # network's choice
        assert scheduler.surrogate_fallbacks == 1
        assert scheduler.surrogate_audits == 0

    def test_audit_disabled(self):
        scheduler = scheduler_with(self.tree(), audit_every=0)
        scheduler.act_surrogate(np.array([0.0]), np.array([1.0, 1.0, 1.0]))
        assert scheduler.surrogate_audits == 0
        assert scheduler.agent.calls == 0

    def test_attach_validates(self):
        scheduler = scheduler_with(self.tree())
        with pytest.raises(ValueError):
            scheduler.attach_surrogate(self.tree(), audit_every=-1)

    def test_reset_keeps_surrogate_clears_counters(self):
        scheduler = scheduler_with(self.tree())
        scheduler.act_surrogate(np.array([0.0]), np.array([1.0, 1.0, 1.0]))
        scheduler.reset()
        assert scheduler.surrogate is not None
        assert scheduler.surrogate_audits == 0
        assert scheduler.surrogate_disagreements == 0
        scheduler.detach_surrogate()
        assert scheduler.surrogate is None


class TestTelemetry:
    @pytest.mark.parametrize("telemetry_cls", [Telemetry, BoundedTelemetry])
    def test_summary_block_conditional(self, telemetry_cls):
        telemetry = telemetry_cls()
        assert "surrogate_audits" not in telemetry.summary()
        telemetry.record_surrogate_audit(8, 1)
        summary = telemetry.summary()
        assert summary["surrogate_audits"] == 8.0
        assert summary["surrogate_disagreements"] == 1.0
        # The surrogate block appends after the 14 base keys.
        assert list(summary)[-2:] == [
            "surrogate_audits", "surrogate_disagreements"]

    def test_report_rendering(self):
        telemetry = Telemetry()
        assert surrogate_report(telemetry) == ""
        telemetry.record_surrogate_audit(10, 1)
        text = surrogate_report(telemetry)
        assert "audited decisions" in text
        assert "90.0%" in text
