"""Tests for the container lifecycle state machine."""

import pytest

from repro.containers.container import Container, ContainerState

from conftest import make_container, make_image


class TestLifecycle:
    def test_full_happy_cycle(self):
        c = Container(1, make_image(), state=ContainerState.STARTING)
        c.begin_startup("f", now=0.0, ready_at=1.0)
        c.begin_execution(now=1.0, finish_at=2.0)
        assert c.is_busy
        c.finish_execution(now=2.0)
        assert c.is_idle
        c.claim()
        assert c.state is ContainerState.STARTING
        assert c.reuse_count == 1

    def test_evict_from_idle(self):
        c = make_container(1)
        c.evict()
        assert c.state is ContainerState.EVICTED

    def test_evict_from_busy_rejected(self):
        c = Container(1, make_image(), state=ContainerState.BUSY)
        with pytest.raises(RuntimeError):
            c.evict()

    def test_claim_requires_idle(self):
        c = Container(1, make_image(), state=ContainerState.BUSY)
        with pytest.raises(RuntimeError):
            c.claim()

    def test_begin_execution_requires_starting(self):
        c = make_container(1)  # idle
        with pytest.raises(RuntimeError):
            c.begin_execution(0.0, 1.0)

    def test_finish_requires_busy(self):
        c = make_container(1)
        with pytest.raises(RuntimeError):
            c.finish_execution(0.0)

    def test_begin_startup_from_idle_allowed(self):
        c = make_container(1)
        c.begin_startup("f", 5.0, 6.0)
        assert c.current_function == "f"
        assert c.state is ContainerState.STARTING


class TestProperties:
    def test_memory_tracks_image(self):
        img = make_image()
        c = make_container(1, image=img)
        assert c.memory_mb == img.memory_mb

    def test_idle_duration(self):
        c = make_container(1, last_used_at=10.0)
        assert c.idle_duration(25.0) == pytest.approx(15.0)
        assert c.idle_duration(5.0) == 0.0  # clamped

    def test_idle_duration_zero_when_busy(self):
        c = Container(1, make_image(), state=ContainerState.BUSY,
                      last_used_at=0.0)
        assert c.idle_duration(100.0) == 0.0

    def test_repack_changes_memory(self):
        small = make_image("small")
        big = make_image("big", runtime_names=("tensorflow",))
        c = make_container(1, image=small)
        before = c.memory_mb
        c.image = big
        assert c.memory_mb > before
