"""Tests for the 13 FStartBench functions (Table II fidelity)."""

import numpy as np
import pytest

from repro.containers.matching import MatchLevel, match_level
from repro.packages.package import PackageLevel
from repro.workloads.functions import (
    FunctionSpec,
    fstartbench_functions,
    function_by_id,
    functions_by_ids,
)

from conftest import make_image

# (func_id, os base, primary language, runtime names subset)
TABLE_II = [
    (1, "alpine-base", "openjdk", {"springboot"}),
    (2, "alpine-base", "nodejs", {"express"}),
    (3, "alpine-base", "golang", {"gin"}),
    (4, "alpine-base", "python", {"flask"}),
    (5, "debian-base", "python", {"flask"}),
    (6, "debian-base", "python", {"flask", "numpy"}),
    (7, "debian-base", "python", {"flask", "numpy", "pandas"}),
    (8, "debian-base", "python", {"flask", "numpy", "pandas", "matplotlib"}),
    (9, "centos-base", "gcc-toolchain", {"libcos-sdk"}),
    (10, "debian-base", "python", {"flask"}),
    (11, "alpine-base", "nodejs", {"express"}),
    (12, "alpine-base", "openjdk", {"springboot"}),
    (13, "debian-base", "python", {"flask", "tensorflow"}),
]


class TestTableII:
    def test_thirteen_functions(self):
        assert len(fstartbench_functions()) == 13

    @pytest.mark.parametrize("func_id,os_base,lang,runtimes", TABLE_II)
    def test_stacks_match_table(self, func_id, os_base, lang, runtimes):
        spec = function_by_id(func_id)
        os_names = {p.name for p in spec.image.os_packages}
        lang_names = {p.name for p in spec.image.language_packages}
        rt_names = {p.name for p in spec.image.runtime_packages}
        assert os_base in os_names
        assert lang in lang_names
        assert rt_names == runtimes

    def test_unique_names(self):
        names = [s.name for s in fstartbench_functions()]
        assert len(set(names)) == 13

    def test_function_5_and_10_share_configuration(self):
        """Different functions with identical stacks: full-match reuse."""
        f5 = function_by_id(5)
        f10 = function_by_id(10)
        assert match_level(f5.image, f10.image) is MatchLevel.L3

    def test_analytics_functions_nest_at_l2(self):
        """F6 vs F7: same OS+language, different runtimes."""
        assert match_level(
            function_by_id(6).image, function_by_id(7).image
        ) is MatchLevel.L2

    def test_cross_os_no_match(self):
        assert match_level(
            function_by_id(4).image, function_by_id(5).image
        ) is MatchLevel.NO_MATCH

    def test_memory_footprints_span_4x(self):
        """The paper cites a ~4x memory range across functions."""
        mems = [s.image.memory_mb for s in fstartbench_functions()]
        assert max(mems) / min(mems) >= 4.0

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            function_by_id(99)

    def test_functions_by_ids_preserves_order(self):
        specs = functions_by_ids([13, 1, 5])
        assert [s.func_id for s in specs] == [13, 1, 5]

    def test_cached_default_catalog_identity(self):
        assert fstartbench_functions()[0] is fstartbench_functions()[0]


class TestFunctionSpec:
    def test_exec_time_sampling_mean(self):
        spec = function_by_id(10)
        rng = np.random.default_rng(0)
        samples = [spec.sample_exec_time(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(spec.exec_time_mean_s,
                                                 rel=0.05)

    def test_zero_cv_is_deterministic(self):
        spec = FunctionSpec(
            func_id=500, name="det", image=make_image("det"),
            function_init_s=0.1, exec_time_mean_s=1.0, exec_time_cv=0.0,
        )
        rng = np.random.default_rng(0)
        assert spec.sample_exec_time(rng) == 1.0

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec(1, "x", make_image("x"), function_init_s=-1,
                         exec_time_mean_s=1.0)
        with pytest.raises(ValueError):
            FunctionSpec(1, "x", make_image("x"), function_init_s=0.1,
                         exec_time_mean_s=0.0)
