"""Tests for the replay buffer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.drl.replay import ReplayBuffer, Transition


def make_transition(tag: float, state_dim=4, action_dim=3, action=0,
                    done=False):
    return Transition(
        state=np.full(state_dim, tag),
        action=action,
        reward=tag,
        next_state=np.full(state_dim, tag + 0.5),
        next_mask=np.ones(action_dim, dtype=bool),
        done=done,
    )


class TestAdd:
    def test_grows_until_capacity(self):
        buf = ReplayBuffer(3, 4, 3)
        for i in range(5):
            buf.add(make_transition(float(i)))
            assert len(buf) == min(i + 1, 3)
        assert buf.is_full

    def test_overwrites_oldest(self):
        buf = ReplayBuffer(2, 4, 3)
        for i in range(3):
            buf.add(make_transition(float(i)))
        rng = np.random.default_rng(0)
        rewards = set()
        for _ in range(30):
            rewards.update(buf.sample(2, rng)["rewards"].tolist())
        assert 0.0 not in rewards  # the first transition was evicted
        assert rewards <= {1.0, 2.0}

    def test_dimension_validation(self):
        buf = ReplayBuffer(2, 4, 3)
        with pytest.raises(ValueError):
            buf.add(make_transition(0.0, state_dim=5))
        with pytest.raises(ValueError):
            buf.add(make_transition(0.0, action_dim=2))
        with pytest.raises(ValueError):
            buf.add(make_transition(0.0, action=7))

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, 4, 3)


class TestSample:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ReplayBuffer(2, 4, 3).sample(1, np.random.default_rng(0))

    def test_sample_shapes(self):
        buf = ReplayBuffer(10, 4, 3)
        for i in range(5):
            buf.add(make_transition(float(i), action=i % 3, done=i == 4))
        batch = buf.sample(8, np.random.default_rng(0))
        assert batch["states"].shape == (8, 4)
        assert batch["actions"].shape == (8,)
        assert batch["next_masks"].shape == (8, 3)
        assert batch["next_masks"].dtype == bool
        assert batch["dones"].dtype == bool

    def test_sample_contents_consistent(self):
        buf = ReplayBuffer(10, 4, 3)
        buf.add(make_transition(7.0, action=2, done=True))
        batch = buf.sample(3, np.random.default_rng(0))
        np.testing.assert_allclose(batch["states"], 7.0)
        np.testing.assert_allclose(batch["next_states"], 7.5)
        assert (batch["actions"] == 2).all()
        assert batch["dones"].all()


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=40))
def test_len_never_exceeds_capacity(capacity, n_adds):
    buf = ReplayBuffer(capacity, 2, 2)
    for i in range(n_adds):
        buf.add(make_transition(float(i), state_dim=2, action_dim=2))
    assert len(buf) == min(capacity, n_adds)
