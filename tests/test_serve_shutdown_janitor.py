"""Graceful-shutdown and keep-alive-janitor tests.

Covers the two lifecycle promises of the serving plane: in-flight requests
always finish before :meth:`ServePlane.stop` returns (and the drained
engine's books balance), and the janitor scales the warm pool to zero
only once the keep-alive TTL has actually elapsed -- never early.
"""

import asyncio

import pytest

from repro.cluster.eventloop import VirtualClock
from repro.cluster.simulator import SimulationConfig
from repro.serve import Janitor, ServeEngine, ServePlane, ServeStats, http_json


def _engine(config=None, **kwargs):
    clock = VirtualClock()
    config = config or SimulationConfig(pool_capacity_mb=8192.0, n_workers=2)
    return ServeEngine(config, wall=clock, **kwargs), clock


class TestGracefulShutdown:
    def test_inflight_requests_finish_before_stop_returns(self):
        config = SimulationConfig(
            pool_capacity_mb=8192.0, n_workers=2, worker_concurrency=8,
            verify=True,
        )
        engine, clock = _engine(config)
        plane = ServePlane(engine, time_scale=0.1)

        async def body():
            await plane.start()
            host, port = plane.host, plane.port
            clock.advance_to(1.0)

            async def invoke():
                return await http_json(
                    host, port, "POST", "/invoke",
                    {"function": "hello-python", "exec_s": 2.0},
                    timeout_s=30.0,
                )

            # Start requests that hold their connections ~0.4s wall, then
            # stop the plane while they are still in flight.
            pending = [asyncio.create_task(invoke()) for _ in range(8)]
            await asyncio.sleep(0.1)
            assert plane.admission.inflight > 0
            result = await plane.stop()
            # Every request completed with a real decision, none were cut
            # (the awaits below only let the client coroutines collect the
            # responses the server already wrote before stop() returned).
            for status, payload in await asyncio.gather(*pending):
                assert status == 200 and "container_id" in payload
            assert result.summary()["invocations"] == 8.0
            assert engine.closed

        asyncio.run(body())
        # Post-drain books balance: every container created was either
        # destroyed or sits warm in the pool, and the verifying monitors
        # signed off on the whole session (drain runs a final checkpoint).
        lifecycle = engine.sim.lifecycle
        assert lifecycle.created_count == (
            lifecycle.destroyed_count + len(engine.sim.pool)
        )
        assert engine.sim.verifier is not None
        assert engine.sim.verifier.checks_run > 0

    def test_stop_is_refused_before_start(self):
        engine, _ = _engine()
        plane = ServePlane(engine)

        async def body():
            with pytest.raises(RuntimeError, match="not started"):
                await plane.stop()

        asyncio.run(body())

    def test_double_start_is_refused(self):
        engine, _ = _engine()
        plane = ServePlane(engine)

        async def body():
            await plane.start()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    await plane.start()
            finally:
                await plane.stop()

        asyncio.run(body())


class TestJanitor:
    def _idle_session(self, ttl_s=10.0):
        """One completed invocation, then silence: a pool of exactly one
        warm container waiting out its keep-alive TTL."""
        engine, clock = _engine(keepalive_ttl_s=ttl_s)
        stats = ServeStats(n_workers=2)
        janitor = Janitor(engine, stats=stats)
        clock.advance_to(1.0)
        outcome = engine.submit("hello-python", exec_time_s=0.5)
        done = 1.0 + outcome.service_time_s
        return engine, stats, janitor, done

    def test_scale_to_zero_fires_only_past_ttl(self):
        engine, stats, janitor, done = self._idle_session(ttl_s=10.0)
        expiry = done + 10.0

        # Ticks before the container even finishes: nothing live changes.
        janitor.tick(now=done - 0.2)
        assert engine.pooled_containers == 0 and engine.live_containers == 1
        # Completion pools the container; the TTL clock starts at `done`.
        janitor.tick(now=done + 0.1)
        assert engine.pooled_containers == 1
        # Quiet-period ticks short of the TTL must NOT reclaim it.
        for t in (done + 3.0, done + 7.0, expiry - 0.01):
            janitor.tick(now=t)
            assert engine.pooled_containers == 1, f"evicted early at t={t}"
        assert stats.scale_to_zero_events == 0
        # First tick past the TTL reclaims the last container: scale to zero.
        janitor.tick(now=expiry + 0.01)
        assert engine.pooled_containers == 0
        assert engine.live_containers == 0
        assert engine.sim.telemetry.ttl_expirations == 1
        assert stats.scale_to_zero_events == 1
        # Staying quiet produces no further "events" -- it is a transition
        # counter, not a gauge.
        janitor.tick(now=expiry + 5.0)
        assert stats.scale_to_zero_events == 1
        assert stats.janitor_ticks == 7

    def test_keepalive_ttl_override_reaches_the_sweep(self):
        engine, stats, janitor, done = self._idle_session(ttl_s=2.0)
        assert engine.keepalive_ttl_s == 2.0
        janitor.tick(now=done + 0.1)
        assert engine.pooled_containers == 1
        janitor.tick(now=done + 2.1)
        assert engine.pooled_containers == 0
        assert stats.scale_to_zero_events == 1

    def test_tick_counts_pumped_events(self):
        engine, stats, janitor, done = self._idle_session()
        handled = janitor.tick(now=done + 0.1)
        assert handled == 2  # startup completion + execution completion
        assert janitor.events_pumped == 2

    def test_async_start_stop_lifecycle(self):
        engine, clock = _engine(keepalive_ttl_s=5.0)
        stats = ServeStats(n_workers=2)
        janitor = Janitor(engine, stats=stats, interval_s=0.01)

        async def body():
            janitor.start()
            first_task = janitor._task
            janitor.start()  # idempotent: same task keeps running
            assert janitor._task is first_task
            clock.advance_to(1.0)
            engine.submit("hello-python", exec_time_s=0.2)
            # Let the periodic loop run a few intervals; completion times
            # are virtual, so advance the wall past them between sleeps.
            await asyncio.sleep(0.05)
            clock.advance_to(30.0)
            await asyncio.sleep(0.05)
            await janitor.stop()
            assert janitor._task is None

        asyncio.run(body())
        # The periodic loop processed the completions and the final TTL
        # sweep scaled the pool back to zero.
        assert stats.janitor_ticks > 2
        assert engine.live_containers == 0
        assert stats.scale_to_zero_events == 1

    def test_stop_without_start_still_sweeps(self):
        engine, stats, janitor, done = self._idle_session(ttl_s=1.0)
        engine.wall.advance_to(done + 5.0)

        async def body():
            await janitor.stop()

        asyncio.run(body())
        assert engine.live_containers == 0
        assert stats.janitor_ticks == 1

    def test_rejects_nonpositive_interval(self):
        engine, _ = _engine()
        with pytest.raises(ValueError, match="positive"):
            Janitor(engine, interval_s=0.0)
