"""Property tests for ``QuantileSketch.merge``: merging per-shard sketches
is exactly equivalent to one sketch over the concatenated samples, and the
merged estimates stay within the sketch's rank-error bound."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.sketches import QuantileSketch

# Shards of non-negative samples spanning several orders of magnitude,
# zeros included (they take the sketch's dedicated zero path).
_sample = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-4, max_value=1e5, allow_nan=False,
              allow_infinity=False),
)
_shards = st.lists(
    st.lists(_sample, min_size=0, max_size=40), min_size=1, max_size=6
)
_accuracy = st.sampled_from([0.005, 0.01, 0.05])
_quantiles = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def _merged(shards, accuracy):
    merged = QuantileSketch(accuracy)
    for shard in shards:
        sketch = QuantileSketch(accuracy)
        for value in shard:
            sketch.insert(value)
        merged.merge(sketch)
    return merged


@settings(max_examples=150, deadline=None)
@given(shards=_shards, accuracy=_accuracy)
def test_merge_equals_concatenated_sketch(shards, accuracy):
    """Merged shard sketches and one flat sketch are indistinguishable."""
    merged = _merged(shards, accuracy)
    flat = QuantileSketch(accuracy)
    for shard in shards:
        for value in shard:
            flat.insert(value)

    assert merged.count == flat.count
    # Summation order differs across shards, so the exact sums may differ
    # by float-associativity ulps; everything rank-related is exact.
    assert math.isclose(merged.sum, flat.sum, rel_tol=1e-12, abs_tol=1e-12)
    assert merged.min == flat.min
    assert merged.max == flat.max
    assert merged._buckets == flat._buckets
    assert merged._zero_count == flat._zero_count
    for q in _quantiles:
        assert merged.quantile(q) == flat.quantile(q)


@settings(max_examples=150, deadline=None)
@given(shards=_shards, accuracy=_accuracy)
def test_merged_quantiles_within_rank_error_bound(shards, accuracy):
    """Every merged estimate is within ``relative_accuracy`` of the true
    order statistic of the concatenated samples."""
    samples = sorted(v for shard in shards for v in shard)
    if not samples:
        return
    merged = _merged(shards, accuracy)
    n = len(samples)
    for q in _quantiles:
        estimate = merged.quantile(q)
        truth = samples[math.floor(q * (n - 1))]
        assert abs(estimate - truth) <= accuracy * truth + 1e-12, (
            f"q={q}: estimate {estimate} vs true {truth} "
            f"(bound {accuracy * truth})"
        )


def test_merge_rejects_mismatched_accuracy():
    a = QuantileSketch(0.01)
    b = QuantileSketch(0.02)
    try:
        a.merge(b)
    except ValueError:
        return
    raise AssertionError("merging mismatched accuracies must fail")


def test_merge_into_empty_and_from_empty():
    empty = QuantileSketch()
    full = QuantileSketch()
    for v in (0.0, 0.5, 2.0, 100.0):
        full.insert(v)
    # empty <- full carries everything over …
    empty.merge(full)
    assert empty.count == 4 and empty.max == 100.0
    # … and full <- empty is a no-op.
    before = dict(full._buckets)
    full.merge(QuantileSketch())
    assert full.count == 4 and full._buckets == before
