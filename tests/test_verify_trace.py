"""Golden-trace record / replay / diff tests.

The checked-in traces under ``tests/golden_traces/`` pin the simulator's
decision-level behaviour for the golden matrix.  Replaying each one must
be bit-identical; a perturbation must be reported as the exact first
diverging event and field.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.verify.trace import (
    GOLDEN_MATRIX,
    TRACE_FORMAT_VERSION,
    Trace,
    TraceHeader,
    TraceSpec,
    diff_traces,
    golden_trace_name,
    read_trace,
    record_trace,
    replay_trace,
    write_trace,
)

GOLDEN_ROOT = Path(__file__).parent / "golden_traces"


def test_golden_matrix_files_exist():
    for workload, scheduler in GOLDEN_MATRIX:
        assert (GOLDEN_ROOT / golden_trace_name(workload, scheduler)).exists()


@pytest.mark.parametrize(
    "workload,scheduler", GOLDEN_MATRIX,
    ids=[f"{w}-{s}" for w, s in GOLDEN_MATRIX],
)
def test_golden_replay_is_bit_identical(workload, scheduler):
    golden = read_trace(GOLDEN_ROOT / golden_trace_name(workload, scheduler))
    assert golden.header.version == TRACE_FORMAT_VERSION
    replayed = replay_trace(golden)
    assert diff_traces(golden, replayed) is None
    # Bitwise, not just structurally: the serialized forms are equal too.
    assert golden.to_jsonl() == replayed.to_jsonl()


def test_record_with_verify_changes_nothing():
    spec = TraceSpec("LO-Sim", "lru")
    plain = record_trace(spec)
    verified = record_trace(replace(spec, verify=True))
    assert diff_traces(plain, verified) is None


def test_roundtrip_through_file(tmp_path):
    trace = read_trace(GOLDEN_ROOT / golden_trace_name(*GOLDEN_MATRIX[0]))
    path = write_trace(trace, tmp_path / "t.jsonl")
    assert read_trace(path) == trace


def test_diff_reports_exact_first_divergence():
    golden = read_trace(GOLDEN_ROOT / golden_trace_name(*GOLDEN_MATRIX[0]))
    lines = list(golden.lines)
    lines[17] = replace(lines[17], latency_s=lines[17].latency_s + 0.5)
    perturbed = Trace(header=golden.header, lines=tuple(lines))
    divergence = diff_traces(golden, perturbed)
    assert divergence is not None
    assert divergence.index == 17
    assert divergence.field == "latency_s"
    assert divergence.actual == pytest.approx(divergence.expected + 0.5)
    assert "event 17" in str(divergence)


def test_diff_reports_header_divergence():
    golden = read_trace(GOLDEN_ROOT / golden_trace_name(*GOLDEN_MATRIX[0]))
    other = Trace(
        header=replace(golden.header, seed=golden.header.seed + 1),
        lines=golden.lines,
    )
    divergence = diff_traces(golden, other)
    assert divergence.index == -1
    assert divergence.field == "seed"
    assert "header" in str(divergence)


def test_version_mismatch_rejected():
    header = TraceHeader(
        version=TRACE_FORMAT_VERSION + 1, workload="LO-Sim",
        scheduler="lru", seed=0, pool="Tight", capacity_mb=1.0, n_events=0,
    )
    with pytest.raises(ValueError, match="unsupported trace format"):
        TraceHeader.from_json(header.to_json())


def test_truncated_file_rejected(tmp_path):
    golden = read_trace(GOLDEN_ROOT / golden_trace_name(*GOLDEN_MATRIX[0]))
    text = golden.to_jsonl()
    truncated = "\n".join(text.splitlines()[:-1]) + "\n"
    path = tmp_path / "truncated.jsonl"
    path.write_text(truncated)
    with pytest.raises(ValueError, match="promises"):
        read_trace(path)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_record_replay_roundtrip(tmp_path, capsys):
    out = tmp_path / "cell.jsonl"
    assert cli_main(["trace", "record", "--workload", "LO-Sim",
                     "--scheduler", "lru", "--output", str(out)]) == 0
    assert cli_main(["trace", "replay", str(out)]) == 0
    assert "bit-identical" in capsys.readouterr().out


def test_cli_diff_detects_perturbation(tmp_path, capsys):
    golden_path = GOLDEN_ROOT / golden_trace_name(*GOLDEN_MATRIX[0])
    golden = read_trace(golden_path)
    lines = list(golden.lines)
    lines[3] = replace(lines[3], worker=lines[3].worker + 1)
    perturbed_path = write_trace(
        Trace(header=golden.header, lines=tuple(lines)),
        tmp_path / "perturbed.jsonl",
    )
    assert cli_main(["trace", "diff", str(golden_path),
                     str(perturbed_path)]) == 1
    assert "event 3" in capsys.readouterr().out
    assert cli_main(["trace", "diff", str(golden_path),
                     str(golden_path)]) == 0
