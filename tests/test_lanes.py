"""Lane-kernel parity: batched lanes must be byte-identical to sequential.

Pinned properties:

* Every lane summary equals the sequential ``run_task`` summary for the
  same ``(scheduler, workload, seed, capacity)`` cell -- exact ``==`` on
  every float, not approx (property-based over the full scheduler
  registry, closed-form and scripted lane modes alike, arbitrary seeds,
  capacities including the 0/inf edges, and arbitrary lane counts).
* Proactive Decision actions (MPC's ``PrewarmRequest``, Pagurus's
  ``LendRequest``) replay inside the lane lifecycle: the pre-warm /
  lending telemetry blocks match the sequential driver exactly.
* ``run_grid(lanes=L)`` reproduces ``run_grid()`` cell-for-cell for any
  ``L`` over any registry schedulers, under process fan-out too; unknown
  scheduler keys raise instead of silently running sequentially.
* ``ArrivalTable`` is a faithful columnar lowering of the workload it was
  built from; ``ArrivalTable.from_stream`` chunks reassemble to the same
  columns for any chunk size (1, ragged, larger than the stream).
* ``run_stream_lanes`` is byte-identical to ``ClusterSimulator.run_stream``
  with bounded telemetry, per cell, for every registry scheduler and any
  chunk size.
* The per-process arrival-table memo is a bounded LRU: it cannot grow
  past its cap however many draws a grid touches.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.lanes import (
    LANE_SCHEDULERS,
    SCHEDULER_CLASS_NAMES,
    ArrivalTable,
    LaneKernel,
    LaneSpec,
    lane_mode,
    lane_supported_scheduler,
    run_stream_lanes,
)
from repro.experiments.parallel import (
    _ARRIVAL_TABLE_CACHE,
    SCHEDULER_FACTORIES,
    GridTask,
    cached_arrival_table,
    cached_workload,
    lane_supported,
    run_grid,
    run_task,
)

LANE_KEYS = sorted(LANE_SCHEDULERS)
CLOSED_FORM_KEYS = sorted(
    k for k in LANE_SCHEDULERS if lane_mode(k) == "closed-form"
)
SCRIPTED_KEYS = sorted(
    k for k in LANE_SCHEDULERS if lane_mode(k) == "scripted"
)
WORKLOADS = ("LO-Sim", "HI-Var")
CAPACITIES = (0.0, 300.0, 800.0, 4000.0, float("inf"))


def make_task(scheduler="lru", workload="LO-Sim", seed=0, capacity=800.0):
    return GridTask(scheduler=scheduler, workload=workload, seed=seed,
                    pool_label="Lane", capacity_mb=float(capacity))


def lane_summary(task):
    """Run one cell on a single-lane kernel and return its summary."""
    table = cached_arrival_table(task.workload, task.seed)
    spec = LaneSpec(scheduler=task.scheduler, table=table,
                    capacity_mb=task.capacity_mb)
    [result] = LaneKernel([spec]).run()
    return result


class TestRegistry:
    def test_every_registry_key_lane_supported(self):
        """The whole scheduler registry runs in lanes -- no silent
        sequential fallback is possible for a registry key."""
        assert set(LANE_SCHEDULERS) == set(SCHEDULER_FACTORIES)
        assert set(LANE_SCHEDULERS) == set(SCHEDULER_CLASS_NAMES)
        for key in SCHEDULER_FACTORIES:
            assert lane_supported_scheduler(key)
            assert lane_supported(make_task(key))
            assert lane_mode(key) in ("closed-form", "scripted")
        assert not lane_supported_scheduler("nope")

    def test_lane_modes(self):
        assert lane_mode("lru") == "closed-form"
        assert lane_mode("zygote") == "closed-form"
        assert lane_mode("walways") == "closed-form"
        assert lane_mode("offline") == "closed-form"
        assert lane_mode("faascache") == "scripted"
        assert lane_mode("mpc") == "scripted"
        assert lane_mode("lending") == "scripted"
        assert lane_mode("lookahead") == "scripted"
        with pytest.raises(KeyError):
            lane_mode("nope")


class TestArrivalTable:
    def test_columnar_lowering_matches_workload(self):
        workload = cached_workload("LO-Sim", 0)
        table = ArrivalTable(workload)
        arrivals = sorted(workload.invocations, key=lambda i: i.arrival_time)
        assert table.n == len(arrivals)
        assert table.times.dtype == np.float64
        np.testing.assert_array_equal(
            table.times, [i.arrival_time for i in arrivals])
        np.testing.assert_array_equal(
            table.exec_s, [i.execution_time_s for i in arrivals])
        np.testing.assert_array_equal(
            table.ids, [i.invocation_id for i in arrivals])
        for i, inv in enumerate(arrivals):
            assert table.specs[table.fn_ix[i]] is inv.spec
        assert table.workload is workload

    def test_cache_returns_same_object(self):
        assert cached_arrival_table("LO-Sim", 0) is cached_arrival_table(
            "LO-Sim", 0)

    @pytest.mark.parametrize("chunk_size", (1, 3, 64, 10_000_000))
    def test_from_stream_chunks_reassemble(self, chunk_size):
        """Chunked lowering concatenates to the batch lowering for any
        chunk size -- one arrival per chunk, ragged tails, or a single
        chunk larger than the whole stream."""
        workload = cached_workload("LO-Sim", 0)
        whole = ArrivalTable(workload)
        chunks = list(ArrivalTable.from_stream(
            sorted(workload.invocations, key=lambda i: i.arrival_time),
            chunk_size=chunk_size,
        ))
        assert sum(c.n for c in chunks) == whole.n
        for c in chunks[:-1]:
            assert c.n == chunk_size
        np.testing.assert_array_equal(
            np.concatenate([c.times for c in chunks]), whole.times)
        np.testing.assert_array_equal(
            np.concatenate([c.exec_s for c in chunks]), whole.exec_s)
        np.testing.assert_array_equal(
            np.concatenate([c.ids for c in chunks]), whole.ids)
        # Chunks share one function registry: identical spec objects,
        # identical latency rows, stable indices across chunk boundaries.
        assert all(c.specs is chunks[0].specs for c in chunks)
        assert chunks[0].specs == whole.specs
        assert chunks[0].latency == whole.latency
        np.testing.assert_array_equal(
            np.concatenate([c.fn_ix for c in chunks]), whole.fn_ix)
        # Stream chunks have no materialized workload to observe.
        assert all(c.workload is None for c in chunks)

    def test_from_stream_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(ArrivalTable.from_stream([], chunk_size=0))

    def test_from_stream_empty(self):
        assert list(ArrivalTable.from_stream([], chunk_size=4)) == []


class TestArrivalTableCacheBound:
    def test_memo_is_bounded_lru(self, monkeypatch):
        """The per-process table memo cannot grow unboundedly across a
        large grid: inserts beyond the cap evict the LRU entry, hits
        refresh recency."""
        monkeypatch.setenv("REPRO_ARRIVAL_TABLE_CACHE", "2")
        _ARRIVAL_TABLE_CACHE.clear()
        a = cached_arrival_table("LO-Sim", 0)
        cached_arrival_table("LO-Sim", 1)
        assert len(_ARRIVAL_TABLE_CACHE) == 2
        # Touch the LRU entry, then insert: the *other* entry is evicted.
        assert cached_arrival_table("LO-Sim", 0) is a
        cached_arrival_table("HI-Var", 0)
        assert len(_ARRIVAL_TABLE_CACHE) == 2
        assert ("LO-Sim", 0) in _ARRIVAL_TABLE_CACHE
        assert ("LO-Sim", 1) not in _ARRIVAL_TABLE_CACHE
        # A stream of fresh draws never pushes the memo past its cap.
        for seed in range(6):
            cached_arrival_table("HI-Var", seed)
            assert len(_ARRIVAL_TABLE_CACHE) <= 2

    def test_default_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRIVAL_TABLE_CACHE", raising=False)
        _ARRIVAL_TABLE_CACHE.clear()
        for seed in range(10):
            cached_arrival_table("LO-Sim", seed)
        assert len(_ARRIVAL_TABLE_CACHE) == 8


class TestLaneParity:
    @pytest.mark.parametrize("scheduler", LANE_KEYS)
    def test_single_lane_matches_sequential(self, scheduler):
        task = make_task(scheduler)
        sequential = run_task(task)
        result = lane_summary(task)
        assert result.method == sequential.method
        assert list(result.summary.items()) == list(
            sequential.summary.items())

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_capacity_edges(self, capacity):
        task = make_task("lru", capacity=capacity)
        assert lane_summary(task).summary == run_task(task).summary

    def test_prewarm_actions_replayed(self):
        """MPC's PrewarmRequest actions run inside the lane lifecycle:
        the pre-warm telemetry block must match exactly, not just the
        14 base keys."""
        task = make_task("mpc", workload="HI-Var")
        sequential = run_task(task)
        result = lane_summary(task)
        assert sequential.summary.get("prewarms_issued", 0.0) > 0
        assert list(result.summary.items()) == list(
            sequential.summary.items())

    def test_lend_actions_replayed(self):
        """Pagurus's LendRequest actions run inside the lane lifecycle:
        the lending telemetry block must match exactly."""
        task = make_task("lending", workload="HI-Var", capacity=4000.0)
        sequential = run_task(task)
        result = lane_summary(task)
        assert sequential.summary.get("lends_issued", 0.0) > 0
        assert list(result.summary.items()) == list(
            sequential.summary.items())

    @settings(max_examples=10, deadline=None)
    @given(
        scheduler=st.sampled_from(CLOSED_FORM_KEYS),
        workload=st.sampled_from(WORKLOADS),
        seed=st.integers(min_value=0, max_value=3),
        capacity=st.sampled_from(CAPACITIES),
    )
    def test_closed_form_parity_property(
        self, scheduler, workload, seed, capacity
    ):
        task = make_task(scheduler, workload, seed, capacity)
        sequential = run_task(task)
        result = lane_summary(task)
        assert result.method == sequential.method
        assert list(result.summary.items()) == list(
            sequential.summary.items())

    @settings(max_examples=8, deadline=None)
    @given(
        scheduler=st.sampled_from(SCRIPTED_KEYS),
        workload=st.sampled_from(WORKLOADS),
        seed=st.integers(min_value=0, max_value=3),
        capacity=st.sampled_from(CAPACITIES),
    )
    def test_scripted_parity_property(
        self, scheduler, workload, seed, capacity
    ):
        task = make_task(scheduler, workload, seed, capacity)
        sequential = run_task(task)
        result = lane_summary(task)
        assert result.method == sequential.method
        assert list(result.summary.items()) == list(
            sequential.summary.items())

    @settings(max_examples=10, deadline=None)
    @given(
        cells=st.lists(
            st.tuples(
                st.sampled_from(LANE_KEYS),
                st.sampled_from(WORKLOADS),
                st.integers(min_value=0, max_value=3),
                st.sampled_from(CAPACITIES),
            ),
            min_size=1, max_size=6,
        ),
        lanes=st.integers(min_value=1, max_value=8),
    )
    def test_grid_parity_property(self, cells, lanes):
        tasks = [make_task(*cell) for cell in cells]
        sequential = run_grid(tasks, jobs=1)
        laned = run_grid(tasks, jobs=1, lanes=lanes)
        assert [c.task for c in laned] == [c.task for c in sequential]
        for a, b in zip(laned, sequential):
            assert a.method == b.method
            assert list(a.summary.items()) == list(b.summary.items())


class TestStreamLanes:
    STREAM_SHAPE = (30, 400)  # (n_functions, n_invocations)

    def _sequential(self, scheduler, seed):
        from repro.experiments.ext_stream_replay import (
            StreamReplayTask, run_cell,
        )

        n_fn, n_inv = self.STREAM_SHAPE
        return run_cell(StreamReplayTask(
            scheduler=scheduler, seed=seed,
            n_functions=n_fn, n_invocations=n_inv,
        ))

    def _stream(self, seed):
        from repro.experiments.ext_stream_replay import (
            derive_capacity_mb, trace_config,
        )
        from repro.workloads.azure import AzureTraceGenerator

        n_fn, n_inv = self.STREAM_SHAPE
        generator = AzureTraceGenerator(trace_config(n_fn, n_inv))
        stream = generator.stream(seed=seed)
        return stream, derive_capacity_mb(stream)

    @pytest.mark.parametrize("scheduler", LANE_KEYS)
    def test_stream_lane_matches_run_stream(self, scheduler):
        """One bounded lane per scheduler, byte-identical to the
        sequential ``run_stream`` cell (BoundedTelemetry folding)."""
        cell = self._sequential(scheduler, seed=0)
        stream, capacity = self._stream(seed=0)
        [result] = run_stream_lanes([(scheduler, capacity)], stream)
        assert result.method == cell.method
        assert list(result.summary.items()) == list(cell.summary.items())

    @settings(max_examples=6, deadline=None)
    @given(
        schedulers=st.lists(
            st.sampled_from(LANE_KEYS), min_size=1, max_size=4),
        seed=st.integers(min_value=0, max_value=2),
        chunk_size=st.sampled_from((1, 7, 64, 4096, 10_000_000)),
    )
    def test_stream_lane_parity_property(self, schedulers, seed, chunk_size):
        """Many lanes sharing one stream, arbitrary chunk sizes (one
        arrival per chunk through larger-than-stream), exact parity."""
        cells = [self._sequential(s, seed) for s in schedulers]
        stream, capacity = self._stream(seed)
        results = run_stream_lanes(
            [(s, capacity) for s in schedulers], stream,
            chunk_size=chunk_size,
        )
        for cell, result in zip(cells, results):
            assert result.method == cell.method
            assert list(result.summary.items()) == list(
                cell.summary.items())

    def test_stream_lanes_rejects_unknown_scheduler(self):
        stream, capacity = self._stream(seed=0)
        with pytest.raises(KeyError):
            run_stream_lanes([("nope", capacity)], stream)


class TestRunGridIntegration:
    def test_mixed_closed_form_and_scripted(self):
        tasks = [make_task("lru"), make_task("faascache"),
                 make_task("greedy", seed=1), make_task("coldonly"),
                 make_task("zygote"), make_task("lookahead")]
        sequential = run_grid(tasks, jobs=1)
        laned = run_grid(tasks, jobs=1, lanes=3)
        assert [c.summary for c in laned] == [c.summary for c in sequential]

    def test_proactive_policies_run_in_lanes(self):
        """mpc/lending/offline cells are lane-lowered like every other
        registry key -- no sequential fallback -- and stay byte-identical
        to the sequential grid, proactive telemetry blocks included."""
        for key in ("mpc", "lending", "offline"):
            assert lane_supported(make_task(key))
            assert lane_supported_scheduler(key)
        tasks = [make_task("lru"), make_task("mpc"), make_task("lending"),
                 make_task("offline"), make_task("greedy", seed=1)]
        sequential = run_grid(tasks, jobs=1)
        laned = run_grid(tasks, jobs=1, lanes=4)
        assert [c.method for c in laned] == [c.method for c in sequential]
        assert [list(c.summary.items()) for c in laned] == [
            list(c.summary.items()) for c in sequential]

    def test_unknown_scheduler_raises_instead_of_fallback(self):
        tasks = [make_task("lru"), make_task("definitely-not-a-scheduler")]
        with pytest.raises(KeyError):
            run_grid(tasks, jobs=1, lanes=2)

    def test_parallel_jobs_with_lanes(self):
        tasks = [make_task(s, seed=seed)
                 for seed in (0, 1) for s in ("lru", "keepalive", "greedy")]
        sequential = run_grid(tasks, jobs=1)
        fanned = run_grid(tasks, jobs=2, lanes=4)
        assert [c.summary for c in fanned] == [c.summary for c in sequential]

    def test_lane_batch_larger_than_grid(self):
        tasks = [make_task("lru"), make_task("greedy")]
        laned = run_grid(tasks, jobs=1, lanes=64)
        assert [c.summary for c in laned] == [
            c.summary for c in run_grid(tasks, jobs=1)]

    def test_stream_experiment_lanes_match(self):
        """``repro experiment stream --lanes`` end to end: the grouped
        lane path produces the same cells (and therefore the same
        report) as the per-cell sequential path."""
        from repro.experiments.ext_stream_replay import report, run

        class _Scale:
            stream_functions = 30
            stream_invocations = 400

        sequential = run(_Scale(), schedulers=("lru", "mpc"), seeds=(0, 1))
        laned = run(_Scale(), schedulers=("lru", "mpc"), seeds=(0, 1),
                    lanes=4)
        assert [c.task for c in laned.cells] == [
            c.task for c in sequential.cells]
        assert [list(c.summary.items()) for c in laned.cells] == [
            list(c.summary.items()) for c in sequential.cells]
        assert report(laned) == report(sequential)


class TestKernelValidation:
    def test_unknown_scheduler_rejected(self):
        table = cached_arrival_table("LO-Sim", 0)
        spec = LaneSpec(scheduler="nope", table=table, capacity_mb=800.0)
        with pytest.raises(KeyError):
            LaneKernel([spec])

    def test_missing_table_rejected(self):
        spec = LaneSpec(scheduler="lru", table=None, capacity_mb=800.0)
        with pytest.raises(ValueError):
            LaneKernel([spec])
