"""Lane-kernel parity: batched lanes must be byte-identical to sequential.

Pinned properties:

* Every lane summary equals the sequential ``run_task`` summary for the
  same ``(scheduler, workload, seed, capacity)`` cell -- exact ``==`` on
  every float, not approx (property-based over the full lane registry,
  arbitrary seeds, capacities including the 0/inf edges, and arbitrary
  lane counts).
* ``run_grid(lanes=L)`` reproduces ``run_grid()`` cell-for-cell for any
  ``L``, including grids that mix lane-supported and sequential-only
  schedulers, and under process fan-out (``jobs > 1``).
* ``ArrivalTable`` is a faithful columnar lowering of the workload it was
  built from.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.lanes import (
    LANE_SCHEDULERS,
    ArrivalTable,
    LaneKernel,
    LaneSpec,
    lane_supported_scheduler,
)
from repro.experiments.parallel import (
    GridTask,
    cached_arrival_table,
    cached_workload,
    lane_supported,
    run_grid,
    run_task,
)

LANE_KEYS = sorted(LANE_SCHEDULERS)
WORKLOADS = ("LO-Sim", "HI-Var")
CAPACITIES = (0.0, 300.0, 800.0, 4000.0, float("inf"))


def make_task(scheduler="lru", workload="LO-Sim", seed=0, capacity=800.0):
    return GridTask(scheduler=scheduler, workload=workload, seed=seed,
                    pool_label="Lane", capacity_mb=float(capacity))


def lane_summary(task):
    """Run one cell on a single-lane kernel and return its summary."""
    table = cached_arrival_table(task.workload, task.seed)
    spec = LaneSpec(scheduler=task.scheduler, table=table,
                    capacity_mb=task.capacity_mb)
    [result] = LaneKernel([spec]).run()
    return result


class TestRegistry:
    def test_lane_schedulers_supported(self):
        for key in LANE_KEYS:
            assert lane_supported_scheduler(key)
        assert not lane_supported_scheduler("faascache")
        assert not lane_supported_scheduler("nope")

    def test_lane_supported_ignores_stream(self):
        task = make_task("keepalive")
        assert lane_supported(task)
        assert not lane_supported(make_task("faascache"))


class TestArrivalTable:
    def test_columnar_lowering_matches_workload(self):
        workload = cached_workload("LO-Sim", 0)
        table = ArrivalTable(workload)
        arrivals = sorted(workload.invocations, key=lambda i: i.arrival_time)
        assert table.n == len(arrivals)
        assert table.times.dtype == np.float64
        np.testing.assert_array_equal(
            table.times, [i.arrival_time for i in arrivals])
        np.testing.assert_array_equal(
            table.exec_s, [i.execution_time_s for i in arrivals])
        for i, inv in enumerate(arrivals):
            assert table.specs[table.fn_ix[i]] is inv.spec

    def test_cache_returns_same_object(self):
        assert cached_arrival_table("LO-Sim", 0) is cached_arrival_table(
            "LO-Sim", 0)


class TestLaneParity:
    @pytest.mark.parametrize("scheduler", LANE_KEYS)
    def test_single_lane_matches_sequential(self, scheduler):
        task = make_task(scheduler)
        sequential = run_task(task)
        result = lane_summary(task)
        assert result.method == sequential.method
        assert list(result.summary.items()) == list(
            sequential.summary.items())

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_capacity_edges(self, capacity):
        task = make_task("lru", capacity=capacity)
        assert lane_summary(task).summary == run_task(task).summary

    @settings(max_examples=12, deadline=None)
    @given(
        cells=st.lists(
            st.tuples(
                st.sampled_from(LANE_KEYS),
                st.sampled_from(WORKLOADS),
                st.integers(min_value=0, max_value=3),
                st.sampled_from(CAPACITIES),
            ),
            min_size=1, max_size=6,
        ),
        lanes=st.integers(min_value=1, max_value=8),
    )
    def test_grid_parity_property(self, cells, lanes):
        tasks = [make_task(*cell) for cell in cells]
        sequential = run_grid(tasks, jobs=1)
        laned = run_grid(tasks, jobs=1, lanes=lanes)
        assert [c.task for c in laned] == [c.task for c in sequential]
        for a, b in zip(laned, sequential):
            assert a.method == b.method
            assert list(a.summary.items()) == list(b.summary.items())


class TestRunGridIntegration:
    def test_mixed_supported_and_sequential(self):
        tasks = [make_task("lru"), make_task("faascache"),
                 make_task("greedy", seed=1), make_task("coldonly")]
        sequential = run_grid(tasks, jobs=1)
        laned = run_grid(tasks, jobs=1, lanes=3)
        assert [c.summary for c in laned] == [c.summary for c in sequential]

    def test_proactive_policies_fall_back_to_sequential(self):
        """mpc/lending/offline cells are not lane-lowered: ``run_grid``
        with lanes on must route them through the sequential path and
        stay byte-identical to ``lanes=0``."""
        for key in ("mpc", "lending", "offline"):
            assert not lane_supported(make_task(key))
            assert not lane_supported_scheduler(key)
        tasks = [make_task("lru"), make_task("mpc"), make_task("lending"),
                 make_task("offline"), make_task("greedy", seed=1)]
        sequential = run_grid(tasks, jobs=1)
        laned = run_grid(tasks, jobs=1, lanes=4)
        assert [c.method for c in laned] == [c.method for c in sequential]
        assert [list(c.summary.items()) for c in laned] == [
            list(c.summary.items()) for c in sequential]

    def test_parallel_jobs_with_lanes(self):
        tasks = [make_task(s, seed=seed)
                 for seed in (0, 1) for s in ("lru", "keepalive", "greedy")]
        sequential = run_grid(tasks, jobs=1)
        fanned = run_grid(tasks, jobs=2, lanes=4)
        assert [c.summary for c in fanned] == [c.summary for c in sequential]

    def test_lane_batch_larger_than_grid(self):
        tasks = [make_task("lru"), make_task("greedy")]
        laned = run_grid(tasks, jobs=1, lanes=64)
        assert [c.summary for c in laned] == [
            c.summary for c in run_grid(tasks, jobs=1)]


class TestKernelValidation:
    def test_unsupported_scheduler_rejected(self):
        table = cached_arrival_table("LO-Sim", 0)
        spec = LaneSpec(scheduler="faascache", table=table, capacity_mb=800.0)
        with pytest.raises(KeyError):
            LaneKernel([spec])
