"""Tests for the synthetic Azure-like trace generator."""

import numpy as np
import pytest

from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator


class TestConfig:
    def test_defaults_valid(self):
        AzureTraceConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(n_functions=10, n_invocations=5)
        with pytest.raises(ValueError):
            AzureTraceConfig(single_invocation_fraction=1.0)
        with pytest.raises(ValueError):
            AzureTraceConfig(burstiness=2.0)


class TestGeneratedTraces:
    @pytest.fixture(scope="class")
    def trace(self):
        return AzureTraceGenerator().generate(seed=0)

    def test_invocation_count(self, trace):
        assert len(trace) == 500

    def test_cited_statistics(self, trace):
        """~19 % invoked once; >40 % invoked <= 2 times (Azure trace)."""
        stats = AzureTraceGenerator.trace_statistics(trace)
        assert 0.10 <= stats["frac_invoked_once"] <= 0.30
        assert stats["frac_invoked_le2"] > 0.40

    def test_skewed_popularity(self, trace):
        counts = list(trace.invocation_counts().values())
        assert max(counts) > 10 * min(counts)

    def test_arrivals_inside_window(self, trace):
        assert trace.arrival_times().max() < 600.0

    def test_images_have_three_levels(self, trace):
        for spec in trace.function_specs():
            assert spec.image.os_packages
            assert spec.image.language_packages  # runtimes may be empty

    def test_determinism(self):
        a = AzureTraceGenerator().generate(seed=3)
        b = AzureTraceGenerator().generate(seed=3)
        np.testing.assert_array_equal(a.arrival_times(), b.arrival_times())

    def test_seeds_differ(self):
        a = AzureTraceGenerator().generate(seed=1)
        b = AzureTraceGenerator().generate(seed=2)
        assert not np.array_equal(a.arrival_times(), b.arrival_times())

    def test_burstiness_increases_clustering(self):
        smooth = AzureTraceGenerator(
            AzureTraceConfig(burstiness=0.0)
        ).generate(seed=0)
        bursty = AzureTraceGenerator(
            AzureTraceConfig(burstiness=0.9)
        ).generate(seed=0)
        # Burstier traces have higher interarrival variance.
        assert (np.var(bursty.interarrival_times())
                > np.var(smooth.interarrival_times()))

    def test_metadata_includes_statistics(self):
        trace = AzureTraceGenerator().generate(seed=0)
        assert "frac_invoked_once" in trace.metadata
        assert "similarity" in trace.metadata
