"""Integration-level tests for the cluster simulator."""

import pytest

from repro.cluster.eviction import LRUEviction, RejectNewcomerEviction
from repro.cluster.simulator import (
    ClusterSimulator,
    InvalidDecisionError,
    SimulationConfig,
)
from repro.containers.matching import MatchLevel
from repro.schedulers.base import Decision
from repro.schedulers.coldonly import ColdOnlyScheduler
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.workload import Workload

from conftest import make_image, make_invocation, make_spec


def workload_of(invocations, name="test"):
    return Workload.from_invocations(name, invocations)


def spec_a(name="fa"):
    return make_spec(name=name, image=make_image("a"))


def spec_b(name="fb"):
    return make_spec(
        name=name, image=make_image("b", runtime_names=("numpy",))
    )


def sim(capacity=10_000.0, policy=None):
    return ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity), policy or LRUEviction()
    )


class TestConservation:
    def test_every_arrival_recorded_once(self):
        wl = workload_of([
            make_invocation(spec_a(), i, arrival_time=float(i))
            for i in range(10)
        ])
        result = sim().run(wl, ColdOnlyScheduler())
        t = result.telemetry
        assert t.n_invocations == 10
        assert sorted(r.invocation_id for r in t.records) == list(range(10))

    def test_cold_only_never_reuses(self):
        wl = workload_of([
            make_invocation(spec_a(), i, arrival_time=float(i))
            for i in range(5)
        ])
        t = sim().run(wl, ColdOnlyScheduler()).telemetry
        assert t.cold_starts == 5
        assert len({r.container_id for r in t.records}) == 5


class TestWarmReuse:
    def test_exact_match_reused_after_completion(self):
        # Second arrival lands after the first completes: warm start.
        wl = workload_of([
            make_invocation(spec_a(), 0, arrival_time=0.0,
                            execution_time_s=0.5),
            make_invocation(spec_a("fa2"), 1, arrival_time=100.0),
        ])
        t = sim().run(wl, LRUScheduler()).telemetry
        assert t.cold_starts == 1
        assert t.records[1].match is MatchLevel.L3
        assert t.records[1].container_id == t.records[0].container_id

    def test_no_reuse_while_busy(self):
        # Second arrival lands during the first's execution: must cold-start.
        wl = workload_of([
            make_invocation(spec_a(), 0, arrival_time=0.0,
                            execution_time_s=1000.0),
            make_invocation(spec_a("fa2"), 1, arrival_time=1.0),
        ])
        t = sim().run(wl, LRUScheduler()).telemetry
        assert t.cold_starts == 2

    def test_multilevel_reuse_repacks_container(self):
        wl = workload_of([
            make_invocation(spec_a(), 0, arrival_time=0.0,
                            execution_time_s=0.5),
            make_invocation(spec_b(), 1, arrival_time=100.0),
        ])
        t = sim().run(wl, GreedyMatchScheduler()).telemetry
        assert t.records[1].match is MatchLevel.L2
        assert t.records[1].container_id == t.records[0].container_id

    def test_warm_latency_lower_than_cold(self):
        wl = workload_of([
            make_invocation(spec_a(), 0, arrival_time=0.0,
                            execution_time_s=0.5),
            make_invocation(spec_a("fa2"), 1, arrival_time=100.0),
        ])
        t = sim().run(wl, LRUScheduler()).telemetry
        assert t.records[1].startup_latency_s < t.records[0].startup_latency_s


class TestEvictionIntegration:
    def test_pool_capacity_respected(self):
        # Capacity fits one container only; three sequential functions.
        image_mem = make_image("a").memory_mb
        wl = workload_of([
            make_invocation(spec_a(f"f{i}"), i, arrival_time=50.0 * i,
                            execution_time_s=0.5)
            for i in range(3)
        ])
        s = sim(capacity=image_mem * 1.5)
        t = s.run(wl, ColdOnlyScheduler()).telemetry
        assert t.evictions == 2  # each completion evicts the previous
        assert t.peak_warm_memory_mb <= image_mem * 1.5

    def test_reject_newcomer_policy_rejects(self):
        image_mem = make_image("a").memory_mb
        wl = workload_of([
            make_invocation(spec_a(f"f{i}"), i, arrival_time=50.0 * i,
                            execution_time_s=0.5)
            for i in range(3)
        ])
        s = sim(capacity=image_mem * 1.5,
                policy=RejectNewcomerEviction(ttl_s=1e6))
        t = s.run(wl, ColdOnlyScheduler()).telemetry
        assert t.evictions == 0
        assert t.keep_alive_rejections == 2

    def test_ttl_expiry(self):
        wl = workload_of([
            make_invocation(spec_a(), 0, arrival_time=0.0,
                            execution_time_s=0.5),
            # Arrives long after the 10-minute TTL.
            make_invocation(spec_a("fa2"), 1, arrival_time=2000.0),
        ])
        s = sim(policy=RejectNewcomerEviction(ttl_s=600.0))
        t = s.run(wl, LRUScheduler()).telemetry
        assert t.ttl_expirations == 1
        assert t.cold_starts == 2


class TestInvalidDecisions:
    def test_unknown_container_id(self):
        s = sim()
        s.load(workload_of([make_invocation(spec_a(), 0)]))
        assert s.next_decision_point() is not None
        with pytest.raises(InvalidDecisionError):
            s.apply_decision(Decision.warm(999))

    def test_no_match_container_rejected(self):
        first = spec_a()
        other_os = make_spec(name="fo",
                             image=make_image("o", os_name="debian"))
        wl = workload_of([
            make_invocation(first, 0, arrival_time=0.0,
                            execution_time_s=0.5),
            make_invocation(other_os, 1, arrival_time=100.0),
        ])
        s = sim()
        s.load(wl)
        s.next_decision_point()
        s.apply_decision(Decision.cold())
        ctx = s.next_decision_point()
        warm_id = ctx.idle_containers[0].container_id
        with pytest.raises(InvalidDecisionError):
            s.apply_decision(Decision.warm(warm_id))

    def test_rejected_decision_keeps_invocation_pending(self):
        # Regression: apply_decision used to pop the pending invocation
        # before validating, so a rejected decision lost the arrival and
        # next_decision_point() skipped it entirely.
        s = sim()
        s.load(workload_of([make_invocation(spec_a(), 0)]))
        assert s.next_decision_point() is not None
        with pytest.raises(InvalidDecisionError):
            s.apply_decision(Decision.warm(999))
        # The arrival is still pending: retrying with a valid decision works.
        record = s.apply_decision(Decision.cold())
        assert record.invocation_id == 0
        t = s.finish().telemetry
        assert t.n_invocations == 1

    def test_rejected_decision_leaves_cluster_untouched(self):
        wl = workload_of([
            make_invocation(spec_a(), 0, arrival_time=0.0,
                            execution_time_s=0.5),
            make_invocation(spec_a("fa2"), 1, arrival_time=100.0),
        ])
        s = sim()
        s.load(wl)
        s.next_decision_point()
        s.apply_decision(Decision.cold())
        ctx = s.next_decision_point()
        warm_id = ctx.idle_containers[0].container_id
        pooled_before = len(s.pool.containers())
        samples_before = len(s.telemetry.memory_timeline)
        with pytest.raises(InvalidDecisionError):
            s.apply_decision(Decision.warm(warm_id + 1))
        assert len(s.pool.containers()) == pooled_before
        assert len(s.telemetry.memory_timeline) == samples_before
        # The warm container is still claimable after the failed attempt.
        record = s.apply_decision(Decision.warm(warm_id))
        assert record.container_id == warm_id
        assert not record.cold_start


class TestIncrementalAPI:
    def test_run_equals_incremental(self):
        wl = workload_of([
            make_invocation(spec_a(f"f{i}"), i, arrival_time=10.0 * i,
                            execution_time_s=0.5)
            for i in range(6)
        ])
        batch = sim().run(wl, LRUScheduler()).telemetry

        s2 = sim()
        sched = LRUScheduler()
        s2.load(wl)
        while (ctx := s2.next_decision_point()) is not None:
            s2.apply_decision(sched.decide(ctx))
        inc = s2.finish("LRU").telemetry
        assert batch.total_startup_latency_s == pytest.approx(
            inc.total_startup_latency_s
        )
        assert batch.cold_starts == inc.cold_starts

    def test_double_apply_rejected(self):
        s = sim()
        s.load(workload_of([make_invocation(spec_a(), 0)]))
        s.next_decision_point()
        s.apply_decision(Decision.cold())
        with pytest.raises(RuntimeError):
            s.apply_decision(Decision.cold())

    def test_finish_with_pending_rejected(self):
        s = sim()
        s.load(workload_of([make_invocation(spec_a(), 0)]))
        s.next_decision_point()
        with pytest.raises(RuntimeError):
            s.finish()

    def test_time_advances_monotonically(self):
        wl = workload_of([
            make_invocation(spec_a(f"f{i}"), i, arrival_time=5.0 * i)
            for i in range(4)
        ])
        s = sim()
        s.load(wl)
        stamps = []
        while (ctx := s.next_decision_point()) is not None:
            stamps.append(s.now)
            s.apply_decision(Decision.cold())
        assert stamps == sorted(stamps)


class TestTelemetryDetails:
    def test_breakdown_total_matches_latency(self):
        wl = workload_of([make_invocation(spec_a(), 0)])
        t = sim().run(wl, ColdOnlyScheduler()).telemetry
        r = t.records[0]
        assert r.breakdown.total_s == pytest.approx(r.startup_latency_s)

    def test_peak_live_memory_positive(self):
        wl = workload_of([make_invocation(spec_a(), 0)])
        t = sim().run(wl, ColdOnlyScheduler()).telemetry
        assert t.peak_live_memory_mb > 0
