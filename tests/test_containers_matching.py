"""Tests for Table-I multi-level matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel, best_match, match_level
from repro.packages.package import PackageLevel, PackageSet

from conftest import make_image, make_package


class TestMatchLevel:
    def test_full_match(self):
        a = make_image("a")
        b = make_image("b")
        assert match_level(a, b) is MatchLevel.L3

    def test_l2_match_runtime_differs(self):
        a = make_image("a", runtime_names=("flask",))
        b = make_image("b", runtime_names=("flask", "numpy"))
        assert match_level(a, b) is MatchLevel.L2

    def test_l1_match_language_differs(self):
        a = make_image("a", lang_name="python")
        b = make_image("b", lang_name="nodejs")
        assert match_level(a, b) is MatchLevel.L1

    def test_no_match_os_differs(self):
        a = make_image("a", os_name="alpine")
        b = make_image("b", os_name="debian")
        assert match_level(a, b) is MatchLevel.NO_MATCH

    def test_pruning_os_mismatch_hides_identical_runtime(self):
        """OS mismatch returns NO_MATCH even if L2/L3 are identical."""
        a = make_image("a", os_name="alpine", runtime_names=("flask",))
        b = make_image("b", os_name="debian", runtime_names=("flask",))
        assert match_level(a, b) is MatchLevel.NO_MATCH

    def test_whole_level_semantics(self):
        """A superset at a level is NOT a match (levels compare as wholes)."""
        base = make_image("base", runtime_names=("flask",))
        superset = make_image("sup", runtime_names=("flask", "numpy"))
        assert match_level(base, superset) is not MatchLevel.L3

    def test_symmetry(self):
        a = make_image("a", runtime_names=("flask",))
        b = make_image("b", runtime_names=("numpy",))
        assert match_level(a, b) is match_level(b, a)

    def test_reusable_property(self):
        assert not MatchLevel.NO_MATCH.is_reusable
        for lvl in (MatchLevel.L1, MatchLevel.L2, MatchLevel.L3):
            assert lvl.is_reusable

    def test_ordering(self):
        assert (MatchLevel.NO_MATCH < MatchLevel.L1 < MatchLevel.L2
                < MatchLevel.L3)


class TestBestMatch:
    def test_empty_candidates(self):
        handle, level = best_match(make_image("f"), [])
        assert handle is None
        assert level is MatchLevel.NO_MATCH

    def test_picks_deepest(self):
        f = make_image("f", runtime_names=("flask",))
        c_l1 = make_image("c1", lang_name="nodejs")
        c_l2 = make_image("c2", runtime_names=("numpy",))
        c_l3 = make_image("c3", runtime_names=("flask",))
        handle, level = best_match(
            f, [("a", c_l1), ("b", c_l2), ("c", c_l3)]
        )
        assert handle == "c"
        assert level is MatchLevel.L3

    def test_ties_keep_first(self):
        f = make_image("f")
        c1 = make_image("c1", runtime_names=("numpy",))
        c2 = make_image("c2", runtime_names=("pandas",))
        handle, level = best_match(f, [("first", c1), ("second", c2)])
        assert handle == "first"
        assert level is MatchLevel.L2

    def test_stops_early_on_full_match(self):
        """Candidates after an L3 hit are not inspected (generator proof)."""
        f = make_image("f")
        seen = []

        def gen():
            for i, img in enumerate(
                [make_image("c0"), make_image("c1", lang_name="nodejs")]
            ):
                seen.append(i)
                yield (i, img)

        handle, level = best_match(f, gen())
        assert level is MatchLevel.L3
        assert seen == [0]


# -- property-based -----------------------------------------------------------

level_strategy = st.sampled_from(["alpine", "debian", "centos"])
lang_strategy = st.sampled_from(["python", "nodejs", "java"])
rt_strategy = st.sets(st.sampled_from(["flask", "numpy", "pandas"]),
                      max_size=3)


@given(level_strategy, lang_strategy, rt_strategy,
       level_strategy, lang_strategy, rt_strategy)
def test_match_level_consistent_with_level_equality(os1, l1, r1, os2, l2, r2):
    a = make_image("a", os_name=os1, lang_name=l1, runtime_names=tuple(r1))
    b = make_image("b", os_name=os2, lang_name=l2, runtime_names=tuple(r2))
    result = match_level(a, b)
    os_eq = a.os_packages == b.os_packages
    lang_eq = a.language_packages == b.language_packages
    rt_eq = a.runtime_packages == b.runtime_packages
    if not os_eq:
        assert result is MatchLevel.NO_MATCH
    elif not lang_eq:
        assert result is MatchLevel.L1
    elif not rt_eq:
        assert result is MatchLevel.L2
    else:
        assert result is MatchLevel.L3
