"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    PeakArrivals,
    PoissonArrivals,
    RandomRateArrivals,
    UniformArrivals,
)


class TestPoisson:
    def test_count(self, rng):
        times = PoissonArrivals(100, 2.0).generate(rng)
        assert len(times) == 100

    def test_sorted_and_positive(self, rng):
        times = PoissonArrivals(50, 1.0).generate(rng)
        assert (times > 0).all()
        assert (np.diff(times) >= 0).all()

    def test_rate(self):
        rng = np.random.default_rng(0)
        times = PoissonArrivals(20_000, 4.0).generate(rng)
        rate = len(times) / times[-1]
        assert rate == pytest.approx(4.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1, 1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(10, 0.0)


class TestUniform:
    def test_even_spacing(self, rng):
        times = UniformArrivals(rate_per_minute=50, minutes=6).generate(rng)
        assert len(times) == 300
        np.testing.assert_allclose(np.diff(times), 60.0 / 50)

    def test_starts_at_zero(self, rng):
        assert UniformArrivals(10, 1).generate(rng)[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformArrivals(0, 1)


class TestPeak:
    def test_alternating_counts(self, rng):
        times = PeakArrivals(80, 20, minutes=6).generate(rng)
        assert len(times) == 3 * 80 + 3 * 20
        per_minute = [
            int(((times >= 60 * m) & (times < 60 * (m + 1))).sum())
            for m in range(6)
        ]
        assert per_minute == [80, 20, 80, 20, 80, 20]

    def test_start_low(self, rng):
        times = PeakArrivals(80, 20, minutes=2, start_high=False).generate(rng)
        first_minute = int((times < 60).sum())
        assert first_minute == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            PeakArrivals(0, 20)


class TestRandomRate:
    def test_count_and_window(self, rng):
        proc = RandomRateArrivals(300, rate_per_minute=50, minutes=6)
        times = proc.generate(rng)
        assert len(times) == 300
        assert times.max() <= 360.0
        assert (np.diff(times) >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomRateArrivals(0, 50, 6)

    def test_determinism_per_seed(self):
        a = RandomRateArrivals(50, 50, 1).generate(np.random.default_rng(1))
        b = RandomRateArrivals(50, 50, 1).generate(np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)
