"""Tests for the startup cost model and its paper calibration bands."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers.costmodel import (
    CostModelParams,
    StartupCostModel,
    StartupPhase,
)
from repro.containers.matching import MatchLevel
from repro.workloads.functions import fstartbench_functions

from conftest import make_image


@pytest.fixture
def model():
    return StartupCostModel()


class TestParams:
    def test_defaults_valid(self):
        CostModelParams()

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            CostModelParams(bandwidth_mb_per_s=0.0)

    def test_negative_create_rejected(self):
        with pytest.raises(ValueError):
            CostModelParams(create_s=-1.0)

    def test_warm_factor_bounds(self):
        with pytest.raises(ValueError):
            CostModelParams(warm_function_factor=1.5)
        with pytest.raises(ValueError):
            CostModelParams(warm_runtime_factor=-0.1)


class TestBreakdown:
    def test_latency_strictly_decreases_with_match_depth(self, model):
        image = make_image("f", runtime_names=("flask", "numpy"))
        latencies = [
            model.latency_s(image, lvl, 0.5) for lvl in MatchLevel
        ]
        assert latencies == sorted(latencies, reverse=True)
        assert len(set(latencies)) == 4

    def test_cold_pays_create_not_clean(self, model):
        bd = model.breakdown(make_image("f"), MatchLevel.NO_MATCH, 0.1)
        assert bd.create_s > 0
        assert bd.clean_s == 0.0

    def test_warm_pays_clean_not_create(self, model):
        for lvl in (MatchLevel.L1, MatchLevel.L2, MatchLevel.L3):
            bd = model.breakdown(make_image("f"), lvl, 0.1)
            assert bd.create_s == 0.0
            assert bd.clean_s > 0

    def test_l3_pulls_nothing(self, model):
        bd = model.breakdown(make_image("f"), MatchLevel.L3, 0.5)
        assert bd.pull_s == 0.0
        assert bd.install_s == 0.0

    def test_l2_pulls_only_runtime(self, model):
        image = make_image("f", runtime_names=("tensorflow",))
        bd = model.breakdown(image, MatchLevel.L2, 0.0)
        expected = model.pull_time_s(image.runtime_packages)
        assert bd.pull_s == pytest.approx(expected)

    def test_l1_pulls_language_and_runtime(self, model):
        image = make_image("f")
        bd = model.breakdown(image, MatchLevel.L1, 0.0)
        expected = model.pull_time_s(
            image.language_packages | image.runtime_packages
        )
        assert bd.pull_s == pytest.approx(expected)

    def test_cold_pulls_everything(self, model):
        image = make_image("f")
        bd = model.breakdown(image, MatchLevel.NO_MATCH, 0.0)
        assert bd.pull_s == pytest.approx(
            model.pull_time_s(frozenset(image.packages))
        )

    def test_function_init_warm_discount_at_l3(self, model):
        init = 2.0
        cold = model.breakdown(make_image("f"), MatchLevel.NO_MATCH, init)
        warm = model.breakdown(make_image("f"), MatchLevel.L3, init)
        assert cold.function_init_s == pytest.approx(init)
        assert warm.function_init_s == pytest.approx(
            init * model.params.warm_function_factor
        )

    def test_negative_function_init_rejected(self, model):
        with pytest.raises(ValueError):
            model.breakdown(make_image("f"), MatchLevel.L3, -0.1)

    def test_total_is_sum_of_phases(self, model):
        bd = model.breakdown(make_image("f"), MatchLevel.L1, 0.3)
        assert bd.total_s == pytest.approx(sum(bd.as_dict().values()))

    def test_as_dict_covers_all_phases(self, model):
        bd = model.breakdown(make_image("f"), MatchLevel.NO_MATCH, 0.3)
        assert set(bd.as_dict()) == set(StartupPhase)

    def test_jvm_runtime_init_dominates_python(self, model):
        java = make_image("j", lang_name="java")
        python = make_image("p", lang_name="python")
        assert model.runtime_init_time_s(java) > 5 * model.runtime_init_time_s(
            python
        )


class TestPaperCalibration:
    """Section II bands measured on the FStartBench functions."""

    def test_pull_share_of_cold_start(self, model):
        """Code pulling (fetch+install) is 47-89 % of cold start."""
        for spec in fstartbench_functions():
            bd = model.breakdown(spec.image, MatchLevel.NO_MATCH,
                                 spec.function_init_s)
            share = (bd.pull_s + bd.install_s) / bd.total_s
            assert 0.40 <= share <= 0.92, (spec.name, share)

    def test_cold_to_exec_ratio_band(self, model):
        """Cold start is 1.3x-166x the mean execution time."""
        for spec in fstartbench_functions():
            cold = model.latency_s(spec.image, MatchLevel.NO_MATCH,
                                   spec.function_init_s)
            ratio = cold / spec.exec_time_mean_s
            assert 1.2 <= ratio <= 170, (spec.name, ratio)

    def test_full_warm_start_much_faster(self, model):
        """A full (L3) warm start is many times faster than cold."""
        speedups = []
        for spec in fstartbench_functions():
            cold = model.latency_s(spec.image, MatchLevel.NO_MATCH,
                                   spec.function_init_s)
            warm = model.latency_s(spec.image, MatchLevel.L3,
                                   spec.function_init_s)
            speedups.append(cold / warm)
        assert max(speedups) > 10  # paper: up to 14x for W-style reuse


@given(init=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_monotone_savings_hold_for_any_function_init(init):
    model = StartupCostModel()
    image = make_image("f", runtime_names=("flask", "numpy"))
    latencies = [model.latency_s(image, lvl, init) for lvl in MatchLevel]
    assert all(a >= b for a, b in zip(latencies, latencies[1:]))
