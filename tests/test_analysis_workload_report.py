"""Tests for workload characterization reports."""

import pytest

from repro.analysis.workload_report import (
    arrival_histogram,
    composition_table,
    full_report,
    interarrival_summary,
    similarity_matrix,
)
from repro.workloads.fstartbench import (
    hi_sim_workload,
    peak_workload,
    uniform_workload,
)
from repro.workloads.workload import Workload


@pytest.fixture(scope="module")
def workload():
    return hi_sim_workload(seed=0, n=60)


class TestCompositionTable:
    def test_lists_all_functions(self, workload):
        out = composition_table(workload)
        for spec in workload.function_specs():
            assert spec.name in out

    def test_counts_sum(self, workload):
        out = composition_table(workload)
        counts = [int(line.split("|")[1]) for line in out.splitlines()[3:]]
        assert sum(counts) == len(workload)


class TestSimilarityMatrix:
    def test_square_with_unit_diagonal(self, workload):
        out = similarity_matrix(workload)
        lines = out.splitlines()[3:]
        n = len(workload.function_specs())
        assert len(lines) == n
        for i, line in enumerate(lines):
            cells = [c.strip() for c in line.split("|")[1:]]
            assert cells[i] == "1.00"


class TestArrivalHistogram:
    def test_empty(self):
        assert "no invocations" in arrival_histogram(
            Workload.from_invocations("e", [])
        )

    def test_buckets_cover_all(self, workload):
        out = arrival_histogram(workload, bins=6)
        totals = [float(line.rsplit(" ", 1)[-1]) for line in
                  out.splitlines()[1:]]
        assert sum(totals) == len(workload)


class TestInterarrival:
    def test_uniform_has_low_burstiness(self):
        stats = interarrival_summary(uniform_workload(seed=0))
        assert stats["burstiness_index"] < -0.4  # near-deterministic gaps

    def test_peak_burstier_than_uniform(self):
        peak = interarrival_summary(peak_workload(seed=0))
        uniform = interarrival_summary(uniform_workload(seed=0))
        assert peak["burstiness_index"] > uniform["burstiness_index"]

    def test_empty_workload(self):
        stats = interarrival_summary(Workload.from_invocations("e", []))
        assert stats["mean_gap_s"] == 0.0


class TestFullReport:
    def test_contains_all_sections(self, workload):
        out = full_report(workload)
        assert "composition" in out
        assert "Jaccard" in out
        assert "arrival histogram" in out
        assert "Metric 1" in out and "Metric 3" in out
