"""Property tests: interned-fingerprint matching == frozenset matching.

The fingerprint hot path (``match_level``) compares interned integers;
``match_level_sets`` compares the per-level frozensets directly.  The two
must agree on *every* image pair, so we drive them with randomized image
catalogs and cross-check, plus pin down the interning invariants the fast
path relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers.matching import (
    MatchLevel,
    best_match,
    match_level,
    match_level_sets,
)
from repro.packages.catalog import LANGUAGE_GROUPS, OS_GROUPS
from repro.packages.package import PackageLevel

from conftest import make_image

RUNTIMES = ("flask", "numpy", "pandas", "matplotlib", "tensorflow")

images = st.builds(
    make_image,
    name=st.just("img"),
    os_name=st.sampled_from(sorted(OS_GROUPS)),
    lang_name=st.sampled_from(sorted(LANGUAGE_GROUPS)),
    runtime_names=st.frozensets(st.sampled_from(RUNTIMES), max_size=3)
    .map(sorted).map(tuple),
)


class TestFingerprintEquivalence:
    @given(a=images, b=images)
    @settings(max_examples=200, deadline=None)
    def test_matches_frozenset_matcher(self, a, b):
        """Fingerprint path agrees with the set path on random pairs."""
        assert match_level(a, b) is match_level_sets(a, b)

    @given(a=images, b=images)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert match_level(a, b) is match_level(b, a)

    @given(img=images)
    @settings(max_examples=50, deadline=None)
    def test_self_match_is_l3(self, img):
        assert match_level(img, img) is MatchLevel.L3

    @given(a=images, b=images, c=images)
    @settings(max_examples=100, deadline=None)
    def test_best_match_consistent_with_pairwise(self, a, b, c):
        """best_match picks a candidate at the true deepest level."""
        by_handle = {"b": b, "c": c}
        chosen, level = best_match(a, [("b", b), ("c", c)])
        expected = max(match_level(a, b), match_level(a, c))
        assert level is expected
        if level is not MatchLevel.NO_MATCH:
            assert match_level(a, by_handle[chosen]) is level


class TestFingerprintInterning:
    def test_equal_sets_share_fingerprints(self):
        """Structurally equal package sets intern to the same tuple."""
        a = make_image("a", runtime_names=("flask", "numpy"))
        b = make_image("b", runtime_names=("numpy", "flask"))
        assert a.fingerprints is b.fingerprints

    def test_distinct_levels_get_distinct_ids(self):
        a = make_image("a", runtime_names=("flask",))
        b = make_image("b", runtime_names=("numpy",))
        assert a.fingerprints[:2] == b.fingerprints[:2]
        assert a.fingerprints[2] != b.fingerprints[2]

    def test_fingerprints_follow_package_levels(self):
        """Each tuple slot corresponds to one Table-I package level."""
        base = make_image("base")
        other_os = make_image("o", os_name="debian")
        other_lang = make_image("l", lang_name="nodejs")
        assert base.fingerprints[0] != other_os.fingerprints[0]
        assert base.fingerprints[0] == other_lang.fingerprints[0]
        assert base.fingerprints[1] != other_lang.fingerprints[1]
        assert len(base.fingerprints) == len(list(PackageLevel))

    def test_pickle_roundtrip_reinterns(self):
        """Unpickled images re-derive fingerprints (ids are process-local)."""
        import pickle

        img = make_image("a", runtime_names=("flask", "pandas"))
        clone = pickle.loads(pickle.dumps(img))
        assert clone.fingerprints is img.fingerprints
        assert match_level(img, clone) is MatchLevel.L3
