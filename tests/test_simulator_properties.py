"""Property-based tests: simulator invariants under random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.eviction import LRUEviction, RejectNewcomerEviction
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.containers.matching import MatchLevel
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.keepalive import KeepAliveScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.functions import function_by_id
from repro.workloads.workload import Invocation, Workload

# Random workload strategy: a handful of FStartBench functions with random
# arrivals and execution times.
invocation_strategy = st.tuples(
    st.sampled_from([1, 2, 4, 5, 6, 10, 11]),         # func type
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),  # arrival
    st.floats(min_value=0.05, max_value=5.0, allow_nan=False),   # exec time
)

workload_strategy = st.lists(invocation_strategy, min_size=1, max_size=40)

scheduler_strategy = st.sampled_from([
    LRUScheduler, GreedyMatchScheduler, KeepAliveScheduler,
])

capacity_strategy = st.sampled_from([300.0, 800.0, 2000.0, float("inf")])


def build_workload(items) -> Workload:
    ordered = sorted(items, key=lambda item: item[1])
    return Workload.from_invocations("prop", [
        Invocation(
            invocation_id=i,
            spec=function_by_id(fid),
            arrival_time=t,
            execution_time_s=e,
        )
        for i, (fid, t, e) in enumerate(ordered)
    ])


@settings(max_examples=40, deadline=None)
@given(items=workload_strategy, scheduler_cls=scheduler_strategy,
       capacity=capacity_strategy)
def test_simulator_invariants(items, scheduler_cls, capacity):
    workload = build_workload(items)
    scheduler = scheduler_cls()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity),
        scheduler.make_eviction_policy(),
    )
    result = sim.run(workload, scheduler)
    t = result.telemetry

    # 1. Conservation: every invocation handled exactly once, in order.
    assert t.n_invocations == len(workload)
    assert [r.invocation_id for r in t.records] == list(range(len(workload)))

    # 2. Capacity: the warm pool never exceeds its capacity.
    if np.isfinite(capacity):
        assert t.peak_warm_memory_mb <= capacity + 1e-6
        for _, used in t.memory_timeline:
            assert used <= capacity + 1e-6

    # 3. Cold/warm consistency: warm starts carry a reusable match level
    #    and cost no more than the same function's cold start would.
    spec_by_name = {s.name: s for s in workload.function_specs()}
    for r in t.records:
        if r.cold_start:
            assert r.match is MatchLevel.NO_MATCH
        else:
            assert r.match.is_reusable
        spec = spec_by_name[r.function_name]
        cold = sim.config.cost_model.latency_s(
            spec.image, MatchLevel.NO_MATCH, spec.function_init_s
        )
        if r.cold_start:
            assert r.startup_latency_s == pytest.approx(cold)
        else:
            assert r.startup_latency_s <= cold + 1e-9

    # 4. Counters are internally consistent.
    assert t.cold_starts + t.warm_starts == t.n_invocations
    assert t.evictions >= 0 and t.keep_alive_rejections >= 0


@settings(max_examples=25, deadline=None)
@given(items=workload_strategy)
def test_container_never_serves_two_functions_at_once(items):
    """No container runs overlapping invocations (claim discipline)."""
    workload = build_workload(items)
    scheduler = GreedyMatchScheduler()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=float("inf")), LRUEviction()
    )
    t = sim.run(workload, scheduler).telemetry
    busy: dict = {}
    for r in sorted(t.records, key=lambda r: r.arrival_time):
        start = r.arrival_time
        end = r.finish_time
        intervals = busy.setdefault(r.container_id, [])
        for s, e in intervals:
            assert end <= s + 1e-9 or start >= e - 1e-9, (
                f"container {r.container_id} double-booked"
            )
        intervals.append((start, end))


@settings(max_examples=25, deadline=None)
@given(items=workload_strategy,
       ttl=st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
def test_ttl_never_reuses_expired_containers(items, ttl):
    """With a TTL policy, no warm reuse spans an idle gap longer than TTL."""
    workload = build_workload(items)
    scheduler = KeepAliveScheduler(ttl_s=ttl)
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=float("inf")),
        scheduler.make_eviction_policy(),
    )
    t = sim.run(workload, scheduler).telemetry
    last_finish: dict = {}
    for r in sorted(t.records, key=lambda r: r.arrival_time):
        if not r.cold_start:
            idle_gap = r.arrival_time - last_finish[r.container_id]
            assert idle_gap <= ttl + 1e-6
        last_finish[r.container_id] = r.finish_time
