"""Tests for the worker-concurrency queueing extension experiment."""

import pytest

from repro.experiments import queueing
from repro.experiments.common import ExperimentScale


MICRO = ExperimentScale(
    repeats=1, train_episodes=1, demo_episodes=0, n_slots=6, model_dim=8,
    fig11_pool_fractions=(1.0,), restarts=1,
)


class TestQueueingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return queueing.run(MICRO, worker_counts=(1, 4),
                            concurrency_limits=(1, 4))

    def test_rows_complete(self, result):
        assert len(result.rows) == 4  # 2 worker counts x 2 limits

    def test_row_lookup(self, result):
        row = result.row(4, 1)
        assert row.n_workers == 4 and row.concurrency == 1
        with pytest.raises(KeyError):
            result.row(99, 1)

    def test_tight_limit_queues_on_one_worker(self, result):
        assert result.row(1, 1).mean_queueing_s > 0
        assert result.row(1, 1).queued_starts > 0

    def test_more_workers_reduce_latency_at_fixed_limit(self, result):
        one = result.row(1, 1)
        four = result.row(4, 1)
        assert four.mean_startup_s < one.mean_startup_s
        assert four.mean_queueing_s <= one.mean_queueing_s

    def test_looser_limit_reduces_queueing(self, result):
        tight = result.row(1, 1)
        loose = result.row(1, 4)
        assert loose.mean_queueing_s <= tight.mean_queueing_s

    def test_utilization_bounded(self, result):
        for row in result.rows:
            assert 0.0 <= row.mean_utilization <= 1.0

    def test_report_renders(self, result):
        text = queueing.report(result)
        assert "concurrency" in text and "workers" in text
        assert "mean queueing" in text
