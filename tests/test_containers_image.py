"""Tests for FunctionImage."""

import pytest

from repro.containers.image import FunctionImage
from repro.packages.package import PackageLevel, PackageSet

from conftest import make_image, make_package


class TestValidation:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            FunctionImage("", PackageSet([make_package(level=PackageLevel.OS)]))

    def test_requires_os_package(self):
        with pytest.raises(ValueError):
            FunctionImage("x", PackageSet([make_package()]))  # runtime only

    def test_negative_memory_rejected(self):
        ps = PackageSet([make_package(level=PackageLevel.OS)])
        with pytest.raises(ValueError):
            FunctionImage("x", ps, memory_mb=-5)


class TestFromPackages:
    def test_memory_derived_from_size(self):
        pkgs = [
            make_package("os", level=PackageLevel.OS, size_mb=100.0),
            make_package("rt", size_mb=60.0),
        ]
        img = FunctionImage.from_packages("x", pkgs, memory_overhead_mb=32.0)
        assert img.memory_mb == pytest.approx(32.0 + 0.5 * 160.0)

    def test_total_size(self):
        img = make_image()
        assert img.total_size_mb == pytest.approx(
            sum(p.size_mb for p in img.packages)
        )


class TestAccessors:
    def test_level_sets(self):
        img = make_image()
        assert img.level_set(PackageLevel.OS) == img.os_packages
        assert img.level_set(PackageLevel.LANGUAGE) == img.language_packages
        assert img.level_set(PackageLevel.RUNTIME) == img.runtime_packages

    def test_same_configuration(self):
        a = make_image("a")
        b = make_image("b")
        assert a.same_configuration(b)
        c = make_image("c", runtime_names=("numpy",))
        assert not a.same_configuration(c)

    def test_images_hashable_and_frozen(self):
        img = make_image()
        with pytest.raises(AttributeError):
            img.name = "other"  # type: ignore[misc]
