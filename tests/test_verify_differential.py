"""The differential oracle harness, run as a pytest suite.

Each oracle from :mod:`repro.verify.differential` becomes one test, all
marked ``differential`` so the whole cross-implementation matrix can be
selected with ``-m differential``.
"""

from __future__ import annotations

import pytest

from repro.verify.differential import ORACLES, OracleResult, run_oracles

pytestmark = pytest.mark.differential


@pytest.mark.parametrize("oracle_name", sorted(ORACLES))
def test_oracle(oracle_name):
    result = ORACLES[oracle_name]()
    assert result.name == oracle_name
    assert result.ok, str(result)


def test_run_oracles_covers_registry():
    results = run_oracles(["fused_vs_unfused_qkv"])
    assert [r.name for r in results] == ["fused_vs_unfused_qkv"]
    assert results[0].ok


def test_run_oracles_captures_exceptions(monkeypatch):
    def boom():
        raise RuntimeError("kaput")

    monkeypatch.setitem(ORACLES, "fused_vs_unfused_qkv", boom)
    results = run_oracles(["fused_vs_unfused_qkv"])
    assert not results[0].ok
    assert "kaput" in results[0].detail


def test_oracle_result_str():
    assert str(OracleResult("x", True, "fine")) == "x: ok -- fine"
    assert str(OracleResult("x", False)) == "x: DIVERGED"
