"""Tests for training-curve analysis."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.convergence import (
    compare_curves,
    moving_average,
    summarize_curve,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = [3.0, 1.0, 4.0]
        np.testing.assert_allclose(moving_average(values, 1), values)

    def test_partial_windows_at_start(self):
        out = moving_average([2.0, 4.0, 6.0], window=2)
        np.testing.assert_allclose(out, [2.0, 3.0, 5.0])

    def test_empty(self):
        assert moving_average([], 3).size == 0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=10))
    def test_smoothed_stays_in_range(self, values, window):
        out = moving_average(values, window)
        assert out.min() >= min(values) - 1e-9
        assert out.max() <= max(values) + 1e-9


class TestSummarizeCurve:
    def test_improving_curve(self):
        s = summarize_curve([100.0, 80.0, 60.0, 50.0, 50.0])
        assert s.improvement_pct == pytest.approx(50.0)
        assert s.best == 50.0
        assert s.converged

    def test_flat_curve_converges_immediately(self):
        s = summarize_curve([10.0] * 6)
        assert s.convergence_episode == 0
        assert s.stability == 0.0

    def test_degrading_curve_negative_improvement(self):
        s = summarize_curve([50.0, 60.0, 70.0])
        assert s.improvement_pct < 0

    def test_noisy_tail_less_stable(self):
        steady = summarize_curve([10, 10, 10, 10, 10, 10.0])
        noisy = summarize_curve([10, 10, 10, 5, 15, 10.0])
        assert noisy.stability > steady.stability

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_curve([])

    def test_convergence_episode_is_first_within_tolerance(self):
        s = summarize_curve([100.0, 100.0, 100.0, 10.0, 10.0, 10.0],
                            window=1, tolerance=0.05)
        assert s.convergence_episode == 3


class TestCompareCurves:
    def test_renders_all_labels(self):
        out = compare_curves({
            "full": [10.0, 8.0, 6.0],
            "ablated": [10.0, 9.5, 9.0],
        })
        assert "full" in out and "ablated" in out
        assert "improvement" in out
