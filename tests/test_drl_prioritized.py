"""Tests for prioritized experience replay and its sum tree."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.drl.prioritized import PrioritizedReplayBuffer, SumTree
from repro.drl.replay import Transition

from test_drl_replay import make_transition


class TestSumTree:
    def test_total_tracks_sets(self):
        tree = SumTree(4)
        tree.set(0, 1.0)
        tree.set(3, 2.0)
        assert tree.total == pytest.approx(3.0)
        tree.set(0, 0.5)
        assert tree.total == pytest.approx(2.5)

    def test_get(self):
        tree = SumTree(4)
        tree.set(2, 7.0)
        assert tree.get(2) == 7.0
        assert tree.get(1) == 0.0

    def test_find_hits_correct_leaf(self):
        tree = SumTree(4)
        for i, p in enumerate([1.0, 2.0, 3.0, 4.0]):
            tree.set(i, p)
        assert tree.find(0.5) == 0
        assert tree.find(1.5) == 1
        assert tree.find(3.5) == 2
        assert tree.find(9.5) == 3

    def test_find_empty_raises(self):
        with pytest.raises(ValueError):
            SumTree(4).find(0.5)

    def test_bounds(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.set(4, 1.0)
        with pytest.raises(ValueError):
            tree.set(0, -1.0)
        with pytest.raises(ValueError):
            SumTree(0)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=16))
    def test_total_equals_sum_of_leaves(self, priorities):
        tree = SumTree(len(priorities))
        for i, p in enumerate(priorities):
            tree.set(i, p)
        assert tree.total == pytest.approx(sum(priorities))

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=2, max_size=16),
           st.floats(min_value=0.0, max_value=1.0))
    def test_find_never_returns_zero_priority_leaf(self, priorities, frac):
        """Sampling mass can only land on leaves with positive priority.

        (Leaf order in cumulative space is an implementation detail for
        non-power-of-two capacities; proportionality is what matters and is
        checked statistically in the buffer tests.)
        """
        if sum(priorities) <= 0:
            return
        tree = SumTree(len(priorities))
        for i, p in enumerate(priorities):
            tree.set(i, p)
        leaf = tree.find(frac * tree.total)
        assert 0 <= leaf < len(priorities)
        assert priorities[leaf] > 0.0

    def test_sampling_distribution_proportional(self):
        """Empirical sampling frequencies track priorities."""
        rng = np.random.default_rng(0)
        priorities = [1.0, 2.0, 3.0, 4.0, 10.0]
        tree = SumTree(len(priorities))
        for i, p in enumerate(priorities):
            tree.set(i, p)
        counts = np.zeros(len(priorities))
        n = 20_000
        for mass in rng.uniform(0, tree.total, size=n):
            counts[tree.find(mass)] += 1
        expected = np.array(priorities) / sum(priorities)
        np.testing.assert_allclose(counts / n, expected, atol=0.02)


class TestPrioritizedBuffer:
    def test_sample_contains_weights_and_indices(self):
        buf = PrioritizedReplayBuffer(16, 4, 3)
        for i in range(8):
            buf.add(make_transition(float(i)))
        batch = buf.sample(4, np.random.default_rng(0))
        assert "weights" in batch and "indices" in batch
        assert batch["weights"].max() == pytest.approx(1.0)
        assert (batch["weights"] > 0).all()

    def test_high_priority_sampled_more(self):
        buf = PrioritizedReplayBuffer(8, 4, 3, alpha=1.0)
        for i in range(8):
            buf.add(make_transition(float(i)))
        # Give transition #3 overwhelming priority.
        buf.update_priorities(np.arange(8), np.full(8, 0.01))
        buf.update_priorities(np.array([3]), np.array([100.0]))
        rng = np.random.default_rng(0)
        counts = np.zeros(8)
        for _ in range(60):
            batch = buf.sample(4, rng)
            for idx in batch["indices"]:
                counts[idx] += 1
        assert counts[3] > counts.sum() * 0.6

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(8, 4, 3).sample(
                1, np.random.default_rng(0)
            )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(8, 4, 3, alpha=1.5)
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(8, 4, 3, beta=-0.1)

    def test_update_mismatch_rejected(self):
        buf = PrioritizedReplayBuffer(8, 4, 3)
        buf.add(make_transition(0.0))
        with pytest.raises(ValueError):
            buf.update_priorities(np.array([0, 1]), np.array([1.0]))

    def test_ring_overwrite_keeps_tree_consistent(self):
        buf = PrioritizedReplayBuffer(4, 4, 3)
        for i in range(10):
            buf.add(make_transition(float(i)))
        assert len(buf) == 4
        # All four leaves carry max priority; the tree total reflects that.
        assert buf._tree.total == pytest.approx(4 * buf._max_priority**buf.alpha)

    def test_usable_by_dqn_agent(self):
        """The prioritized buffer plugs into the agent's sample contract."""
        from repro.drl.dqn import DQNAgent, DQNConfig
        from repro.drl.network import MLPQNetwork

        agent = DQNAgent(
            network_factory=lambda: MLPQNetwork(
                4, 3, 2, np.random.default_rng(1), hidden=16
            ),
            config=DQNConfig(batch_size=8, buffer_capacity=64),
            rng=np.random.default_rng(2),
        )
        agent.buffer = PrioritizedReplayBuffer(
            64, agent.online.state_dim, agent.online.action_dim
        )
        mask = np.ones(agent.action_dim, dtype=bool)
        rng = np.random.default_rng(3)
        for i in range(20):
            s = rng.normal(size=agent.online.state_dim)
            agent.remember(Transition(
                s, i % agent.action_dim, -1.0,
                rng.normal(size=agent.online.state_dim), mask, False,
            ))
        assert agent.train_step() is not None
