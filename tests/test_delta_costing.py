"""Tests for W-style delta costing and the AlwaysAdopt scheduler."""

import pytest

from repro.containers.costmodel import StartupCostModel
from repro.containers.matching import MatchLevel
from repro.schedulers.walways import AlwaysAdoptScheduler

from conftest import make_container, make_ctx, make_image, make_invocation, make_spec


@pytest.fixture
def model():
    return StartupCostModel()


class TestDeltaBreakdown:
    def test_identical_images_are_fully_warm(self, model):
        img = make_image("a")
        bd = model.delta_breakdown(img, img, function_init_s=1.0)
        assert bd.pull_s == 0.0
        assert bd.install_s == 0.0
        assert bd.runtime_init_s == 0.0
        assert bd.function_init_s == pytest.approx(
            model.params.warm_function_factor
        )

    def test_superset_container_is_fully_warm(self, model):
        """A container holding extra packages still serves the function
        warm -- the defining advantage over whole-level matching."""
        fn = make_image("fn", runtime_names=("flask",))
        zygote = make_image("zy", runtime_names=("flask", "numpy", "pandas"))
        bd = model.delta_breakdown(fn, zygote, function_init_s=0.5)
        assert bd.pull_s == 0.0
        # Whole-level matching would only give L2 here.
        from repro.containers.matching import match_level

        assert match_level(fn, zygote) is MatchLevel.L2
        level_cost = model.latency_s(fn, MatchLevel.L2, 0.5)
        assert bd.total_s < level_cost

    def test_partial_overlap_pulls_only_missing(self, model):
        fn = make_image("fn", runtime_names=("flask", "numpy"))
        container = make_image("c", runtime_names=("flask",))
        bd = model.delta_breakdown(fn, container, function_init_s=0.0)
        missing = {p for p in fn.runtime_packages if p.name == "numpy"}
        assert bd.pull_s == pytest.approx(
            model.pull_time_s(frozenset(missing))
        )

    def test_language_missing_pays_full_runtime_init(self, model):
        fn = make_image("fn", lang_name="python")
        container = make_image("c", lang_name="nodejs")
        bd = model.delta_breakdown(fn, container, function_init_s=0.0)
        assert bd.runtime_init_s == pytest.approx(
            model.runtime_init_time_s(fn)
        )

    def test_os_mismatch_rejected(self, model):
        fn = make_image("fn", os_name="alpine")
        container = make_image("c", os_name="debian")
        with pytest.raises(ValueError):
            model.delta_breakdown(fn, container, 0.0)

    def test_negative_init_rejected(self, model):
        img = make_image("a")
        with pytest.raises(ValueError):
            model.delta_breakdown(img, img, -1.0)

    def test_delta_never_worse_than_level_cost(self, model):
        """Delta reuse is at least as cheap as the same-container Table-I
        reuse (it skips packages already present)."""
        fn = make_image("fn", runtime_names=("flask", "numpy"))
        for container in (
            make_image("c1", runtime_names=("flask", "numpy")),   # L3
            make_image("c2", runtime_names=("flask",)),           # L2
            make_image("c3", lang_name="nodejs"),                 # L1
        ):
            from repro.containers.matching import match_level

            level = match_level(fn, container)
            delta = model.delta_breakdown(fn, container, 0.3).total_s
            level_cost = model.latency_s(fn, level, 0.3)
            assert delta <= level_cost + 1e-9


class TestAlwaysAdoptScheduler:
    def test_adopts_superset_container(self):
        spec = make_spec(name="f", image=make_image("f",
                                                    runtime_names=("flask",)))
        zygote = make_container(
            1, image=make_image("z", runtime_names=("flask", "numpy"))
        )
        ctx = make_ctx(make_invocation(spec), idle_containers=[zygote])
        assert AlwaysAdoptScheduler().decide(ctx).container_id == 1

    def test_ignores_other_os(self):
        spec = make_spec(name="f", image=make_image("f", os_name="alpine"))
        other = make_container(1, image=make_image("o", os_name="debian"))
        ctx = make_ctx(make_invocation(spec), idle_containers=[other])
        assert AlwaysAdoptScheduler().decide(ctx).is_cold

    def test_picks_cheapest_delta(self):
        spec = make_spec(
            name="f", image=make_image("f", runtime_names=("flask", "numpy"))
        )
        far = make_container(1, image=make_image("far", lang_name="nodejs"))
        near = make_container(2, image=make_image("near",
                                                  runtime_names=("flask",)))
        ctx = make_ctx(make_invocation(spec), idle_containers=[far, near])
        assert AlwaysAdoptScheduler().decide(ctx).container_id == 2

    def test_cold_when_empty(self):
        ctx = make_ctx(make_invocation(make_spec()))
        assert AlwaysAdoptScheduler().decide(ctx).is_cold
