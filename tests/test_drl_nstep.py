"""Tests for n-step return support in replay and DQN targets."""

import numpy as np
import pytest

from repro.drl.dqn import DQNAgent, DQNConfig
from repro.drl.network import MLPQNetwork
from repro.drl.replay import ReplayBuffer, Transition


def agent_with(gamma=0.5, n=3):
    return DQNAgent(
        network_factory=lambda: MLPQNetwork(3, 2, 2, np.random.default_rng(1),
                                            hidden=16),
        config=DQNConfig(batch_size=8, buffer_capacity=64, gamma=gamma,
                         lr=3e-3, target_sync_every=10),
        rng=np.random.default_rng(2),
    )


class TestReplayNStep:
    def test_n_steps_stored_and_sampled(self):
        buf = ReplayBuffer(8, 4, 3)
        buf.add(Transition(np.zeros(4), 0, 1.0, np.zeros(4),
                           np.ones(3, dtype=bool), False, n_steps=5))
        batch = buf.sample(4, np.random.default_rng(0))
        assert (batch["n_steps"] == 5).all()

    def test_default_is_one_step(self):
        buf = ReplayBuffer(8, 4, 3)
        buf.add(Transition(np.zeros(4), 0, 1.0, np.zeros(4),
                           np.ones(3, dtype=bool), False))
        batch = buf.sample(2, np.random.default_rng(0))
        assert (batch["n_steps"] == 1).all()

    def test_invalid_n_steps_rejected(self):
        buf = ReplayBuffer(8, 4, 3)
        with pytest.raises(ValueError):
            buf.add(Transition(np.zeros(4), 0, 1.0, np.zeros(4),
                               np.ones(3, dtype=bool), False, n_steps=0))


class TestNStepTargets:
    def test_bootstrap_discount_scales_with_n(self):
        """Fixed-point check: with n-step reward R and gamma^n bootstrap,
        a constant MDP converges to R / (1 - gamma^n)."""
        gamma, n, reward = 0.5, 2, 1.5
        agent = agent_with(gamma=gamma)
        state = np.ones(agent.online.state_dim)
        mask = np.ones(agent.action_dim, dtype=bool)
        for _ in range(32):
            agent.remember(Transition(state, 0, reward, state, mask, False,
                                      n_steps=n))
        for _ in range(500):
            agent.train_step()
        expected = reward / (1 - gamma**n)
        assert agent.q_values(state)[0] == pytest.approx(expected, rel=0.15)


class TestTrainerNStepAccumulation:
    def test_trainer_emits_one_transition_per_decision(self):
        from repro.cluster.simulator import SimulationConfig
        from repro.core.config import MLCRConfig
        from repro.core.env import SchedulingEnv
        from repro.core.state import StateEncoder
        from repro.core.trainer import MLCRTrainer
        from test_core_env_trainer import tiny_workload

        env = SchedulingEnv(
            lambda ep: tiny_workload(0, n=10),
            SimulationConfig(pool_capacity_mb=10_000.0),
            StateEncoder(n_slots=4),
        )
        cfg = MLCRConfig(
            n_slots=4, model_dim=8, head_hidden=8, n_episodes=1,
            demo_episodes=0, eval_every=0, n_step=3,
            epsilon_decay_steps=50,
            dqn=DQNConfig(batch_size=4, buffer_capacity=256,
                          target_sync_every=10),
        )
        trainer = MLCRTrainer(env, cfg)
        trainer.train()
        assert len(trainer.agent.buffer) == 10

    def test_discounted_reward_accumulation(self):
        """The emitted n-step reward equals sum(gamma^i * r_i)."""
        from repro.cluster.simulator import SimulationConfig
        from repro.core.config import MLCRConfig
        from repro.core.env import SchedulingEnv
        from repro.core.state import StateEncoder
        from repro.core.trainer import MLCRTrainer
        from test_core_env_trainer import tiny_workload

        env = SchedulingEnv(
            lambda ep: tiny_workload(0, n=6),
            SimulationConfig(pool_capacity_mb=10_000.0),
            StateEncoder(n_slots=4),
        )
        gamma = 0.9
        cfg = MLCRConfig(
            n_slots=4, model_dim=8, head_hidden=8, n_episodes=1,
            demo_episodes=0, eval_every=0, n_step=2, epsilon_start=0.0,
            epsilon_end=0.0, epsilon_decay_steps=1,
            dqn=DQNConfig(batch_size=4, buffer_capacity=256, gamma=gamma,
                          target_sync_every=1000),
        )
        trainer = MLCRTrainer(env, cfg)
        rewards = []
        original = trainer.agent.remember

        def spy(transition):
            rewards.append((transition.reward, transition.n_steps))
            original(transition)

        trainer.agent.remember = spy
        trainer.train()
        # 6 decisions -> 6 transitions; the non-terminal ones span 2 steps.
        assert len(rewards) == 6
        assert {n for _, n in rewards[:-1]} <= {1, 2}
