"""Tests for workload trace serialization."""

import json

import numpy as np
import pytest

from repro.workloads.fstartbench import hi_sim_workload, overall_workload
from repro.workloads.serialization import (
    TraceFormatError,
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


class TestRoundtrip:
    @pytest.mark.parametrize("builder", [hi_sim_workload, overall_workload])
    def test_roundtrip_preserves_everything(self, builder, tmp_path):
        original = builder(seed=3)
        path = save_workload(original, tmp_path / "trace.json")
        loaded = load_workload(path)

        assert loaded.name == original.name
        assert len(loaded) == len(original)
        np.testing.assert_allclose(loaded.arrival_times(),
                                   original.arrival_times())
        for a, b in zip(original, loaded):
            assert a.spec.name == b.spec.name
            assert a.execution_time_s == pytest.approx(b.execution_time_s)
            assert a.spec.image.packages == b.spec.image.packages

    def test_metadata_preserved(self, tmp_path):
        original = hi_sim_workload(seed=0)
        loaded = load_workload(save_workload(original, tmp_path / "t.json"))
        assert loaded.metadata["similarity"] == pytest.approx(
            original.metadata["similarity"]
        )

    def test_simulation_equivalence(self, tmp_path):
        """A replayed trace produces identical simulation results."""
        from repro.experiments.common import evaluate_scheduler
        from repro.schedulers.greedy import GreedyMatchScheduler

        original = hi_sim_workload(seed=1, n=60)
        loaded = load_workload(save_workload(original, tmp_path / "t.json"))
        a = evaluate_scheduler(GreedyMatchScheduler(), original, 2048.0, "x")
        b = evaluate_scheduler(GreedyMatchScheduler(), loaded, 2048.0, "x")
        assert a.total_startup_s == pytest.approx(b.total_startup_s)
        assert a.cold_starts == b.cold_starts


class TestErrors:
    def test_bad_version(self):
        data = workload_to_dict(hi_sim_workload(seed=0, n=10))
        data["format_version"] = 42
        with pytest.raises(TraceFormatError):
            workload_from_dict(data)

    def test_unknown_package(self):
        data = workload_to_dict(hi_sim_workload(seed=0, n=10))
        data["functions"][0]["packages"].append("leftpad==1.0")
        with pytest.raises(TraceFormatError):
            workload_from_dict(data)

    def test_missing_field(self):
        data = workload_to_dict(hi_sim_workload(seed=0, n=10))
        del data["invocations"][0]["arrival"]
        with pytest.raises(TraceFormatError):
            workload_from_dict(data)

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError):
            load_workload(path)

    def test_file_is_valid_json(self, tmp_path):
        path = save_workload(hi_sim_workload(seed=0, n=10), tmp_path / "t.json")
        json.loads(path.read_text())  # does not raise
