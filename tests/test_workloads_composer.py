"""Tests for the workload composition DSL."""

import numpy as np
import pytest

from repro.workloads.composer import (
    ConstantEnvelope,
    DiurnalEnvelope,
    RampEnvelope,
    StepEnvelope,
    WorkloadComposer,
)
from repro.workloads.functions import function_by_id


class TestEnvelopes:
    def test_constant(self):
        env = ConstantEnvelope(2.0)
        assert env.rate(0.0) == env.rate(100.0) == 2.0
        assert env.peak_rate == 2.0

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantEnvelope(0.0)

    def test_diurnal_oscillates_around_base(self):
        env = DiurnalEnvelope(base_rate=1.0, amplitude=0.5, period_s=100.0)
        rates = [env.rate(t) for t in np.linspace(0, 100, 200)]
        assert min(rates) >= 0.5 - 1e-9
        assert max(rates) <= env.peak_rate + 1e-9
        assert np.mean(rates) == pytest.approx(1.0, abs=0.05)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalEnvelope(base_rate=1.0, amplitude=1.5)

    def test_ramp(self):
        env = RampEnvelope(0.0, 2.0, duration_s=10.0)
        assert env.rate(0.0) == 0.0
        assert env.rate(5.0) == pytest.approx(1.0)
        assert env.rate(100.0) == 2.0  # clamped past the end
        assert env.peak_rate == 2.0

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            RampEnvelope(0.0, 0.0, 10.0)

    def test_steps(self):
        env = StepEnvelope(((10.0, 1.0), (20.0, 3.0)))
        assert env.rate(5.0) == 1.0
        assert env.rate(15.0) == 3.0
        assert env.rate(99.0) == 3.0
        assert env.peak_rate == 3.0

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            StepEnvelope(())
        with pytest.raises(ValueError):
            StepEnvelope(((20.0, 1.0), (10.0, 2.0)))  # unsorted
        with pytest.raises(ValueError):
            StepEnvelope(((10.0, 0.0),))  # no positive rate


class TestComposer:
    def _composer(self):
        return (
            WorkloadComposer("custom")
            .add_function(function_by_id(5), weight=3.0)
            .add_function(function_by_id(13), weight=1.0)
            .with_envelope(ConstantEnvelope(1.0))
            .with_invocations(200)
        )

    def test_builds_requested_count(self):
        wl = self._composer().build(seed=0)
        assert len(wl) == 200
        assert wl.name == "custom"

    def test_weights_respected(self):
        wl = self._composer().build(seed=0)
        counts = wl.invocation_counts()
        ratio = counts["hello-python-debian"] / counts["ml-inference"]
        assert 2.0 < ratio < 4.5  # 3:1 weights, binomial noise

    def test_deterministic(self):
        a = self._composer().build(seed=7).arrival_times()
        b = self._composer().build(seed=7).arrival_times()
        np.testing.assert_array_equal(a, b)

    def test_metadata(self):
        wl = self._composer().build(seed=0)
        assert "similarity" in wl.metadata

    def test_constant_rate_matches_envelope(self):
        wl = (WorkloadComposer("r")
              .add_function(function_by_id(5))
              .with_envelope(ConstantEnvelope(2.0))
              .with_invocations(3000)
              .build(seed=0))
        rate = len(wl) / wl.duration_s
        assert rate == pytest.approx(2.0, rel=0.1)

    def test_diurnal_concentrates_in_high_phase(self):
        """More arrivals land in the high half of the sinusoid."""
        period = 100.0
        wl = (WorkloadComposer("d")
              .add_function(function_by_id(5))
              .with_envelope(DiurnalEnvelope(base_rate=1.0, amplitude=0.9,
                                             period_s=period))
              .with_invocations(2000)
              .build(seed=0))
        phases = (wl.arrival_times() % period) / period
        high = int(((phases > 0.0) & (phases < 0.5)).sum())  # sin > 0 half
        low = len(wl) - high
        assert high > 1.5 * low

    def test_validation_chain(self):
        with pytest.raises(ValueError):
            WorkloadComposer("")
        with pytest.raises(ValueError):
            WorkloadComposer("x").build()
        with pytest.raises(ValueError):
            WorkloadComposer("x").add_function(function_by_id(5), weight=0.0)
        composer = WorkloadComposer("x").add_function(function_by_id(5))
        with pytest.raises(ValueError):
            composer.build()  # no envelope
        composer.with_envelope(ConstantEnvelope(1.0))
        with pytest.raises(ValueError):
            composer.build()  # no budget
        with pytest.raises(ValueError):
            composer.with_invocations(0)

    def test_runs_through_simulator(self):
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from repro.schedulers.greedy import GreedyMatchScheduler

        wl = self._composer().build(seed=1)
        scheduler = GreedyMatchScheduler()
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=2048.0),
                               scheduler.make_eviction_policy())
        t = sim.run(wl, scheduler).telemetry
        assert t.n_invocations == 200
