"""Tests for the telemetry collector."""

import numpy as np
import pytest

from repro.cluster.telemetry import InvocationRecord, Telemetry
from repro.containers.costmodel import StartupBreakdown
from repro.containers.matching import MatchLevel


def record(i, latency=1.0, cold=True, name="f", arrival=None,
           match=MatchLevel.NO_MATCH):
    return InvocationRecord(
        invocation_id=i,
        function_name=name,
        arrival_time=float(i) if arrival is None else arrival,
        container_id=i,
        cold_start=cold,
        match=match,
        startup_latency_s=latency,
        breakdown=StartupBreakdown(create_s=latency),
        execution_time_s=0.5,
    )


@pytest.fixture
def telemetry():
    t = Telemetry()
    t.record_invocation(record(0, 2.0, cold=True, name="a"))
    t.record_invocation(record(1, 0.5, cold=False, name="a",
                               match=MatchLevel.L3))
    t.record_invocation(record(2, 1.5, cold=True, name="b"))
    return t


class TestAggregates:
    def test_counts(self, telemetry):
        assert telemetry.n_invocations == 3
        assert telemetry.cold_starts == 2
        assert telemetry.warm_starts == 1

    def test_total_and_mean(self, telemetry):
        assert telemetry.total_startup_latency_s == pytest.approx(4.0)
        assert telemetry.mean_startup_latency_s == pytest.approx(4.0 / 3)

    def test_empty_telemetry(self):
        t = Telemetry()
        assert t.mean_startup_latency_s == 0.0
        assert t.summary()["invocations"] == 0.0

    def test_cumulative_series(self, telemetry):
        np.testing.assert_allclose(
            telemetry.cumulative_latency(), [2.0, 2.5, 4.0]
        )
        np.testing.assert_array_equal(
            telemetry.cumulative_cold_starts(), [1, 1, 2]
        )

    def test_match_histogram(self, telemetry):
        hist = telemetry.match_histogram()
        assert hist[MatchLevel.NO_MATCH] == 2
        assert hist[MatchLevel.L3] == 1
        assert hist[MatchLevel.L1] == 0

    def test_per_function_mean(self, telemetry):
        means = telemetry.per_function_mean_latency()
        assert means["a"] == pytest.approx(1.25)
        assert means["b"] == pytest.approx(1.5)

    def test_summary_keys(self, telemetry):
        s = telemetry.summary()
        for key in ("total_startup_s", "mean_startup_s", "cold_starts",
                    "evictions", "peak_warm_memory_mb"):
            assert key in s


class TestMemoryTracking:
    def test_peak_warm(self):
        t = Telemetry()
        t.sample_memory(0.0, 100.0)
        t.sample_memory(1.0, 300.0)
        t.sample_memory(2.0, 50.0)
        assert t.peak_warm_memory_mb == 300.0
        assert len(t.memory_timeline) == 3

    def test_peak_live(self):
        t = Telemetry()
        t.sample_live_memory(500.0)
        t.sample_live_memory(200.0)
        assert t.peak_live_memory_mb == 500.0


class TestEvents:
    def test_eviction_and_rejection_counters(self):
        t = Telemetry()
        t.record_eviction()
        t.record_eviction(2)
        t.record_rejection()
        t.record_ttl_expiration(3)
        assert t.evictions == 3
        assert t.keep_alive_rejections == 1
        assert t.ttl_expirations == 3

    def test_finish_time(self):
        r = record(0, latency=2.0, arrival=10.0)
        assert r.finish_time == pytest.approx(12.5)
