"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "Overall"
        assert args.scheduler == "all"
        assert args.pool == "tight"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("LO-Sim", "HI-Sim", "Peak", "Overall"):
            assert name in out

    def test_simulate_single_scheduler(self, capsys):
        assert main([
            "simulate", "--workload", "HI-Sim", "--scheduler", "greedy",
            "--pool", "tight",
        ]) == 0
        out = capsys.readouterr().out
        assert "Greedy-Match" in out
        assert "cold" in out

    def test_simulate_all(self, capsys):
        assert main(["simulate", "--workload", "HI-Sim"]) == 0
        out = capsys.readouterr().out
        for name in ("LRU", "FaasCache", "KeepAlive", "Greedy-Match"):
            assert name in out

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Policy 1" in out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "ubuntu" in capsys.readouterr().out

    def test_simulate_proactive_scheduler(self, capsys):
        assert main([
            "simulate", "--workload", "LO-Sim", "--scheduler", "mpc",
            "--pool", "tight",
        ]) == 0
        out = capsys.readouterr().out
        assert "MPC-Prewarm" in out

    def test_train_offline_writes_policy(self, tmp_path, capsys):
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from repro.drl.offline import OfflineQPolicy, trace_lines_from_result
        from repro.schedulers.greedy import GreedyMatchScheduler
        from repro.workloads.fstartbench import build_workload

        workload = build_workload("LO-Sim", seed=0)
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=2000.0))
        result = sim.run(workload, GreedyMatchScheduler())
        trace = tmp_path / "greedy.jsonl"
        trace.write_text("\n".join(trace_lines_from_result(result)) + "\n")

        out_file = tmp_path / "q.npz"
        assert main([
            "train-offline", str(trace), "--output", str(out_file),
            "--evaluate", "LO-Sim",
        ]) == 0
        out = capsys.readouterr().out
        assert out_file.exists()
        assert "fitted" in out and "evaluation on LO-Sim" in out
        policy = OfflineQPolicy.load(out_file)
        assert policy.n_transitions == len(workload)

    def test_train_offline_empty_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text('{"version": 1}\n')
        assert main(["train-offline", str(trace),
                     "--output", str(tmp_path / "q.npz")]) == 1

    def test_train_writes_policy(self, tmp_path, capsys, monkeypatch):
        # Keep it minimal: 1-episode training on the smallest workload.
        out_file = tmp_path / "p.npz"
        assert main([
            "train", "--workload", "HI-Sim", "--episodes", "1",
            "--output", str(out_file),
        ]) == 0
        assert out_file.exists()
        from repro.core.persistence import load_scheduler

        scheduler = load_scheduler(out_file)
        assert scheduler.name == "MLCR"
