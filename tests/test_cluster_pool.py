"""Tests for the fixed-capacity warm pool."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.pool import PoolFullError, WarmPool
from repro.containers.container import ContainerState

from conftest import make_container, make_image


def small_container(cid, mem=100.0, last_used=0.0):
    image = make_image(f"img{cid}")
    object.__setattr__(image, "memory_mb", mem)
    return make_container(cid, image=image, last_used_at=last_used)


class TestCapacity:
    def test_add_within_capacity(self):
        pool = WarmPool(250.0)
        pool.add(small_container(1))
        pool.add(small_container(2))
        assert pool.used_mb == pytest.approx(200.0)
        assert pool.free_mb == pytest.approx(50.0)

    def test_add_beyond_capacity_raises(self):
        pool = WarmPool(150.0)
        pool.add(small_container(1))
        with pytest.raises(PoolFullError):
            pool.add(small_container(2))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WarmPool(-1.0)

    def test_infinite_capacity(self):
        pool = WarmPool(float("inf"))
        for i in range(20):
            pool.add(small_container(i))
        assert len(pool) == 20

    def test_peak_tracking(self):
        pool = WarmPool(1000.0)
        pool.add(small_container(1))
        pool.add(small_container(2))
        pool.remove(1)
        assert pool.peak_used_mb == pytest.approx(200.0)

    def test_fits(self):
        pool = WarmPool(150.0)
        pool.add(small_container(1))
        assert not pool.fits(small_container(2))
        assert pool.fits(small_container(3, mem=50.0))


class TestMembership:
    def test_only_idle_containers(self):
        pool = WarmPool(1000.0)
        busy = small_container(1)
        busy.state = ContainerState.BUSY
        with pytest.raises(ValueError):
            pool.add(busy)

    def test_duplicate_rejected(self):
        pool = WarmPool(1000.0)
        c = small_container(1)
        pool.add(c)
        c2 = small_container(1)
        with pytest.raises(ValueError):
            pool.add(c2)

    def test_remove_returns_container(self):
        pool = WarmPool(1000.0)
        c = small_container(1)
        pool.add(c)
        assert pool.remove(1) is c
        assert 1 not in pool

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            WarmPool(100.0).remove(42)

    def test_get(self):
        pool = WarmPool(1000.0)
        c = small_container(1)
        pool.add(c)
        assert pool.get(1) is c
        assert pool.get(2) is None


class TestLRUOrdering:
    def test_insertion_order_is_lru_order(self):
        pool = WarmPool(1000.0)
        for i in range(3):
            pool.add(small_container(i))
        assert [c.container_id for c in pool.lru_order()] == [0, 1, 2]

    def test_touch_moves_to_mru(self):
        pool = WarmPool(1000.0)
        for i in range(3):
            pool.add(small_container(i))
        pool.touch(0)
        assert [c.container_id for c in pool.lru_order()] == [1, 2, 0]

    def test_touch_unknown_raises(self):
        with pytest.raises(KeyError):
            WarmPool(100.0).touch(9)

    def test_iteration_matches_lru(self):
        pool = WarmPool(1000.0)
        for i in range(4):
            pool.add(small_container(i))
        assert [c.container_id for c in pool] == [0, 1, 2, 3]


# -- property: capacity invariant under arbitrary add/remove sequences --------

@given(st.lists(
    st.tuples(st.sampled_from(["add", "remove"]),
              st.integers(min_value=0, max_value=9),
              st.floats(min_value=1.0, max_value=400.0, allow_nan=False)),
    max_size=60,
))
def test_capacity_never_exceeded(ops):
    pool = WarmPool(500.0)
    live = {}
    for op, cid, mem in ops:
        if op == "add" and cid not in live:
            c = small_container(cid, mem=mem)
            try:
                pool.add(c)
                live[cid] = c
            except PoolFullError:
                pass
        elif op == "remove" and cid in live:
            pool.remove(cid)
            del live[cid]
        assert pool.used_mb <= pool.capacity_mb + 1e-9
        assert pool.used_mb == pytest.approx(
            sum(c.memory_mb for c in live.values())
        )
