"""Meta-test: every public item in the library carries a docstring.

"Documented public API" is a deliverable, so it is enforced: all public
modules, classes, functions and methods under ``repro`` must have non-empty
docstrings.  Private names (leading underscore) and dunder members other
than ``__init__``-bearing classes are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        # Only check items defined in this module (not re-exports).
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    # Property getters and tiny dataclass helpers included:
                    # everything public is documented.
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
