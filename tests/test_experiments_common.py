"""Tests for shared experiment infrastructure (fast pieces only)."""

import pytest

from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    loose_capacity,
    make_baselines,
    make_training_factory,
    pool_sizes,
)
from repro.core.trainer import EVAL_EPISODE_BASE
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.workloads.fstartbench import overall_workload


class TestScale:
    def test_from_env_default_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        scale = ExperimentScale.from_env()
        assert scale.repeats == 3

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        scale = ExperimentScale.from_env()
        assert scale.repeats > 3
        assert scale.train_episodes > 12

    def test_mlcr_config_valid(self):
        cfg = ExperimentScale.from_env().mlcr_config()
        assert cfg.n_slots >= 4


class TestPoolSizing:
    @pytest.fixture(scope="class")
    def workload(self):
        return overall_workload(seed=0)

    def test_levels_ordered(self, workload):
        sizes = pool_sizes(workload)
        assert sizes["Tight"] < sizes["Moderate"] < sizes["Loose"]
        assert sizes["Tight"] == pytest.approx(0.2 * sizes["Loose"])

    def test_loose_is_positive_and_finite(self, workload):
        loose = loose_capacity(workload)
        assert 0 < loose < float("inf")


class TestEvaluate:
    def test_evaluate_scheduler_summary(self):
        wl = overall_workload(seed=0)
        res = evaluate_scheduler(GreedyMatchScheduler(), wl, 4096.0, "x")
        assert res.method == "Greedy-Match"
        assert res.total_startup_s > 0
        assert res.cold_starts >= 1
        assert res.pool_label == "x"

    def test_make_baselines_names(self):
        names = [s.name for s in make_baselines()]
        assert names == ["LRU", "FaasCache", "KeepAlive", "Greedy-Match"]


class TestTrainingFactory:
    def test_eval_indices_map_to_held_out_seeds(self):
        seen = []
        factory = make_training_factory(
            lambda s: seen.append(s) or overall_workload(seed=s),
            ExperimentScale.from_env(),
        )
        factory(0)
        factory(EVAL_EPISODE_BASE)
        train_seed, eval_seed = seen
        assert train_seed != eval_seed
        assert eval_seed >= 1500
