"""Tests for the seven FStartBench workload sets."""

import numpy as np
import pytest

from repro.workloads.fstartbench import (
    ARRIVAL_TYPES,
    HI_SIM_TYPES,
    LO_SIM_TYPES,
    WORKLOAD_BUILDERS,
    build_workload,
    hi_sim_workload,
    hi_var_workload,
    lo_sim_workload,
    lo_var_workload,
    overall_workload,
    peak_workload,
    random_workload,
    uniform_workload,
)
from repro.workloads.metrics import workload_similarity, workload_size_variance


class TestSimilarityWorkloads:
    def test_sizes(self):
        assert len(lo_sim_workload()) == 300
        assert len(hi_sim_workload()) == 300

    def test_similarity_ordering(self):
        """The defining property: HI-Sim is more similar than LO-Sim."""
        lo = workload_similarity(lo_sim_workload())
        hi = workload_similarity(hi_sim_workload())
        assert hi > lo
        # Calibration near the paper's 0.29 / 0.52.
        assert 0.05 <= lo <= 0.35
        assert 0.30 <= hi <= 0.60

    def test_type_composition(self):
        lo = lo_sim_workload()
        ids = {s.func_id for s in lo.function_specs()}
        assert ids == set(LO_SIM_TYPES)
        hi = hi_sim_workload()
        assert {s.func_id for s in hi.function_specs()} == set(HI_SIM_TYPES)

    def test_metadata_populated(self):
        wl = lo_sim_workload()
        assert "similarity" in wl.metadata
        assert wl.metadata["similarity"] == pytest.approx(
            workload_similarity(wl)
        )


class TestVarianceWorkloads:
    def test_variance_ordering(self):
        """The defining property: HI-Var has higher size variance."""
        lo = workload_size_variance(lo_var_workload())
        hi = workload_size_variance(hi_var_workload())
        assert hi > lo

    def test_sizes(self):
        assert len(lo_var_workload()) == 300
        assert len(hi_var_workload()) == 300


class TestArrivalWorkloads:
    def test_uniform_six_minutes(self):
        wl = uniform_workload()
        assert len(wl) == 300
        assert wl.duration_s <= 360.0

    def test_peak_composition(self):
        wl = peak_workload()
        assert len(wl) == 300
        times = wl.arrival_times()
        first_minute = int((times < 60).sum())
        second_minute = int(((times >= 60) & (times < 120)).sum())
        assert first_minute == 80 and second_minute == 20

    def test_random_within_window(self):
        wl = random_workload()
        assert len(wl) == 300
        assert wl.arrival_times().max() <= 360.0

    def test_arrival_types(self):
        for wl in (uniform_workload(), peak_workload(), random_workload()):
            assert {s.func_id for s in wl.function_specs()} == set(ARRIVAL_TYPES)

    def test_peak_bursty_vs_uniform(self):
        """Peak has higher interarrival variance than Uniform."""
        peak_var = np.var(peak_workload().interarrival_times())
        uni_var = np.var(uniform_workload().interarrival_times())
        assert peak_var > uni_var


class TestOverall:
    def test_400_invocations_13_types(self):
        wl = overall_workload(seed=0)
        assert len(wl) == 400
        assert len(wl.function_specs()) == 13

    def test_ids_match_arrival_order(self):
        wl = overall_workload(seed=1)
        assert [i.invocation_id for i in wl] == list(range(400))

    def test_different_seeds_differ(self):
        a = overall_workload(seed=0).arrival_times()
        b = overall_workload(seed=1).arrival_times()
        assert not np.array_equal(a, b)

    def test_same_seed_reproducible(self):
        a = overall_workload(seed=5).arrival_times()
        b = overall_workload(seed=5).arrival_times()
        np.testing.assert_array_equal(a, b)


class TestBuilderRegistry:
    def test_all_builders_produce_workloads(self):
        for name in WORKLOAD_BUILDERS:
            wl = build_workload(name, seed=0)
            assert len(wl) > 0
            assert wl.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_workload("NOPE")
