"""Property-based tests: streaming replay equivalences and sketch bounds.

The streaming pipeline's correctness story is *equivalence*: a lazy
:class:`InvocationStream` must be indistinguishable from the workload it
replaces, and ``run_stream`` must be indistinguishable from ``run``.
These properties pin that story under randomized inputs:

* heap-merged arrival streams are globally ordered with the documented
  ``(arrival_time, function_index)`` tie-break and sequential ids;
* an out-of-order per-function source is rejected, never silently merged;
* ``AzureTraceGenerator.stream`` yields exactly ``generate``'s
  invocations, for any (seed, shape);
* ``run_stream`` over a workload's stream view reproduces ``run``
  byte-for-byte (summary and all invocation columns);
* :class:`QuantileSketch` estimates stay within the configured relative
  accuracy, and :class:`BoundedTelemetry` matches the exact telemetry on
  every non-percentile summary cell.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.cluster.sketches import QuantileSketch
from repro.cluster.telemetry import BoundedTelemetry, Telemetry
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.keepalive import KeepAliveScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator
from repro.workloads.functions import function_by_id
from repro.workloads.stream import (
    merge_function_arrivals,
    stream_from_workload,
)
from repro.workloads.workload import Invocation, Workload

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

# Per-function arrival lists: sorted non-negative times with exec times.
arrival_list = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    ),
    min_size=0, max_size=25,
).map(lambda pairs: sorted(pairs, key=lambda p: p[0]))

arrival_lists = st.lists(arrival_list, min_size=1, max_size=6)

invocation_strategy = st.tuples(
    st.sampled_from([1, 2, 4, 5, 6, 10, 11]),
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
)

workload_strategy = st.lists(invocation_strategy, min_size=1, max_size=40)

scheduler_strategy = st.sampled_from([
    LRUScheduler, GreedyMatchScheduler, KeepAliveScheduler,
])


def build_workload(items) -> Workload:
    ordered = sorted(items, key=lambda item: item[1])
    return Workload.from_invocations("prop", [
        Invocation(
            invocation_id=i,
            spec=function_by_id(fid),
            arrival_time=t,
            execution_time_s=e,
        )
        for i, (fid, t, e) in enumerate(ordered)
    ])


def _specs(n: int):
    return [function_by_id(1 + (i % 11) or 1) for i in range(n)]


# ---------------------------------------------------------------------------
# Heap-merge ordering
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(lists=arrival_lists)
def test_merge_is_ordered_with_function_tiebreak(lists):
    specs = _specs(len(lists))
    spec_index = {id(spec): i for i, spec in enumerate(specs)}
    merged = list(merge_function_arrivals(
        specs, [iter(pairs) for pairs in lists]
    ))

    assert len(merged) == sum(len(pairs) for pairs in lists)
    assert [inv.invocation_id for inv in merged] == list(range(len(merged)))
    keys = [(inv.arrival_time, spec_index[id(inv.spec)]) for inv in merged]
    assert keys == sorted(keys), "merge violated (time, func_idx) order"
    # The merge is a permutation-free interleave: each function's own
    # pairs come back intact and in order.
    for idx, pairs in enumerate(lists):
        mine = [(inv.arrival_time, inv.execution_time_s)
                for inv in merged if spec_index[id(inv.spec)] == idx]
        assert mine == [(t, e) for t, e in pairs]


@settings(max_examples=30, deadline=None)
@given(lists=arrival_lists.filter(
    lambda ls: any(len(pairs) >= 2 for pairs in ls)
))
def test_merge_rejects_out_of_order_source(lists):
    # Corrupt the first multi-arrival source: swap its last pair to the
    # front with an earlier-than-possible time, yielded *after* a later one.
    bad_idx = next(i for i, pairs in enumerate(lists) if len(pairs) >= 2)
    pairs = list(lists[bad_idx])
    corrupted = [pairs[-1], (pairs[-1][0] - 1.0, pairs[0][1])]
    sources = [
        iter(corrupted if i == bad_idx else p) for i, p in enumerate(lists)
    ]
    try:
        list(merge_function_arrivals(_specs(len(lists)), sources))
    except ValueError:
        return
    raise AssertionError("out-of-order source was merged silently")


# ---------------------------------------------------------------------------
# Azure stream == Azure generate
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_functions=st.integers(min_value=1, max_value=40),
    n_invocations=st.integers(min_value=1, max_value=600),
)
def test_azure_stream_matches_generate(seed, n_functions, n_invocations):
    # AzureTraceConfig requires at least one invocation per function.
    assume(n_invocations >= n_functions)
    gen = AzureTraceGenerator(AzureTraceConfig(
        n_functions=n_functions,
        n_invocations=n_invocations,
        duration_s=60.0,
    ))
    materialized = gen.generate(seed=seed)
    streamed = list(gen.stream(seed=seed))
    assert len(streamed) == len(materialized)
    for lazy, eager in zip(streamed, materialized):
        assert lazy == eager


# ---------------------------------------------------------------------------
# run_stream == run
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(items=workload_strategy, scheduler_cls=scheduler_strategy,
       capacity=st.sampled_from([300.0, 800.0, 2000.0, float("inf")]))
def test_run_stream_equals_run(items, scheduler_cls, capacity):
    workload = build_workload(items)

    def run_one(stream_mode: bool):
        scheduler = scheduler_cls()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=capacity),
            scheduler.make_eviction_policy(),
        )
        if stream_mode:
            return sim.run_stream(stream_from_workload(workload), scheduler)
        return sim.run(workload, scheduler)

    batch = run_one(False)
    stream = run_one(True)
    assert stream.summary() == batch.summary()
    batch_cols = batch.telemetry.invocation_columns()
    stream_cols = stream.telemetry.invocation_columns()
    for field in batch_cols._fields:
        assert list(getattr(stream_cols, field)) == \
            list(getattr(batch_cols, field)), field


# ---------------------------------------------------------------------------
# Sketch accuracy and bounded telemetry parity
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=300,
    ),
    q=st.floats(min_value=0.0, max_value=1.0),
    accuracy=st.sampled_from([0.01, 0.02, 0.05]),
)
def test_sketch_quantiles_within_relative_accuracy(values, q, accuracy):
    sketch = QuantileSketch(relative_accuracy=accuracy)
    for v in values:
        sketch.insert(v)
    ordered = sorted(values)
    exact = ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]
    estimate = sketch.quantile(q)
    # DDSketch guarantee: relative error <= accuracy on the value the rank
    # lands on; rounding the rank can shift to a neighbor, so accept being
    # within accuracy of either neighboring order statistic.
    lo_rank = max(0, int(math.floor(q * (len(ordered) - 1))) - 1)
    hi_rank = min(len(ordered) - 1, int(math.ceil(q * (len(ordered) - 1))) + 1)
    lo = ordered[lo_rank] * (1 - 2 * accuracy) - 1e-12
    hi = ordered[hi_rank] * (1 + 2 * accuracy) + 1e-12
    assert lo <= estimate <= hi, (estimate, exact, lo, hi)
    assert sketch.count == len(values)
    assert sketch.min == min(values)
    assert sketch.max == max(values)
    assert sketch.sum == sum(values)


@settings(max_examples=20, deadline=None)
@given(items=workload_strategy, scheduler_cls=scheduler_strategy)
def test_bounded_telemetry_matches_exact_summary(items, scheduler_cls):
    workload = build_workload(items)

    def run_one(bounded: bool):
        scheduler = scheduler_cls()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=1500.0,
                             bounded_telemetry=bounded),
            scheduler.make_eviction_policy(),
        )
        return sim.run(workload, scheduler)

    exact = run_one(False)
    bounded = run_one(True)
    assert isinstance(bounded.telemetry, BoundedTelemetry)
    assert isinstance(exact.telemetry, Telemetry)
    exact_summary = exact.summary()
    bounded_summary = bounded.summary()
    assert set(bounded_summary) == set(exact_summary)
    # The sketch estimates the order statistic at rank ``q * (n - 1)``
    # (DDSketch convention); exact telemetry interpolates between order
    # statistics (numpy), so bound the sketch against the *neighboring*
    # exact order statistics, each widened by the relative accuracy.
    lat = sorted(exact.telemetry.latencies())
    for key, q in (("p50_startup_s", 0.5), ("p95_startup_s", 0.95)):
        rank = q * (len(lat) - 1)
        lo = lat[math.floor(rank)] * 0.97 - 1e-12
        hi = lat[math.ceil(rank)] * 1.03 + 1e-12
        assert lo <= bounded_summary[key] <= hi, (key, lo, hi)
    for key, value in exact_summary.items():
        if key not in ("p50_startup_s", "p95_startup_s"):
            assert bounded_summary[key] == value, key
