"""Tests for the parallel experiment runner (repro.experiments.parallel)."""

import pytest

from repro.experiments.parallel import (
    BASELINE_KEYS,
    GRID_KEYS,
    GridResult,
    GridTask,
    SCHEDULER_FACTORIES,
    build_scheduler,
    default_grid,
    run_grid,
    run_task,
)


def small_tasks(schedulers=("lru", "greedy"), seeds=(0,)):
    """A tiny but multi-cell grid over the cheapest workload."""
    return [
        GridTask(scheduler=s, workload="LO-Sim", seed=seed,
                 pool_label="Tight", capacity_mb=800.0)
        for seed in seeds for s in schedulers
    ]


class TestRegistry:
    def test_baselines_subset_of_registry(self):
        assert set(BASELINE_KEYS) <= set(SCHEDULER_FACTORIES)

    def test_grid_keys_extend_baselines(self):
        assert set(BASELINE_KEYS) < set(GRID_KEYS)
        assert set(GRID_KEYS) <= set(SCHEDULER_FACTORIES)
        assert {"mpc", "lending", "offline"} <= set(GRID_KEYS)

    def test_build_scheduler(self):
        assert build_scheduler("greedy").name == "Greedy-Match"

    def test_build_scheduler_unknown(self):
        with pytest.raises(KeyError):
            build_scheduler("nope")


class TestRunGrid:
    def test_serial_matches_single_task(self):
        task = small_tasks(schedulers=("lru",))[0]
        cell = run_task(task)
        [via_grid] = run_grid([task], jobs=1)
        assert via_grid.summary == cell.summary
        assert via_grid.method == "LRU"
        assert via_grid.task == task

    def test_parallel_is_deterministic(self):
        """jobs=2 must reproduce the serial cells and report byte-for-byte."""
        tasks = small_tasks(seeds=(0, 1))
        serial = run_grid(tasks, jobs=1)
        fanned = run_grid(tasks, jobs=2)
        assert [c.task for c in fanned] == [c.task for c in serial]
        assert [c.summary for c in fanned] == [c.summary for c in serial]
        assert GridResult(fanned).report() == GridResult(serial).report()

    def test_oversubscribed_jobs_clamped(self):
        tasks = small_tasks(schedulers=("lru",))
        cells = run_grid(tasks, jobs=32)
        assert len(cells) == len(tasks)


class TestGridResult:
    def test_merged_means_over_seeds(self):
        tasks = small_tasks(schedulers=("lru",), seeds=(0, 1))
        result = GridResult(run_grid(tasks, jobs=1))
        [(key, metrics)] = result.merged()
        assert key == ("LO-Sim", "Tight", "LRU")
        assert metrics["n_seeds"] == 2.0
        expected = sum(c.summary["cold_starts"] for c in result.cells) / 2.0
        assert metrics["cold_starts"] == pytest.approx(expected)

    def test_report_lists_every_group(self):
        result = GridResult(run_grid(small_tasks(), jobs=1))
        text = result.report()
        assert "LRU" in text and "Greedy-Match" in text
        assert "Parallel baseline grid" in text


class TestDefaultGrid:
    def test_grid_shape_and_determinism(self):
        tasks = default_grid(workloads=("LO-Sim",), seeds=[0, 1],
                             pool_labels=("Tight", "Loose"))
        # workloads x pools x seeds x schedulers
        assert len(tasks) == 1 * 2 * 2 * len(GRID_KEYS)
        assert tasks == default_grid(workloads=("LO-Sim",), seeds=[0, 1],
                                     pool_labels=("Tight", "Loose"))
        labels = {t.pool_label for t in tasks}
        assert labels == {"Tight", "Loose"}
        tight = next(t for t in tasks if t.pool_label == "Tight")
        loose = next(t for t in tasks if t.pool_label == "Loose")
        assert tight.capacity_mb < loose.capacity_mb
