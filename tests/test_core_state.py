"""Tests for the DRL state encoder and action masking."""

import numpy as np
import pytest

from repro.containers.matching import MatchLevel
from repro.core.state import EncodedState, StateEncoder
from repro.schedulers.base import Decision

from conftest import make_container, make_ctx, make_image, make_invocation, make_spec


@pytest.fixture
def encoder():
    return StateEncoder(n_slots=4)


def ctx_with_containers(containers, **kw):
    spec = make_spec(name="f", image=make_image("f"))
    return make_ctx(make_invocation(spec), idle_containers=containers, **kw)


class TestDimensions:
    def test_state_dim_consistent(self, encoder):
        ctx = ctx_with_containers([])
        enc = encoder.encode(ctx)
        assert enc.state.shape == (encoder.state_dim,)
        assert enc.mask.shape == (encoder.action_dim,)
        assert encoder.state_dim == (
            encoder.global_dim + encoder.n_slots * encoder.slot_dim
        )

    def test_action_dim(self, encoder):
        assert encoder.action_dim == 5  # 4 slots + cold


class TestMask:
    def test_cold_always_valid(self, encoder):
        enc = encoder.encode(ctx_with_containers([]))
        assert enc.mask[-1]
        assert not enc.mask[:-1].any()

    def test_matching_container_valid(self, encoder):
        c = make_container(1)  # same default image -> L3
        enc = encoder.encode(ctx_with_containers([c]))
        assert enc.mask[0]
        assert enc.slot_containers[0] == 1
        assert enc.slot_matches[0] is MatchLevel.L3

    def test_no_match_container_masked(self, encoder):
        c = make_container(1, image=make_image("o", os_name="debian"))
        enc = encoder.encode(ctx_with_containers([c]))
        assert not enc.mask[0]
        assert enc.slot_containers[0] == 1  # visible but masked

    def test_slots_ranked_by_match_depth(self, encoder):
        c_l1 = make_container(1, image=make_image("x", lang_name="nodejs"))
        c_l3 = make_container(2)
        c_l2 = make_container(3, image=make_image("y",
                                                  runtime_names=("numpy",)))
        enc = encoder.encode(ctx_with_containers([c_l1, c_l3, c_l2]))
        assert enc.slot_matches[:3] == (
            MatchLevel.L3, MatchLevel.L2, MatchLevel.L1
        )
        assert enc.slot_containers[:3] == (2, 3, 1)

    def test_overflow_keeps_deepest(self, encoder):
        deep = make_container(99)
        shallow = [
            make_container(i, image=make_image(f"s{i}", lang_name="nodejs"))
            for i in range(10)
        ]
        enc = encoder.encode(ctx_with_containers(shallow + [deep]))
        assert enc.slot_containers[0] == 99


class TestDecisionFor:
    def test_cold_action(self, encoder):
        enc = encoder.encode(ctx_with_containers([]))
        assert enc.decision_for(encoder.n_slots) == Decision.cold()

    def test_warm_action(self, encoder):
        enc = encoder.encode(ctx_with_containers([make_container(7)]))
        assert enc.decision_for(0) == Decision.warm(7)

    def test_empty_slot_means_cold(self, encoder):
        """Paper: actions pointing beyond the pool mean cold start."""
        enc = encoder.encode(ctx_with_containers([]))
        assert enc.decision_for(2).is_cold

    def test_out_of_range_rejected(self, encoder):
        enc = encoder.encode(ctx_with_containers([]))
        with pytest.raises(ValueError):
            enc.decision_for(99)


class TestFeatures:
    def test_arrival_interval_tracked(self, encoder):
        encoder.reset()
        e1 = encoder.encode(ctx_with_containers([], now=0.0))
        e2 = encoder.encode(ctx_with_containers([], now=5.0))
        interval_idx = len(encoder.catalog.key_order()) + 3
        assert e1.state[interval_idx] == pytest.approx(0.0)
        assert e2.state[interval_idx] == pytest.approx(np.log1p(5.0))

    def test_reset_clears_interval(self, encoder):
        encoder.encode(ctx_with_containers([], now=0.0))
        encoder.reset()
        e = encoder.encode(ctx_with_containers([], now=100.0))
        interval_idx = len(encoder.catalog.key_order()) + 3
        assert e.state[interval_idx] == pytest.approx(0.0)

    def test_bag_of_packages_set(self, encoder):
        enc = encoder.encode(ctx_with_containers([]))
        n_keys = len(encoder.catalog.key_order())
        bag = enc.state[:n_keys]
        spec_packages = len(make_image("f").packages)
        assert bag.sum() == spec_packages

    def test_demand_accumulates(self, encoder):
        encoder.reset()
        image = make_image("f")
        demand_idx = len(encoder.catalog.key_order()) + 7
        e1 = encoder.encode(ctx_with_containers([]))
        assert e1.state[demand_idx] == pytest.approx(1.0)  # only arrival
        # Same function again: still the only stack seen.
        e2 = encoder.encode(ctx_with_containers([]))
        assert e2.state[demand_idx] == pytest.approx(1.0)

    def test_demand_splits_between_stacks(self):
        encoder = StateEncoder(n_slots=2)
        spec_a = make_spec(name="a", image=make_image("a"))
        spec_b = make_spec(
            name="b", image=make_image("b", runtime_names=("numpy",))
        )
        demand_idx = len(encoder.catalog.key_order()) + 7
        encoder.encode(make_ctx(make_invocation(spec_a)))
        enc = encoder.encode(make_ctx(make_invocation(spec_b)))
        assert 0.0 < enc.state[demand_idx] < 1.0

    def test_finite_features_always(self, encoder):
        containers = [
            make_container(i, image=make_image(f"c{i}"), last_used_at=0.0)
            for i in range(6)
        ]
        enc = encoder.encode(
            ctx_with_containers(containers, capacity_mb=float("inf"))
        )
        assert np.isfinite(enc.state).all()


class TestLoadFeatures:
    def test_disabled_by_default_and_dims_unchanged(self):
        plain = StateEncoder(n_slots=4)
        loaded = StateEncoder(n_slots=4, load_features=True)
        assert not plain.load_features
        assert loaded.global_dim == plain.global_dim + 6
        assert loaded.state_dim == plain.state_dim + 6

    def test_disabled_encoding_ignores_load_views(self):
        encoder = StateEncoder(n_slots=4)
        bare = encoder.encode(ctx_with_containers([]))
        encoder.reset()
        encoder._last_arrival = None
        loaded_ctx = ctx_with_containers([])
        import dataclasses
        loaded_ctx = dataclasses.replace(
            loaded_ctx, worker_loads=(3, 1), queue_depths=(2, 0)
        )
        with_views = encoder.encode(loaded_ctx)
        assert np.array_equal(bare.state, with_views.state)

    def test_enabled_appends_aggregate_scalars(self):
        encoder = StateEncoder(n_slots=4, load_features=True)
        ctx = ctx_with_containers([])
        import dataclasses
        ctx = dataclasses.replace(
            ctx, worker_loads=(2, 0, 4), queue_depths=(1, 0, 3)
        )
        enc = encoder.encode(ctx)
        tail = enc.state[encoder.global_dim - 6:encoder.global_dim]
        assert tail[0] == pytest.approx(np.log1p(2.0))       # mean load
        assert tail[1] == pytest.approx(np.log1p(4.0))       # max load
        assert tail[2] == pytest.approx(2.0 / 3.0)           # busy fraction
        assert tail[3] == pytest.approx(np.log1p(4.0 / 3.0)) # mean queue
        assert tail[4] == pytest.approx(np.log1p(3.0))       # max queue
        assert tail[5] == pytest.approx(np.log1p(4.0))       # total queued

    def test_empty_load_views_encode_as_zeros(self):
        encoder = StateEncoder(n_slots=4, load_features=True)
        enc = encoder.encode(ctx_with_containers([]))
        tail = enc.state[encoder.global_dim - 6:encoder.global_dim]
        assert np.array_equal(tail, np.zeros(6))

    def test_simulator_feeds_load_views_through_encoder(self):
        from repro.cluster.eviction import LRUEviction
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from repro.workloads.workload import Workload
        encoder = StateEncoder(n_slots=4, load_features=True)
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=4096.0, n_workers=2,
                             worker_concurrency=1),
            LRUEviction(),
        )
        spec = make_spec(name="fa", image=make_image("a"))
        sim.load(Workload.from_invocations("t", [
            make_invocation(spec, 0, arrival_time=0.0, execution_time_s=50.0),
            make_invocation(spec, 1, arrival_time=1.0, execution_time_s=50.0),
            make_invocation(spec, 2, arrival_time=2.0, execution_time_s=50.0),
        ]))
        states = []
        while (ctx := sim.next_decision_point()) is not None:
            states.append(encoder.encode(ctx))
            sim.apply_decision(Decision.cold())
        sim.finish()
        # By the third arrival both workers host a container and at least
        # one startup is queued, so the load tail must be non-zero.
        tail = states[-1].state[encoder.global_dim - 6:encoder.global_dim]
        assert tail.sum() > 0
