"""Tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.stats import box_stats
from repro.analysis.svgplot import (
    SvgCanvas,
    _Frame,
    _nice_ticks,
    box_chart,
    grouped_bar_chart,
    line_chart,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(canvas) -> ET.Element:
    return ET.fromstring(canvas.to_svg())


def count(root, tag: str) -> int:
    return len(root.findall(f".//{SVG_NS}{tag}"))


class TestCanvas:
    def test_valid_xml(self):
        canvas = SvgCanvas(_Frame(), title="hello & <world>")
        canvas.rect(1, 2, 3, 4, fill="#f00")
        canvas.line(0, 0, 10, 10)
        canvas.text(5, 5, "a <b> & c")
        root = parse(canvas)
        assert root.tag == f"{SVG_NS}svg"

    def test_save(self, tmp_path):
        path = SvgCanvas(_Frame()).save(tmp_path / "x.svg")
        assert path.exists()
        ET.parse(path)

    def test_frame_coordinates(self):
        frame = _Frame(width=200, height=100, margin_left=20,
                       margin_right=10, margin_top=5, margin_bottom=15)
        assert frame.x(0.0) == 20
        assert frame.x(1.0) == 190
        assert frame.y(0.0) == 85   # bottom of data region
        assert frame.y(1.0) == 5


class TestNiceTicks:
    def test_covers_peak(self):
        ticks = _nice_ticks(87.0)
        assert ticks[0] == 0.0
        assert ticks[-1] >= 87.0

    def test_zero_peak(self):
        assert _nice_ticks(0.0) == [0.0, 1.0]

    @pytest.mark.parametrize("peak", [0.003, 1.0, 42.0, 1234.5, 9e6])
    def test_monotone(self, peak):
        ticks = _nice_ticks(peak)
        assert ticks == sorted(ticks)


class TestGroupedBarChart:
    def test_bar_count(self):
        canvas = grouped_bar_chart(
            ["Tight", "Loose"],
            {"LRU": [10.0, 5.0], "MLCR": [8.0, 4.0]},
        )
        root = parse(canvas)
        # 4 data bars + background + 2 legend swatches.
        assert count(root, "rect") == 4 + 1 + 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})

    def test_labels_rendered(self):
        canvas = grouped_bar_chart(["Tight"], {"LRU": [1.0]},
                                   title="T", y_label="s")
        text = canvas.to_svg()
        assert "Tight" in text and "LRU" in text and "T" in text


class TestLineChart:
    def test_polyline_per_series(self):
        canvas = line_chart(
            [0, 1, 2],
            {"greedy": [0.0, 1.0, 3.0], "mlcr": [0.0, 0.5, 2.0]},
        )
        assert count(parse(canvas), "polyline") == 2

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError):
            line_chart([], {"s": []})

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0]})


class TestBoxChart:
    def test_structure(self):
        stats = box_stats([1, 2, 3, 4, 5.0])
        canvas = box_chart({
            "HI-Sim": {"LRU": stats, "MLCR": stats},
            "LO-Sim": {"LRU": stats, "MLCR": stats},
        })
        root = parse(canvas)
        # 4 boxes + background + 2 legend swatches.
        assert count(root, "rect") == 4 + 1 + 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_chart({})
