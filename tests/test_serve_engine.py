"""Headless ServeEngine tests: stamping, warm reuse, hot-swap, recording
and deterministic replay (no sockets involved)."""

import json

import pytest

from repro.cluster.eventloop import VirtualClock
from repro.cluster.simulator import SimulationConfig
from repro.serve import (
    DecisionRecorder,
    ServeClosed,
    ServeEngine,
    replay_recording,
)


def _config(**overrides):
    defaults = dict(pool_capacity_mb=8192.0, n_workers=2)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _engine(**kwargs):
    clock = VirtualClock()
    engine = ServeEngine(_config(), wall=clock, **kwargs)
    return engine, clock


class TestSubmit:
    def test_outcome_carries_decision(self):
        engine, clock = _engine()
        clock.advance_to(1.0)
        outcome = engine.submit("hello-python")
        assert outcome.record.cold_start
        assert outcome.record.arrival_time == 1.0
        assert outcome.scheduler == "lru"
        assert outcome.exec_time_s > 0
        payload = outcome.to_json()
        assert payload["function"] == "hello-python"
        assert payload["cold_start"] is True
        assert json.dumps(payload)  # JSON-serializable throughout

    def test_warm_reuse_after_completion(self):
        engine, clock = _engine()
        clock.advance_to(1.0)
        first = engine.submit("hello-python", exec_time_s=0.1)
        done = 1.0 + first.service_time_s
        clock.advance_to(done + 1.0)
        engine.pump()  # container finishes and pools
        assert engine.pooled_containers == 1
        second = engine.submit("hello-python", exec_time_s=0.1)
        assert not second.record.cold_start
        assert second.record.container_id == first.record.container_id

    def test_function_by_id_and_unknown(self):
        engine, clock = _engine()
        assert engine.submit(4).record.function_name == "hello-python"
        with pytest.raises(KeyError):
            engine.submit("no-such-function")

    def test_stamps_are_monotone(self):
        engine, _ = _engine()
        a = engine.submit("hello-python", now=5.0)
        # A wall reading that went backwards is clamped, not rejected.
        b = engine.submit("hello-python", now=3.0)
        assert a.record.arrival_time == 5.0
        assert b.record.arrival_time == 5.0

    def test_inflight_tracks_outstanding_requests(self):
        engine, clock = _engine()
        assert engine.sim_inflight == 0
        clock.advance_to(1.0)
        engine.submit("hello-python", exec_time_s=0.2)
        engine.submit("hello-node", exec_time_s=0.2)
        assert engine.sim_inflight == 2
        clock.advance_to(60.0)
        engine.pump()
        assert engine.sim_inflight == 0


class TestSwapAndDrain:
    def test_swap_scheduler(self):
        engine, _ = _engine()
        previous = engine.swap_scheduler("greedy")
        assert previous == "lru"
        assert engine.scheduler_key == "greedy"
        assert engine.swaps == 1
        with pytest.raises(KeyError):
            engine.swap_scheduler("nope")

    def test_drain_closes_engine(self):
        engine, clock = _engine()
        clock.advance_to(1.0)
        engine.submit("hello-python")
        result = engine.drain()
        assert result.summary()["invocations"] == 1.0
        assert engine.closed
        assert engine.pump() == 0
        with pytest.raises(ServeClosed):
            engine.submit("hello-python")
        with pytest.raises(ServeClosed):
            engine.drain()

    def test_health_without_verification(self):
        engine, _ = _engine()
        report = engine.health()
        assert report["healthy"] is True
        assert report["verified"] is False

    def test_health_with_verification(self):
        clock = VirtualClock()
        engine = ServeEngine(_config(verify=True), wall=clock)
        clock.advance_to(1.0)
        engine.submit("hello-python")
        report = engine.health()
        assert report["healthy"] is True
        assert report["verified"] is True
        assert report["violation"] is None
        assert report["checks_run"] > 0
        # Corrupt the lifecycle's books: the monitors must catch it.
        engine.sim.lifecycle.created_count += 1
        assert engine.health()["healthy"] is False
        assert "conservation" in engine.health()["violation"]


class TestRecordingReplay:
    def _record_session(self):
        recorder = DecisionRecorder()
        clock = VirtualClock()
        engine = ServeEngine(
            _config(worker_concurrency=2), scheduler="keepalive",
            wall=clock, keepalive_ttl_s=5.0, recorder=recorder,
        )
        t = 0.0
        for i in range(12):
            t += 0.4 if i % 5 else 7.0
            clock.advance_to(t)
            if i % 3 == 0:
                engine.pump()
            engine.submit(("hello-python", "hello-java")[i % 2])
            if i == 6:
                engine.swap_scheduler("greedy")
        engine.drain()
        return recorder

    def test_replay_is_byte_identical(self):
        recorder = self._record_session()
        report = replay_recording(recorder.lines(), verify=True)
        assert report.ok, str(report.divergence)
        assert report.n_decisions == 12
        assert report.n_swaps == 1

    def test_replay_detects_tampering(self):
        recorder = self._record_session()
        lines = recorder.lines()
        # Flip the recorded worker of the last decision.
        entry = json.loads(lines[-1])
        entry["w"] = (entry["w"] + 1) % 2
        lines[-1] = json.dumps(entry)
        report = replay_recording(lines)
        assert not report.ok
        assert report.divergence.field == "w"

    def test_recording_round_trips_through_a_file(self, tmp_path):
        recorder = self._record_session()
        path = tmp_path / "session.jsonl"
        path.write_text("\n".join(recorder.lines()) + "\n")
        report = replay_recording(path)
        assert report.ok and report.n_decisions == 12

    def test_fault_configs_are_rejected(self):
        from repro.cluster.faults import FaultConfig

        with pytest.raises(ValueError, match="fault"):
            ServeEngine(
                _config(faults=FaultConfig(crash_prob=0.5)),
                recorder=DecisionRecorder(),
            )


class TestCli:
    def test_serve_replay_command(self, tmp_path, capsys):
        from repro.cli import main

        recorder = DecisionRecorder(tmp_path / "session.jsonl")
        clock = VirtualClock()
        engine = ServeEngine(_config(), wall=clock, recorder=recorder)
        for t in (0.5, 1.0, 9.0):
            clock.advance_to(t)
            engine.submit("hello-python")
        engine.drain()

        assert main(["serve-replay", str(tmp_path / "session.jsonl")]) == 0
        assert "3 decisions" in capsys.readouterr().out

        # Tampered recording: nonzero exit and a divergence report.
        lines = (tmp_path / "session.jsonl").read_text().splitlines()
        entry = json.loads(lines[1])
        entry["cold"] = False
        entry["cid"] = 999
        lines[1] = json.dumps(entry)
        bad = tmp_path / "tampered.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        assert main(["serve-replay", str(bad)]) == 1
        assert "recorded" in capsys.readouterr().out
