"""Tests for Jaccard similarity and size-variance metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packages.package import PackageSet
from repro.packages.similarity import (
    jaccard_similarity,
    package_size_variance,
    pairwise_mean_similarity,
)

from conftest import make_package


def pset(*names):
    return PackageSet([make_package(n) for n in names])


class TestJaccard:
    def test_identical_sets(self):
        a = pset("x", "y")
        assert jaccard_similarity(a, a) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity(pset("a"), pset("b")) == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity(pset("a", "b"), pset("b", "c")) == pytest.approx(1 / 3)

    def test_empty_sets_are_similar_by_convention(self):
        assert jaccard_similarity(PackageSet(), PackageSet()) == 1.0

    def test_empty_vs_nonempty(self):
        assert jaccard_similarity(PackageSet(), pset("a")) == 0.0


class TestPairwiseMean:
    def test_single_set(self):
        assert pairwise_mean_similarity([pset("a")]) == 1.0

    def test_three_sets(self):
        sets = [pset("a", "b"), pset("b", "c"), pset("x")]
        expected = (1 / 3 + 0 + 0) / 3
        assert pairwise_mean_similarity(sets) == pytest.approx(expected)


class TestSizeVariance:
    def test_empty(self):
        assert package_size_variance([]) == 0.0

    def test_uniform_sizes_zero_variance(self):
        sets = [PackageSet([make_package(f"p{i}", size_mb=50.0)])
                for i in range(4)]
        assert package_size_variance(sets) == 0.0

    def test_duplicated_packages_counted_once(self):
        shared = make_package("shared", size_mb=100.0)
        a = PackageSet([shared, make_package("a", size_mb=0.0)])
        b = PackageSet([shared])
        # Unique sizes are {100, 0}: population variance = 2500.
        assert package_size_variance([a, b]) == pytest.approx(2500.0)


# -- property-based ----------------------------------------------------------

names = st.sets(st.text(alphabet="abcdefgh", min_size=1, max_size=3),
                min_size=0, max_size=8)


@given(names, names)
def test_jaccard_symmetric(n1, n2):
    a, b = pset(*n1), pset(*n2)
    assert jaccard_similarity(a, b) == jaccard_similarity(b, a)


@given(names, names)
def test_jaccard_bounded(n1, n2):
    v = jaccard_similarity(pset(*n1), pset(*n2))
    assert 0.0 <= v <= 1.0


@given(names)
def test_jaccard_reflexive(n1):
    a = pset(*n1)
    assert jaccard_similarity(a, a) == 1.0


@given(names, names, names)
def test_jaccard_never_decreases_when_sharing_grows(n1, n2, shared):
    """Adding the same packages to both sets never decreases similarity.

    With i = |A n B| and u = |A u B| (i <= u), adding a common set S turns
    the ratio into (i + di) / (u + du) with di >= du >= 0, which is >= i/u.
    (Both-empty sets are already at the maximum 1.0 by convention.)
    """
    if not (set(n1) | set(n2)):
        return
    before = jaccard_similarity(pset(*n1), pset(*n2))
    after = jaccard_similarity(
        pset(*(set(n1) | set(shared))), pset(*(set(n2) | set(shared)))
    )
    assert after >= before - 1e-12
