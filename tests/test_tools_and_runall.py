"""Tests for the API-doc generator tool and the runall driver plumbing."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import gen_api_docs  # noqa: E402  (path injection above)

from repro.experiments.runall import _parse_args  # noqa: E402


class TestApiDocGenerator:
    def test_render_covers_every_module(self):
        text = gen_api_docs.render()
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue
            assert f"## `{info.name}`" in text, info.name

    def test_first_paragraph(self):
        doc = "Lead line\ncontinues here.\n\nSecond paragraph."
        assert gen_api_docs.first_paragraph(doc) == "Lead line continues here."
        assert gen_api_docs.first_paragraph("") == ""

    def test_main_writes_file(self, tmp_path):
        target = tmp_path / "api.md"
        assert gen_api_docs.main([str(target)]) == 0
        assert target.exists()
        assert "# API Reference" in target.read_text()

    def test_cli_invocation(self, tmp_path):
        target = tmp_path / "api.md"
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "gen_api_docs.py"),
             str(target)],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert target.exists()

    def test_checked_in_reference_is_current(self):
        """API_REFERENCE.md must be regenerated when the API changes."""
        checked_in = (REPO_ROOT / "API_REFERENCE.md").read_text()
        assert checked_in == gen_api_docs.render()


class TestRunallArgs:
    def test_no_args(self):
        assert _parse_args([]) == (None, None, 1, 1, False, False, {})

    def test_output_only(self):
        out, figs, jobs, lanes, no_cache, profile, overrides = _parse_args(
            ["report.md"])
        assert out == Path("report.md") and figs is None and jobs == 1
        assert lanes == 1 and not no_cache and not profile
        assert overrides == {}

    def test_figures_flag(self):
        out, figs, jobs, *_ = _parse_args(
            ["report.md", "--figures", "figs"])
        assert out == Path("report.md") and figs == Path("figs")
        assert jobs == 1

    def test_jobs_flag(self):
        out, figs, jobs, *_ = _parse_args(["--jobs", "4", "report.md"])
        assert out == Path("report.md") and figs is None and jobs == 4

    def test_cache_and_profile_flags(self):
        out, figs, jobs, lanes, no_cache, profile, _ = _parse_args(
            ["--no-cache", "--profile", "report.md"])
        assert out == Path("report.md") and no_cache and profile

    def test_lanes_flag(self):
        _, _, jobs, lanes, *_ = _parse_args(
            ["--jobs", "2", "--lanes", "8", "report.md"])
        assert jobs == 2 and lanes == 8

    def test_lanes_missing_value(self):
        with pytest.raises(SystemExit):
            _parse_args(["--lanes"])

    def test_stream_scale_overrides(self):
        *_, overrides = _parse_args(
            ["--stream-functions", "50", "--stream-invocations", "9000"])
        assert overrides == {"stream_functions": 50,
                             "stream_invocations": 9000}

    def test_figures_missing_value(self):
        with pytest.raises(SystemExit):
            _parse_args(["--figures"])

    def test_jobs_missing_value(self):
        with pytest.raises(SystemExit):
            _parse_args(["--jobs"])

    def test_stream_functions_missing_value(self):
        with pytest.raises(SystemExit):
            _parse_args(["--stream-functions"])
