"""Tests for analysis helpers (stats, reports, breakdown tables)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.breakdown import breakdown_table
from repro.analysis.report import ascii_bar_chart, ascii_table, format_seconds
from repro.analysis.stats import box_stats, mean_confidence_interval, reduction_pct
from repro.containers.costmodel import StartupBreakdown


class TestBoxStats:
    def test_five_numbers(self):
        s = box_stats([1, 2, 3, 4, 5])
        assert s.minimum == 1 and s.maximum == 5
        assert s.median == 3
        assert s.mean == 3.0

    def test_single_value(self):
        s = box_stats([7.0])
        assert s.as_tuple() == (7.0, 7.0, 7.0, 7.0, 7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_ordering_invariant(self, values):
        s = box_stats(values)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
        # The mean can drift past the extremes by a few ulps in float64.
        tol = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - tol <= s.mean <= s.maximum + tol


class TestCI:
    def test_single_sample_zero_width(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0 and half == 0.0

    def test_wider_spread_wider_ci(self):
        _, tight = mean_confidence_interval([1.0, 1.1, 0.9])
        _, wide = mean_confidence_interval([0.0, 2.0, -2.0])
        assert wide > tight

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestReduction:
    def test_positive_improvement(self):
        assert reduction_pct(100.0, 47.0) == pytest.approx(53.0)

    def test_negative_means_regression(self):
        assert reduction_pct(100.0, 120.0) == pytest.approx(-20.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            reduction_pct(0.0, 1.0)


class TestAsciiTable:
    def test_renders_all_rows(self):
        out = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 5  # title, header, sep, 2 rows

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [["1", "2"]])

    def test_alignment(self):
        out = ascii_table(["col"], [["x"], ["longer"]])
        rows = out.splitlines()[2:]
        assert len({len(r) for r in rows}) == 1


class TestBarChart:
    def test_bars_scale(self):
        out = ascii_bar_chart(["a", "b"], [10.0, 5.0], width=10)
        a_line, b_line = out.splitlines()
        assert a_line.count("#") == 10
        assert b_line.count("#") == 5

    def test_zero_values(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "#" in out  # min one mark

    def test_empty(self):
        assert ascii_bar_chart([], [], title="t") == "t"

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])


class TestFormatSeconds:
    def test_small(self):
        assert format_seconds(1.234).strip() == "1.23s"

    def test_large(self):
        assert format_seconds(123.4).strip() == "123.4s"


class TestBreakdownTable:
    def test_contains_phases_and_totals(self):
        bd = StartupBreakdown(create_s=0.5, pull_s=1.0, function_init_s=0.25)
        out = breakdown_table({"cold": bd}, title="T")
        assert "create" in out and "pull" in out
        assert "1.75" in out  # total


class TestQueueingReports:
    def _telemetry(self, enabled=True):
        from repro.cluster.telemetry import Telemetry
        t = Telemetry(queueing_enabled=enabled, worker_slots=2)
        t.record_queueing(0.0)
        t.record_queueing(3.5)
        t.record_queue_depth(4)
        t.record_worker_busy(0, 80.0)
        t.record_worker_busy(1, 20.0)
        t.duration_s = 100.0
        return t

    def test_queueing_report_renders_metrics(self):
        from repro.analysis.report import queueing_report
        text = queueing_report(self._telemetry())
        assert "queued starts" in text
        assert "1" in text          # one delay > 0
        assert "3.50s" in text      # total == p95 == the single delay
        assert "max queue depth" in text

    def test_queueing_report_empty_when_disabled(self):
        from repro.analysis.report import queueing_report
        assert queueing_report(self._telemetry(enabled=False)) == ""

    def test_worker_utilization_report_one_bar_per_worker(self):
        from repro.analysis.report import worker_utilization_report
        text = worker_utilization_report(self._telemetry())
        assert "worker 0" in text and "worker 1" in text
        # worker 0: 80s busy / (100s * 2 slots) = 40%.
        assert "40.00%" in text
        assert "10.00%" in text

    def test_worker_utilization_report_empty_without_busy_time(self):
        from repro.analysis.report import worker_utilization_report
        from repro.cluster.telemetry import Telemetry
        assert worker_utilization_report(Telemetry()) == ""
