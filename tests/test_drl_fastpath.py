"""Fast-path parity tests: dtype, fused QKV, inference mode, batched rollouts.

The DRL engine's performance work (float32 compute, fused QKV attention,
cache-free inference mode, batched greedy rollouts, parameter-list
memoization) must not change *what* is computed, only how fast.  Every test
here pins an equivalence between the fast path and the reference path.
"""

import json

import numpy as np
import pytest

from repro.cluster.simulator import SimulationConfig
from repro.core.config import MLCRConfig
from repro.core.mlcr import train_mlcr_scheduler
from repro.core.persistence import load_scheduler, save_scheduler
from repro.core.trainer import EVAL_EPISODE_BASE, MLCRTrainer
from repro.drl.attention import (
    MultiHeadAttention,
    _softmax,
    migrate_unfused_qkv_state,
)
from repro.drl.dqn import DQNAgent, DQNConfig, masked_argmax
from repro.drl.layers import Linear, glorot_init
from repro.drl.network import AttentionQNetwork
from repro.drl.replay import ReplayBuffer

from test_core_env_trainer import tiny_config, tiny_workload


def small_net(dtype=np.float64, seed=7):
    return AttentionQNetwork(
        global_dim=6, slot_dim=5, n_slots=3,
        rng=np.random.default_rng(seed),
        model_dim=8, n_heads=2, n_blocks=2, head_hidden=8, dtype=dtype,
    )


def random_states(net, batch=16, seed=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, net.state_dim))


def make_env():
    from repro.core.env import SchedulingEnv
    from repro.core.state import StateEncoder

    return SchedulingEnv(
        workload_factory=lambda ep: tiny_workload(seed=ep % 3),
        sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
        encoder=StateEncoder(n_slots=4),
    )


class TestDtypeParity:
    def test_float32_network_stores_and_returns_float32(self):
        net = small_net(dtype=np.float32)
        assert all(p.value.dtype == np.float32 for p in net.parameters())
        q = net.forward(random_states(net))
        assert q.dtype == np.float32

    def test_q_values_close_and_greedy_actions_identical(self):
        """Same seed, both precisions: Q agree to tolerance, argmax exactly."""
        net64 = small_net(dtype=np.float64)
        net32 = small_net(dtype=np.float32)
        states = random_states(net64, batch=32)
        q64 = net64.forward(states)
        q32 = net32.forward(states)
        assert np.allclose(q32, q64, rtol=1e-3, atol=1e-4)
        mask = np.ones((32, net64.action_dim), dtype=bool)
        assert np.array_equal(
            masked_argmax(q64, mask), masked_argmax(q32.astype(np.float64), mask)
        )

    def test_float32_inputs_not_promoted(self):
        net = small_net(dtype=np.float32)
        states = random_states(net).astype(np.float32)
        assert net.forward(states).dtype == np.float32

    def test_replay_buffer_follows_dtype(self):
        buf = ReplayBuffer(capacity=8, state_dim=4, action_dim=2,
                           dtype=np.float32)
        assert buf._states.dtype == np.float32
        assert buf._next_states.dtype == np.float32
        assert buf._rewards.dtype == np.float32

    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            MLCRConfig(dtype="float16")

    def test_config_np_dtype(self):
        assert MLCRConfig().np_dtype == np.dtype("float32")
        assert MLCRConfig(dtype="float64").np_dtype == np.dtype("float64")


class TestFusedQKV:
    def test_forward_matches_unfused_reference(self, rng):
        """The fused (D, 3D) projection computes the textbook unfused MHA."""
        mha = MultiHeadAttention(model_dim=8, n_heads=2, rng=rng)
        x = np.random.default_rng(1).normal(size=(2, 5, 8))
        d = mha.model_dim
        w = mha.w_qkv.value
        # Reference: three separate projections, explicit per-head loops.
        q = x @ w[:, :d]
        k = x @ w[:, d:2 * d]
        v = x @ w[:, 2 * d:]

        def split(t):
            b, n, _ = t.shape
            return t.reshape(b, n, mha.n_heads, mha.head_dim).transpose(
                0, 2, 1, 3
            )

        qh, kh, vh = split(q), split(k), split(v)
        scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(mha.head_dim)
        ctx = _softmax(scores, axis=-1) @ vh
        ctx = ctx.transpose(0, 2, 1, 3).reshape(2, 5, d)
        expected = ctx @ mha.w_o.weight.value + mha.w_o.bias.value
        assert np.allclose(mha.forward(x), expected, atol=1e-12)

    def test_fused_init_matches_unfused_rng_stream(self):
        """Fused init draws the same uniforms as the old w_q/w_k/w_v order."""
        mha = MultiHeadAttention(model_dim=8, n_heads=2,
                                 rng=np.random.default_rng(5))
        ref = np.random.default_rng(5)
        for j in range(3):
            block = glorot_init(ref, 8, 8)
            assert np.array_equal(mha.w_qkv.value[:, 8 * j:8 * (j + 1)], block)
        w_o = Linear(8, 8, ref)
        assert np.array_equal(mha.w_o.weight.value, w_o.weight.value)

    def test_backward_weight_grads_match_unfused_formulation(self, rng):
        """d w_qkv columns equal the three separate-projection gradients."""
        mha = MultiHeadAttention(model_dim=8, n_heads=2, rng=rng)
        x = np.random.default_rng(2).normal(size=(3, 4, 8))
        out = mha.forward(x)
        grad = np.ones_like(out)
        mha.backward(grad)
        d = mha.model_dim
        gw = mha.w_qkv.grad
        # Each projection's gradient is x^T @ (d qkv slice); the fused
        # gradient must be exactly their concatenation -- nonzero blocks.
        assert gw.shape == (d, 3 * d)
        for j in range(3):
            assert np.abs(gw[:, d * j:d * (j + 1)]).max() > 0

    def test_migration_roundtrip(self):
        """Unfused (v1) tensors migrate into a forward-identical network."""
        net = small_net()
        states = random_states(net)
        expected = net.forward(states)

        # Serialize to the historical layout: each fused pair becomes six
        # tensors in the old parameter order (qw, qb, kw, kb, vw, vb).
        old = []
        params = net.parameters()
        i = 0
        while i < len(params):
            p = params[i]
            if p.name.endswith(".qkv.weight"):
                bias = params[i + 1]
                d = p.value.shape[0]
                for j in range(3):
                    old.append(p.value[:, d * j:d * (j + 1)].copy())
                    old.append(bias.value[d * j:d * (j + 1)].copy())
                i += 2
            else:
                old.append(p.value.copy())
                i += 1
        unfused_state = {str(j): t for j, t in enumerate(old)}

        fresh = small_net(seed=99)  # different weights before loading
        migrated = migrate_unfused_qkv_state(unfused_state, fresh)
        fresh.load_state_dict(migrated)
        assert np.allclose(fresh.forward(states), expected, atol=1e-12)

    def test_migration_rejects_short_state(self):
        net = small_net()
        with pytest.raises(ValueError):
            migrate_unfused_qkv_state({"0": np.zeros((8, 8))}, net)


class TestInferenceMode:
    def test_forward_bitwise_equal(self):
        net = small_net()
        states = random_states(net)
        train_out = net.forward(states)
        with net.inference():
            infer_out = net.forward(states)
        assert np.array_equal(train_out, infer_out)

    def test_inference_forward_leaves_no_cache(self):
        net = small_net()
        states = random_states(net)
        with net.inference():
            out = net.forward(states)
        with pytest.raises(RuntimeError):
            net.backward(np.ones_like(out))

    def test_mode_restored_after_context(self):
        net = small_net()
        assert net.training
        with net.inference():
            assert not net.training
            assert not net.blocks[0].attn.training
        assert net.training
        assert net.blocks[0].attn.training

    def test_train_false_propagates_recursively(self):
        net = small_net().train(False)
        assert not net.out_norm.training
        assert not net.blocks[1].attn.w_o.training
        net.train(True)
        assert net.blocks[1].attn.w_o.training

    def test_target_network_permanently_in_inference(self):
        agent = DQNAgent(network_factory=small_net, config=DQNConfig(),
                         rng=np.random.default_rng(0))
        assert not agent.target.training
        assert agent.online.training


class TestParameterCache:
    def test_parameters_memoized(self):
        net = small_net()
        assert net.parameters() is net.parameters()

    def test_invalidate_rebuilds(self):
        net = small_net()
        first = net.parameters()
        net.invalidate_parameter_cache()
        second = net.parameters()
        assert first is not second
        assert [p.name for p in first] == [p.name for p in second]

    def test_cache_holds_live_parameters(self):
        """The cached list aliases the real Parameters (updates propagate)."""
        net = small_net()
        p = net.parameters()[0]
        p.value[...] = 42.0
        assert net.parameters()[0].value.flat[0] == 42.0


class TestBatchedRollouts:
    def test_act_batch_matches_sequential_act(self):
        agent = DQNAgent(network_factory=small_net, config=DQNConfig(),
                         rng=np.random.default_rng(0))
        states = random_states(agent.online, batch=8)
        masks = np.ones((8, agent.action_dim), dtype=bool)
        masks[2, :2] = False
        batched = agent.act_batch(states, masks)
        sequential = [
            agent.act(states[i], masks[i], epsilon=0.0) for i in range(8)
        ]
        assert np.array_equal(batched, sequential)

    def test_act_batch_validates_inputs(self):
        agent = DQNAgent(network_factory=small_net, config=DQNConfig(),
                         rng=np.random.default_rng(0))
        states = random_states(agent.online, batch=4)
        with pytest.raises(ValueError):
            agent.act_batch(states, np.ones((3, agent.action_dim), bool))
        bad = np.ones((4, agent.action_dim), dtype=bool)
        bad[1] = False
        with pytest.raises(ValueError):
            agent.act_batch(states, bad)

    def test_batched_validation_matches_sequential(self):
        """Lockstep eval lanes reproduce one-at-a-time eval episodes."""
        cfg = tiny_config(eval_episodes=3)
        batched = MLCRTrainer(make_env(), cfg)
        sequential = MLCRTrainer(make_env(), cfg)

        got = batched._run_episodes_batched(
            ["eval"] * 3, [EVAL_EPISODE_BASE + i for i in range(3)]
        )
        want = [
            sequential._run_episode("eval", learn=False,
                                    episode=EVAL_EPISODE_BASE + i)
            for i in range(3)
        ]
        for (gr, gl, gc), (wr, wl, wc) in zip(got, want):
            assert gr == pytest.approx(wr)
            assert gl == pytest.approx(wl)
            assert gc == wc

    def test_batched_demos_match_sequential_stats(self):
        """Demonstration lanes produce the sequential episodes' outcomes and
        fill the replay buffer with the same number of transitions."""
        cfg = tiny_config()
        batched = MLCRTrainer(make_env(), cfg)
        sequential = MLCRTrainer(make_env(), cfg)

        got = batched._run_episodes_batched(["greedy", "exact"], [0, 1])
        want = [
            sequential._run_episode("greedy", learn=False, episode=0),
            sequential._run_episode("exact", learn=False, episode=1),
        ]
        for (gr, gl, gc), (wr, wl, wc) in zip(got, want):
            assert gr == pytest.approx(wr)
            assert gl == pytest.approx(wl)
            assert gc == wc
        assert len(batched.agent.buffer) == len(sequential.agent.buffer)
        assert batched._global_step == sequential._global_step


class TestCheckpointBackCompat:
    @pytest.fixture(scope="class")
    def trained64(self):
        cfg = tiny_config(dtype="float64")
        scheduler, _ = train_mlcr_scheduler(
            workload_factory=lambda ep: tiny_workload(seed=ep % 2),
            sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
            config=cfg,
        )
        return scheduler, cfg

    @staticmethod
    def _write_v1(scheduler, cfg, path):
        """Save in the historical format: unfused QKV, no dtype field."""
        meta = {
            "format_version": 1,
            "n_slots": scheduler.encoder.n_slots,
            "mask_dominated": scheduler.encoder.mask_dominated,
            "use_mask": scheduler.use_mask,
            "config": {
                "n_slots": cfg.n_slots,
                "model_dim": cfg.model_dim,
                "n_heads": cfg.n_heads,
                "n_blocks": cfg.n_blocks,
                "head_hidden": cfg.head_hidden,
                "use_attention": cfg.use_attention,
                "use_dueling": cfg.use_dueling,
                "seed": cfg.seed,
            },
        }
        old = []
        params = scheduler.agent.online.parameters()
        i = 0
        while i < len(params):
            p = params[i]
            if p.name.endswith(".qkv.weight"):
                bias = params[i + 1]
                d = p.value.shape[0]
                for j in range(3):
                    old.append(p.value[:, d * j:d * (j + 1)].copy())
                    old.append(bias.value[d * j:d * (j + 1)].copy())
                i += 2
            else:
                old.append(p.value.copy())
                i += 1
        arrays = {f"param_{j}": t for j, t in enumerate(old)}
        np.savez(path, _meta=np.array(json.dumps(meta)), **arrays)
        return path

    def test_v1_checkpoint_loads_with_identical_weights(self, trained64,
                                                        tmp_path):
        scheduler, cfg = trained64
        path = self._write_v1(scheduler, cfg, tmp_path / "v1.npz")
        loaded = load_scheduler(path)
        assert loaded.agent.online.dtype == np.dtype("float64")
        original = scheduler.agent.online.state_dict()
        migrated = loaded.agent.online.state_dict()
        assert original.keys() == migrated.keys()
        for key in original:
            assert np.array_equal(original[key], migrated[key]), key

    def test_v1_checkpoint_identical_decisions(self, trained64, tmp_path):
        from repro.experiments.common import evaluate_scheduler

        scheduler, cfg = trained64
        path = self._write_v1(scheduler, cfg, tmp_path / "v1.npz")
        loaded = load_scheduler(path)
        wl = tiny_workload(seed=9)
        a = evaluate_scheduler(scheduler, wl, 10_000.0, "x")
        b = evaluate_scheduler(loaded, wl, 10_000.0, "x")
        assert a.total_startup_s == pytest.approx(b.total_startup_s)
        assert a.cold_starts == b.cold_starts

    def test_v2_roundtrip_preserves_dtype(self, tmp_path):
        cfg = tiny_config()  # default float32 fast path
        scheduler, _ = train_mlcr_scheduler(
            workload_factory=lambda ep: tiny_workload(seed=ep % 2),
            sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
            config=cfg,
        )
        path = save_scheduler(scheduler, cfg, tmp_path / "v2.npz")
        loaded = load_scheduler(path)
        assert loaded.agent.online.dtype == np.dtype("float32")
        original = scheduler.agent.online.state_dict()
        migrated = loaded.agent.online.state_dict()
        for key in original:
            assert np.array_equal(original[key], migrated[key]), key
