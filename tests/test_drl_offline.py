"""Unit tests for the offline Q-learning pipeline (repro.drl.offline)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.drl.offline import (
    ACTION_COLD,
    N_ACTIONS,
    OfflineQPolicy,
    Transition,
    fit_from_traces,
    iter_transitions,
    trace_lines_from_result,
)


def line(fn, cold=True, m=0, lat=1.0):
    """One decision line in the golden-trace / serve-recording schema."""
    return json.dumps({"fn": fn, "cold": cold, "m": m, "lat": lat})


class TestIterTransitions:
    def test_chains_consecutive_decisions(self):
        lines = [line("a", cold=True, lat=2.0),
                 line("b", cold=False, m=3, lat=0.1),
                 line("a", cold=False, m=2, lat=0.4)]
        got = list(iter_transitions(lines))
        assert got == [
            Transition("a", ACTION_COLD, -2.0, "b"),
            Transition("b", 3, -0.1, "a"),
            Transition("a", 2, -0.4, None),
        ]

    def test_skips_non_decision_lines(self):
        lines = ['{"version": 1, "workload": "x"}',
                 line("a"),
                 '{"swap": "greedy", "t": 3.0}',
                 "not json at all",
                 line("b", cold=False, m=1, lat=0.2)]
        got = list(iter_transitions(lines))
        assert [t.state for t in got] == ["a", "b"]
        assert got[0].next_state == "b"

    def test_empty_input(self):
        assert list(iter_transitions([])) == []


class TestFitFromTraces:
    def test_unseen_actions_are_nan(self):
        policy = fit_from_traces([[line("a", cold=True, lat=1.0)]])
        q = policy.action_values("a")
        assert q.shape == (N_ACTIONS,)
        assert not np.isnan(q[ACTION_COLD])
        assert np.isnan(q[1:]).all()

    def test_prefers_cheaper_action(self):
        lines = [line("a", cold=True, lat=5.0),
                 line("a", cold=False, m=3, lat=0.1)] * 10
        policy = fit_from_traces([lines])
        q = policy.action_values("a")
        assert q[3] > q[ACTION_COLD]

    def test_no_transitions_yields_empty_policy(self):
        policy = fit_from_traces([["{}"]])
        assert policy.states == ()
        assert policy.n_transitions == 0
        assert policy.action_values("a") is None

    def test_bad_gamma_rejected(self):
        with pytest.raises(ValueError):
            fit_from_traces([[line("a")]], gamma=1.0)

    def test_unknown_state_is_none(self):
        policy = fit_from_traces([[line("a")]])
        assert policy.action_values("never-seen") is None

    def test_accepts_path_sources(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join([line("a"), line("b", m=1)]) + "\n")
        policy = fit_from_traces([path])
        assert set(policy.states) == {"a", "b"}


class TestPolicyRoundTrip:
    def test_save_load_bitwise(self, tmp_path):
        policy = fit_from_traces([[line("a"), line("b", cold=False, m=2,
                                                   lat=0.3)]])
        path = policy.save(tmp_path / "policy")
        assert path.suffix == ".npz"
        loaded = OfflineQPolicy.load(path)
        assert loaded.states == policy.states
        assert loaded.q.tobytes() == policy.q.tobytes()
        assert loaded.gamma == policy.gamma
        assert loaded.n_transitions == policy.n_transitions

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OfflineQPolicy(states=("a",), q=np.zeros((2, N_ACTIONS)),
                           gamma=0.9, iterations=1, n_transitions=1)


class TestTraceLinesFromResult:
    def test_lines_parse_back(self):
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from repro.schedulers.greedy import GreedyMatchScheduler
        from repro.workloads.fstartbench import build_workload

        workload = build_workload("LO-Sim", seed=0)
        sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=2000.0))
        result = sim.run(workload, GreedyMatchScheduler())
        lines = trace_lines_from_result(result)
        assert len(lines) == len(workload)
        transitions = list(iter_transitions(lines))
        assert len(transitions) == len(workload)
        assert transitions[-1].next_state is None
