"""Drift test between ``benchmarks/``, the capture tool and the baseline.

Three artifacts must stay in sync:

* every ``benchmarks/bench_*.py`` file is either in the capture tool's
  default set or explicitly listed as heavy (and vice versa -- no ghost
  registrations);
* every benchmark test in the default set has a baseline entry in
  ``benchmarks/bench_baseline.json`` -- unless it opts out of the
  regression guard with ``benchmark.extra_info["no_guard"] = True``
  (detected here via the AST, mirroring the capture tool's JSON filter);
* every baseline entry corresponds to a benchmark test that still exists.

A new benchmark file that is neither captured nor declared heavy, or a
renamed benchmark leaving a stale baseline behind, fails here instead of
silently weakening the regression guard.
"""

from __future__ import annotations

import ast
import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def _load_bench_capture():
    spec = importlib.util.spec_from_file_location(
        "bench_capture", REPO_ROOT / "tools" / "bench_capture.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_capture", module)
    spec.loader.exec_module(module)
    return module


bench_capture = _load_bench_capture()


def _opts_out_of_guard(func: ast.AST) -> bool:
    """True if the test body sets ``benchmark.extra_info["no_guard"]``."""
    for node in ast.walk(func):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "extra_info"
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == "no_guard"):
            return True
    return False


def _benchmark_tests(path: Path) -> set:
    """Names of the guarded benchmark tests a bench file defines (AST).

    Tests that opt out of the regression guard are excluded: the capture
    tool never writes baseline entries for them.
    """
    tree = ast.parse(path.read_text())
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = {a.arg for a in node.args.args}
            if (node.name.startswith("test_") and "benchmark" in args
                    and not _opts_out_of_guard(node)):
                names.add(node.name)
    return names


def test_every_bench_file_is_registered():
    on_disk = {p.name for p in BENCH_DIR.glob("bench_*.py")}
    captured = {Path(p).name for p in bench_capture.DEFAULT_BENCHMARKS}
    heavy = set(bench_capture.HEAVY_BENCHMARKS)
    unregistered = on_disk - captured - heavy
    assert not unregistered, (
        f"benchmark files neither captured nor declared heavy: "
        f"{sorted(unregistered)}"
    )


def test_no_ghost_registrations():
    on_disk = {p.name for p in BENCH_DIR.glob("bench_*.py")}
    captured = {Path(p).name for p in bench_capture.DEFAULT_BENCHMARKS}
    heavy = set(bench_capture.HEAVY_BENCHMARKS)
    assert captured <= on_disk, sorted(captured - on_disk)
    assert heavy <= on_disk, sorted(heavy - on_disk)
    assert not captured & heavy, sorted(captured & heavy)


def test_captured_benchmarks_have_baseline_entries():
    baseline = json.loads((BENCH_DIR / "bench_baseline.json").read_text())
    expected = set()
    for rel in bench_capture.DEFAULT_BENCHMARKS:
        expected |= _benchmark_tests(REPO_ROOT / rel)
    assert expected, "default benchmark set defines no benchmark tests"
    missing = expected - set(baseline)
    assert not missing, (
        f"benchmark tests without a baseline entry: {sorted(missing)} "
        "(run tools/bench_capture.py)"
    )


def test_every_baseline_entry_maps_to_a_live_benchmark():
    baseline = json.loads((BENCH_DIR / "bench_baseline.json").read_text())
    live = set()
    for rel in bench_capture.DEFAULT_BENCHMARKS:
        live |= _benchmark_tests(REPO_ROOT / rel)
    # ``{name}[rss_mb]`` entries are the peak-RSS companions of a timing
    # entry; they map to the same live test.
    stale = {
        name for name in baseline
        if name.removesuffix(bench_capture.RSS_SUFFIX) not in live
    }
    assert not stale, (
        f"baseline entries with no matching benchmark test: {sorted(stale)}"
    )
    assert all(
        isinstance(v, float) and v > 0 for v in baseline.values()
    ), "baseline means must be positive floats"


def test_discovery_matches_disk():
    discovered = set(bench_capture.discover_benchmarks())
    on_disk = {f"benchmarks/{p.name}" for p in BENCH_DIR.glob("bench_*.py")}
    assert discovered == on_disk
    assert set(bench_capture.DEFAULT_BENCHMARKS) == set(
        bench_capture.default_benchmarks()
    )
