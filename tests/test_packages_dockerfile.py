"""Unit tests for the Dockerfile-dialect parser."""

import pytest

from repro.packages.dockerfile import (
    DockerfileParser,
    DockerfileSyntaxError,
    UnknownPackageError,
)
from repro.packages.package import PackageLevel


@pytest.fixture
def parser(catalog):
    return DockerfileParser(catalog)


FIG5_STYLE = """
# Fig. 5-style deep learning image
FROM debian-base:11
RUN apt-get install -y glibc==2.31 coreutils==8.32 ca-certificates==2023
RUN cd /tmp && \\
    wget python.tgz && \\
    install python==3.9.17 pip==23
RUN pip install tensorflow==2.12 numpy==1.24
WORKDIR /workspace
"""


class TestHappyPath:
    def test_parses_all_levels(self, parser):
        result = parser.parse(FIG5_STYLE)
        ps = result.packages
        assert {p.name for p in ps.os_packages} == {
            "debian-base", "glibc", "coreutils", "ca-certificates"
        }
        assert {p.name for p in ps.language_packages} == {"python", "pip"}
        assert {p.name for p in ps.runtime_packages} == {"tensorflow", "numpy"}

    def test_base_image_identified(self, parser):
        result = parser.parse(FIG5_STYLE)
        assert result.base_image.name == "debian-base"
        assert result.base_image.level is PackageLevel.OS

    def test_total_size_positive(self, parser):
        assert parser.parse(FIG5_STYLE).total_size_mb > 500  # tensorflow

    def test_continuations_joined(self, parser):
        text = "FROM alpine-base:3.18\nRUN install \\\n  flask==2.3"
        result = parser.parse(text)
        assert any(p.name == "flask" for p in result.packages)

    def test_comments_and_blanks_ignored(self, parser):
        text = "# hi\n\nFROM alpine-base:3.18\n  \n# bye\n"
        assert parser.parse(text).base_image.name == "alpine-base"

    def test_ignored_instructions(self, parser):
        text = (
            "FROM alpine-base:3.18\nWORKDIR /app\nENV X=1\nCOPY . .\n"
            "EXPOSE 8080\nCMD [\"run\"]"
        )
        result = parser.parse(text)
        assert len(result.packages) == 1

    def test_non_install_run_segments_ignored(self, parser):
        text = "FROM alpine-base:3.18\nRUN make && install flask==2.3 && make test"
        result = parser.parse(text)
        assert any(p.name == "flask" for p in result.packages)

    def test_option_flags_skipped(self, parser):
        text = "FROM alpine-base:3.18\nRUN pip install --no-cache -q flask==2.3"
        result = parser.parse(text)
        assert any(p.name == "flask" for p in result.packages)

    def test_npm_and_yum_flavours(self, parser):
        text = (
            "FROM centos-base:7\n"
            "RUN yum install -y gcc-toolchain==9\n"
            "RUN npm install express==4.18\n"
        )
        result = parser.parse(text)
        names = {p.name for p in result.packages}
        assert {"gcc-toolchain", "express"} <= names


class TestErrors:
    def test_missing_from(self, parser):
        with pytest.raises(DockerfileSyntaxError):
            parser.parse("RUN install flask==2.3")

    def test_duplicate_from(self, parser):
        with pytest.raises(DockerfileSyntaxError):
            parser.parse("FROM alpine-base:3.18\nFROM debian-base:11")

    def test_bad_image_reference(self, parser):
        with pytest.raises(DockerfileSyntaxError):
            parser.parse("FROM justaname")

    def test_unknown_base_image(self, parser):
        with pytest.raises(UnknownPackageError):
            parser.parse("FROM windows:11")

    def test_unknown_package(self, parser):
        with pytest.raises(UnknownPackageError):
            parser.parse("FROM alpine-base:3.18\nRUN install leftpad==1.0")

    def test_bad_package_spec(self, parser):
        with pytest.raises(DockerfileSyntaxError):
            parser.parse("FROM alpine-base:3.18\nRUN install flask@2.3")

    def test_unknown_instruction(self, parser):
        with pytest.raises(DockerfileSyntaxError):
            parser.parse("FROM alpine-base:3.18\nHEALTHCHECK none")

    def test_empty_dockerfile(self, parser):
        with pytest.raises(DockerfileSyntaxError):
            parser.parse("")
