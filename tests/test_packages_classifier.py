"""Tests for the automatic package-level classifier."""

import pytest

from repro.packages.classifier import (
    Classification,
    InstallHint,
    PackageLevelClassifier,
)
from repro.packages.catalog import default_catalog
from repro.packages.package import PackageLevel


@pytest.fixture
def classifier():
    return PackageLevelClassifier(catalog=default_catalog())


@pytest.fixture
def blind():
    """Classifier without catalog knowledge (pure heuristics)."""
    return PackageLevelClassifier()


class TestCatalogKnowledge:
    def test_known_packages_are_exact(self, classifier):
        c = classifier.classify("tensorflow")
        assert c.level is PackageLevel.RUNTIME
        assert c.confidence == 1.0
        assert c.evidence == ("catalog",)

    def test_version_suffix_stripped(self, classifier):
        c = classifier.classify("tensorflow==2.12")
        assert c.confidence == 1.0

    def test_case_insensitive(self, classifier):
        assert classifier.classify("TensorFlow").confidence == 1.0


class TestLexicalRules:
    @pytest.mark.parametrize("name,expected", [
        ("ubuntu-minimal", PackageLevel.OS),
        ("archlinux-keyring", PackageLevel.OS),
        ("openjdk-17-headless", PackageLevel.LANGUAGE),
        ("rustc", PackageLevel.LANGUAGE),
        ("django-rest", PackageLevel.RUNTIME),
        ("aws-sdk-cpp", PackageLevel.RUNTIME),
    ])
    def test_families(self, blind, name, expected):
        assert blind.classify(name).level is expected

    def test_unknown_defaults_to_runtime_low_confidence(self, blind):
        c = blind.classify("zzqxj")
        assert c.level is PackageLevel.RUNTIME
        assert c.needs_review


class TestStructuralHints:
    def test_from_image_forces_os(self, blind):
        c = blind.classify("mysterybase", install_hint=InstallHint.FROM_IMAGE)
        assert c.level is PackageLevel.OS
        assert not c.needs_review

    def test_package_manager_leans_runtime(self, blind):
        c = blind.classify("leftpad",
                           install_hint=InstallHint.PACKAGE_MANAGER)
        assert c.level is PackageLevel.RUNTIME

    def test_source_build_leans_language(self, blind):
        c = blind.classify("mylang", install_hint=InstallHint.SOURCE_BUILD)
        assert c.level is PackageLevel.LANGUAGE

    def test_invalid_hint_rejected(self, blind):
        with pytest.raises(ValueError):
            blind.classify("x", install_hint="nope")

    def test_empty_name_rejected(self, blind):
        with pytest.raises(ValueError):
            blind.classify("   ")


class TestSizePrior:
    def test_large_unknown_is_not_runtime(self, blind):
        c = blind.classify("bigthing", size_mb=400.0)
        assert c.level in (PackageLevel.OS, PackageLevel.LANGUAGE)

    def test_small_package_manager_install_is_runtime(self, blind):
        c = blind.classify("tinylib", size_mb=2.0,
                           install_hint=InstallHint.PACKAGE_MANAGER)
        assert c.level is PackageLevel.RUNTIME
        assert c.confidence > 0.6


class TestBatchAndReview:
    def test_classify_many(self, blind):
        results = blind.classify_many(["ubuntu", "python", "flask"])
        assert [c.level for c in results] == [
            PackageLevel.OS, PackageLevel.LANGUAGE, PackageLevel.RUNTIME
        ]

    def test_review_queue_contains_low_confidence(self, blind):
        results = blind.classify_many(["ubuntu", "zzqxj"])
        queue = blind.review_queue(results)
        assert [c.name for c in queue] == ["zzqxj"]

    def test_confidence_bounds(self, blind):
        for name in ("ubuntu", "python-dev", "weird-thing", "gcc"):
            c = blind.classify(name)
            assert 0.0 <= c.confidence <= 1.0


class TestAgainstCatalogGroundTruth:
    def test_heuristics_recover_catalog_tags(self):
        """Blind classification agrees with expert tags on most of the
        default catalog (the tool's acceptance bar)."""
        catalog = default_catalog()
        blind = PackageLevelClassifier()
        hits = 0
        total = 0
        for pkg in catalog.all_packages():
            c = blind.classify(pkg.name, size_mb=pkg.size_mb)
            total += 1
            hits += int(c.level is pkg.level)
        assert hits / total >= 0.7
