#!/usr/bin/env python
"""Online fine-tuning: adapting a trained MLCR policy to workload drift.

Trains an MLCR policy offline on the Overall workload family, then deploys
it on a *different* family (HI-Sim) two ways: frozen, and with online
fine-tuning enabled (Section VI-C/D: "the DRL model also supports online
fine-tuning to adjust model parameters").

Usage::

    python examples/online_adaptation.py [--episodes N] [--target HI-Sim]
"""

import argparse
import copy

from repro import SimulationConfig
from repro.analysis.report import ascii_table
from repro.core.finetune import OnlineFineTuner
from repro.core.mlcr import train_mlcr_scheduler
from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    make_training_factory,
    pool_sizes,
)
from repro.workloads.fstartbench import WORKLOAD_BUILDERS, overall_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=10)
    parser.add_argument("--target", default="HI-Sim",
                        choices=sorted(WORKLOAD_BUILDERS))
    parser.add_argument("--eval-seeds", type=int, default=2)
    args = parser.parse_args()

    scale = ExperimentScale.from_env()
    source_capacity = pool_sizes(overall_workload(seed=0))["Tight"]
    config = scale.mlcr_config()
    from dataclasses import replace

    config = replace(config, n_episodes=args.episodes)

    print(f"offline training on Overall@Tight ({source_capacity:.0f} MB), "
          f"{args.episodes} episodes...")
    scheduler, history = train_mlcr_scheduler(
        workload_factory=make_training_factory(
            lambda s: overall_workload(seed=s), scale
        ),
        sim_config=SimulationConfig(pool_capacity_mb=source_capacity),
        config=config,
    )
    print(f"best validation latency: {history.best_eval_latency:.1f}s\n")

    target_builder = WORKLOAD_BUILDERS[args.target]
    target_capacity = pool_sizes(target_builder(seed=0))["Tight"]
    frozen = copy.deepcopy(scheduler)
    tuned = OnlineFineTuner(scheduler, epsilon=0.05, updates_per_decision=2)

    rows = []
    for label, policy in (("frozen", frozen), ("online fine-tuned", tuned)):
        totals, colds = [], []
        for seed in range(args.eval_seeds):
            res = evaluate_scheduler(
                policy, target_builder(seed=seed), target_capacity, "Tight"
            )
            totals.append(res.total_startup_s)
            colds.append(res.cold_starts)
        rows.append([
            label,
            f"{sum(totals) / len(totals):.1f}",
            f"{sum(colds) / len(colds):.1f}",
        ])

    print(ascii_table(
        ["deployment", "total startup [s]", "cold starts"],
        rows,
        title=(f"drifted deployment: Overall-trained policy on "
               f"{args.target}@Tight ({target_capacity:.0f} MB)"),
    ))
    print(f"\nonline updates applied: {tuned.updates}")


if __name__ == "__main__":
    main()
