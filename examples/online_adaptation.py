#!/usr/bin/env python
"""Online adaptation on the live serving plane.

Spawns the ``repro serve`` HTTP plane in-process and drives it end-to-end
over real sockets: a cold burst, a warm burst (asserting the warm-hit rate
from ``/stats``), a workload *drift* answered by hot-swapping the
scheduling policy over ``POST /scheduler``, a quiet period in which the
keep-alive janitor scales the pool to zero, and a graceful drain whose
decision recording is replayed deterministically through the simulator
(the ``serve_replay`` contract: served ≡ replayed).

The engine runs on a scripted :class:`VirtualClock` wall source, so the
whole session is instant and byte-reproducible -- the same code serves
real traffic when handed the default :class:`WallClock`.

Every phase asserts its outcome: this example is an executable smoke
test, not a loose script.

Usage::

    python examples/online_adaptation.py [--burst N]
"""

import argparse
import asyncio

from repro.analysis.report import ascii_table
from repro.cluster.eventloop import VirtualClock
from repro.cluster.simulator import SimulationConfig
from repro.serve import (
    DecisionRecorder,
    ServeEngine,
    ServePlane,
    http_json,
    replay_recording,
)

WARM_MIX = ("hello-python", "hello-node")          # steady-state traffic
DRIFT_MIX = ("hello-java", "hello-go")             # the drifted workload


async def _burst(host, port, clock, t, functions, n):
    """Fire ``n`` sequential requests at virtual time ``t``; return them."""
    clock.advance_to(t)
    results = []
    for i in range(n):
        status, payload = await http_json(
            host, port, "POST", "/invoke",
            {"function": functions[i % len(functions)], "exec_s": 0.3},
        )
        assert status == 200, payload
        results.append(payload)
    return results


async def run_session(burst: int) -> None:
    clock = VirtualClock()
    recorder = DecisionRecorder()
    engine = ServeEngine(
        SimulationConfig(
            pool_capacity_mb=16_384.0,
            n_workers=2,
            worker_concurrency=8,
            bounded_telemetry=True,
            verify=True,
        ),
        scheduler="keepalive",
        wall=clock,
        keepalive_ttl_s=60.0,
        recorder=recorder,
    )
    plane = ServePlane(engine)
    await plane.start()
    host, port = plane.host, plane.port
    print(f"serving on http://{host}:{port} (virtual wall clock)\n")
    rows = []

    # Phase 1 -- cold burst: an empty pool, every request cold-starts.
    cold = await _burst(host, port, clock, 1.0, WARM_MIX, burst)
    assert all(r["cold_start"] for r in cold[:2]), "first hits must be cold"
    rows.append(["1 cold burst", "keepalive",
                 sum(r["cold_start"] for r in cold), burst])

    # Let the in-flight work finish (virtual seconds, one janitor sweep).
    clock.advance_to(30.0)
    plane.janitor.tick()
    assert engine.pooled_containers > 0, "pool should hold warm containers"

    # Phase 2 -- warm burst: same mix, the warm pool absorbs it.
    warm = await _burst(host, port, clock, 31.0, WARM_MIX, burst)
    rows.append(["2 warm burst", "keepalive",
                 sum(r["cold_start"] for r in warm), burst])
    status, stats = await http_json(host, port, "GET", "/stats")
    assert status == 200
    assert stats["warm_hit_rate"] >= 0.4, stats["warm_hit_rate"]
    print(f"warm-hit rate after steady bursts: {stats['warm_hit_rate']:.0%} "
          f"(p95 startup {stats['startup_latency']['p95_s'] * 1000:.0f} ms)")

    # Phase 3 -- drift: new functions arrive; adapt the policy online.
    status, swap = await http_json(
        host, port, "POST", "/scheduler", {"scheduler": "greedy"}
    )
    assert status == 200 and swap["previous"] == "keepalive"
    print(f"workload drift detected -> hot-swapped scheduler "
          f"{swap['previous']} -> {swap['scheduler']}")
    drift = await _burst(host, port, clock, 40.0, DRIFT_MIX, burst)
    rows.append(["3 drift burst", "greedy",
                 sum(r["cold_start"] for r in drift), burst])

    # Phase 4 -- quiet period: the janitor scales the pool to zero.
    clock.advance_to(40.0 + 200.0)  # far past the 60 s keep-alive TTL
    plane.janitor.tick()
    status, stats = await http_json(host, port, "GET", "/stats")
    assert stats["live_containers"] == 0, "TTL should reclaim everything"
    assert stats["scale_to_zero_events"] >= 1
    rows.append(["4 quiet period", "greedy", "-", 0])
    print("quiet period: keep-alive TTL scaled the warm pool to zero")

    # Live invariant monitors stayed clean throughout.
    status, health = await http_json(host, port, "GET", "/healthz")
    assert status == 200 and health["healthy"], health

    result = await plane.stop()
    summary = result.summary()
    print()
    print(ascii_table(
        ["phase", "scheduler", "cold starts", "requests"],
        [[str(c) for c in row] for row in rows],
        title=(f"online serving session: {summary['invocations']:.0f} "
               f"invocations, {summary['cold_starts']:.0f} cold starts"),
    ))

    # The recorded session replays byte-identically through the simulator.
    report = replay_recording(recorder.lines(), verify=True)
    assert report.ok, str(report.divergence)
    print(f"\nserve_replay: {report.n_decisions} decisions + "
          f"{report.n_swaps} swap replayed byte-identically")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--burst", type=int, default=12,
                        help="requests per traffic burst (default 12)")
    args = parser.parse_args()
    asyncio.run(run_session(args.burst))


if __name__ == "__main__":
    main()
