#!/usr/bin/env python
"""Zygote containers and pre-warming vs multi-level reuse.

Reproduces the related-work comparison of Section VII: provision one
"zygote" container per (OS, language) family -- holding the *union* of that
family's runtime packages (Li et al., ATC'22) -- and replay the overall
FStartBench workload under per-package delta pricing.  Contrast with
Greedy-Match, which needs no provisioning but only reuses Table-I level
matches.

Usage::

    python examples/zygote_prewarming.py [--pool tight|moderate|loose]
        [--seed N]
"""

import argparse

from repro import ClusterSimulator, SimulationConfig
from repro.analysis.report import ascii_table
from repro.experiments.common import pool_sizes
from repro.schedulers import (
    GreedyMatchScheduler,
    LRUScheduler,
    ZygoteScheduler,
    build_zygote_images,
)
from repro.workloads import overall_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pool", choices=["tight", "moderate", "loose"],
                        default="tight")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = overall_workload(seed=args.seed)
    capacity = pool_sizes(workload)[args.pool.capitalize()]
    zygotes = build_zygote_images(workload.function_specs())
    print(f"{len(zygotes)} zygote families for "
          f"{len(workload.function_specs())} functions:")
    for image in zygotes:
        print(f"  {image}")
    print()

    rows = []
    for scheduler, prewarm in (
        (LRUScheduler(), False),
        (GreedyMatchScheduler(), False),
        (ZygoteScheduler(), True),
    ):
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=capacity, delta_pricing=True),
            scheduler.make_eviction_policy(),
        )
        provisioned = 0
        if prewarm:
            for image in zygotes:
                if image.memory_mb <= sim.pool.free_mb:
                    sim.prewarm(image)
                    provisioned += 1
        t = sim.run(workload, scheduler).telemetry
        rows.append([
            scheduler.name,
            str(provisioned),
            f"{t.total_startup_latency_s:.1f}",
            str(t.cold_starts),
            f"{t.peak_warm_memory_mb:.0f}",
        ])

    print(ascii_table(
        ["method", "zygotes", "total startup [s]", "cold", "peak warm MB"],
        rows,
        title=(f"zygote vs multi-level reuse, {args.pool} pool "
               f"({capacity:.0f} MB, delta pricing)"),
    ))
    print("\nZygotes excel when the union images fit and the workload stays "
          "inside\nthe provisioned families; multi-level matching needs no "
          "provisioning at all.")


if __name__ == "__main__":
    main()
