#!/usr/bin/env python
"""Export the FStartBench workload suite as replayable JSON traces.

Generates all seven workload sets (plus the overall mix), writes each as a
self-contained trace file, and prints the full characterization report for
one of them.  Third parties can replay the traces through the simulator
without any of the generators.

Usage::

    python examples/fstartbench_export.py [--outdir DIR] [--seed N]
        [--report WORKLOAD]
"""

import argparse
from pathlib import Path

from repro.analysis.workload_report import full_report
from repro.workloads.fstartbench import WORKLOAD_BUILDERS, build_workload
from repro.workloads.serialization import load_workload, save_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="fstartbench_traces")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", default="Peak",
                        choices=sorted(WORKLOAD_BUILDERS))
    args = parser.parse_args()

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    for name in WORKLOAD_BUILDERS:
        workload = build_workload(name, seed=args.seed)
        path = outdir / f"{name.lower().replace('-', '_')}.json"
        save_workload(workload, path)
        # Round-trip check: the trace replays identically.
        reloaded = load_workload(path)
        assert len(reloaded) == len(workload)
        print(f"wrote {path} ({len(workload)} invocations, "
              f"{path.stat().st_size / 1024:.0f} KiB)")

    print(f"\n=== characterization of {args.report} ===\n")
    print(full_report(build_workload(args.report, seed=args.seed)))


if __name__ == "__main__":
    main()
