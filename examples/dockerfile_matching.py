#!/usr/bin/env python
"""Parse Dockerfile-style definitions and explore multi-level matching.

Walks through the paper's Section IV-A machinery on real-looking inputs:
parse two Dockerfiles into three-level package sets (Fig. 5), compute their
Table-I match level, and show the startup breakdown each reuse level buys
(Fig. 1's cost structure) together with the container cleaner's volume
operations.

Usage::

    python examples/dockerfile_matching.py
"""

from repro.analysis.breakdown import breakdown_table
from repro.containers.cleaner import ContainerCleaner
from repro.containers.container import Container, ContainerState
from repro.containers.costmodel import StartupCostModel
from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel, match_level
from repro.containers.volumes import VolumeStore
from repro.packages.catalog import default_catalog
from repro.packages.dockerfile import DockerfileParser
from repro.packages.similarity import jaccard_similarity

ML_SERVICE = """
# A Fig.5-style ML inference service
FROM debian-base:11
RUN apt-get install -y glibc==2.31 coreutils==8.32 ca-certificates==2023
RUN install python==3.9.17 pip==23
RUN pip install flask==2.3 tensorflow==2.12
WORKDIR /app
"""

DATA_SERVICE = """
# A pandas-based analytics function on the same base stack
FROM debian-base:11
RUN apt-get install -y glibc==2.31 coreutils==8.32 ca-certificates==2023
RUN install python==3.9.17 pip==23
RUN pip install flask==2.3 numpy==1.24 pandas==2.0
WORKDIR /app
"""


def main() -> None:
    catalog = default_catalog()
    parser = DockerfileParser(catalog)
    ml = parser.parse(ML_SERVICE)
    data = parser.parse(DATA_SERVICE)

    ml_image = FunctionImage.from_packages("ml-service", ml.packages)
    data_image = FunctionImage.from_packages("data-service", data.packages)

    print("parsed images:")
    for image in (ml_image, data_image):
        print(f"  {image}")
    print(f"\nJaccard similarity: "
          f"{jaccard_similarity(ml_image.packages, data_image.packages):.2f}")
    match = match_level(data_image, ml_image)
    print(f"Table-I match level (data-service vs warm ml-service container): "
          f"{match.name}\n")

    model = StartupCostModel()
    breakdowns = {
        level.name: model.breakdown(data_image, level, function_init_s=0.45)
        for level in MatchLevel
    }
    print(breakdown_table(
        breakdowns, title="data-service startup cost at each reuse level [s]"
    ))

    # Repack the warm ML container for the data function via the cleaner.
    store = VolumeStore()
    cleaner = ContainerCleaner(store)
    container = Container(1, ml_image, state=ContainerState.IDLE)
    cleaner.initial_mount(container, "ml-service")
    result = cleaner.repack(container, data_image, "data-service")
    print(f"\ncleaner repack at {result.match.name}: "
          f"{len(result.unmounted)} volumes unmounted, "
          f"{len(result.mounted)} mounted "
          f"({store.unmount_count} unmounts / {store.mount_count} mounts "
          "total)")
    print("user-data isolation: only", [
        v.owner_function for v in container.mounted_volumes
        if v.owner_function
    ], "data is mounted")


if __name__ == "__main__":
    main()
