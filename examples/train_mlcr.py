#!/usr/bin/env python
"""Train the MLCR DRL scheduler and evaluate it against all baselines.

The full paper pipeline (Algorithm 1): build a workload family, train the
masked DQN offline on held-out seeds, then evaluate on fresh seeds against
LRU / FaasCache / KeepAlive / Greedy-Match.

Usage::

    python examples/train_mlcr.py [--episodes N] [--pool tight|moderate|loose]
        [--workload Overall|HI-Sim|LO-Sim|...] [--verbose]
"""

import argparse
import time

import numpy as np

from repro import SimulationConfig
from repro.analysis.report import ascii_table
from repro.core.config import MLCRConfig
from repro.core.mlcr import train_mlcr_scheduler
from repro.drl.dqn import DQNConfig
from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    make_baselines,
    make_training_factory,
    pool_sizes,
)
from repro.workloads.fstartbench import WORKLOAD_BUILDERS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=16)
    parser.add_argument("--pool", choices=["tight", "moderate", "loose"],
                        default="tight")
    parser.add_argument("--workload", default="Overall",
                        choices=sorted(WORKLOAD_BUILDERS))
    parser.add_argument("--eval-seeds", type=int, default=3)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    builder = WORKLOAD_BUILDERS[args.workload]
    sizing = builder(seed=0)
    capacity = pool_sizes(sizing)[args.pool.capitalize()]
    scale = ExperimentScale.from_env()

    config = MLCRConfig(
        n_slots=scale.n_slots,
        model_dim=scale.model_dim,
        head_hidden=scale.model_dim,
        n_episodes=args.episodes,
        demo_episodes=4,
        eval_every=3,
        eval_episodes=2,
        epsilon_decay_steps=args.episodes * 250,
        shaping_coef=1.5,
        dqn=DQNConfig(batch_size=32, target_sync_every=150, gamma=0.99,
                      lr=7e-4),
    )

    print(f"training MLCR on {args.workload} at {args.pool} pool "
          f"({capacity:.0f} MB), {args.episodes} episodes...")
    t0 = time.time()
    scheduler, history = train_mlcr_scheduler(
        workload_factory=make_training_factory(
            lambda s: builder(seed=s), scale
        ),
        sim_config=SimulationConfig(pool_capacity_mb=capacity),
        config=config,
        verbose=args.verbose,
    )
    print(f"trained in {time.time() - t0:.1f}s; "
          f"training latency {history.episode_latencies[0]:.1f}s -> "
          f"{history.episode_latencies[-1]:.1f}s "
          f"(best validation {history.best_eval_latency:.1f}s)\n")

    results = {}
    for seed in range(args.eval_seeds):
        workload = builder(seed=seed)
        for policy in make_baselines() + [scheduler]:
            res = evaluate_scheduler(policy, workload, capacity,
                                     args.pool.capitalize())
            results.setdefault(policy.name, []).append(res)

    rows = []
    for name, runs in results.items():
        rows.append([
            name,
            f"{np.mean([r.total_startup_s for r in runs]):.1f}",
            f"{np.mean([r.mean_startup_s for r in runs]) * 1e3:.0f}",
            f"{np.mean([r.cold_starts for r in runs]):.1f}",
            f"{np.mean([r.evictions for r in runs]):.1f}",
        ])
    print(ascii_table(
        ["policy", "total startup [s]", "mean [ms]", "cold starts",
         "evictions"],
        rows,
        title=f"Evaluation on {args.eval_seeds} held-out seeds",
    ))


if __name__ == "__main__":
    main()
