#!/usr/bin/env python
"""Quickstart: simulate a serverless platform and compare warm-start policies.

Runs the FStartBench "Overall" workload (400 invocations of all 13 Table-II
functions) through the cluster simulator under four classic policies, then
prints a comparison table.  No DRL training involved -- see
``train_mlcr.py`` for the full MLCR pipeline.

Usage::

    python examples/quickstart.py [--seed N] [--pool tight|moderate|loose]
"""

import argparse

from repro import ClusterSimulator, SimulationConfig
from repro.analysis.report import ascii_table
from repro.experiments.common import pool_sizes
from repro.schedulers import (
    ColdOnlyScheduler,
    FaasCacheScheduler,
    GreedyMatchScheduler,
    KeepAliveScheduler,
    LRUScheduler,
)
from repro.workloads import overall_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pool", choices=["tight", "moderate", "loose"],
                        default="tight")
    args = parser.parse_args()

    workload = overall_workload(seed=args.seed)
    sizes = pool_sizes(workload)
    capacity = sizes[args.pool.capitalize()]
    print(f"workload: {len(workload)} invocations over "
          f"{workload.duration_s:.0f}s; warm pool: {args.pool} "
          f"({capacity:.0f} MB)\n")

    rows = []
    for scheduler in (
        ColdOnlyScheduler(),
        KeepAliveScheduler(),
        LRUScheduler(),
        FaasCacheScheduler(),
        GreedyMatchScheduler(),
    ):
        eviction = (
            scheduler.make_eviction_policy()
            if hasattr(scheduler, "make_eviction_policy")
            else None
        )
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=capacity), eviction
        )
        t = sim.run(workload, scheduler).telemetry
        rows.append([
            scheduler.name,
            f"{t.total_startup_latency_s:.1f}",
            f"{t.mean_startup_latency_s * 1e3:.0f}",
            str(t.cold_starts),
            str(t.warm_starts),
            f"{t.peak_warm_memory_mb:.0f}",
        ])

    print(ascii_table(
        ["policy", "total startup [s]", "mean [ms]", "cold", "warm",
         "peak warm MB"],
        rows,
        title="Warm-start policy comparison",
    ))
    print("\nMulti-level matching (Greedy-Match) converts cold starts into "
          "warm ones;\nthe DRL scheduler (see train_mlcr.py) decides *when* "
          "that pays off.")


if __name__ == "__main__":
    main()
