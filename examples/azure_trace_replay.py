#!/usr/bin/env python
"""Replay a synthetic Azure-like production trace through the simulator.

Demonstrates the workload-generation substrate beyond FStartBench: a trace
with Zipf-skewed function popularity (~19 % of functions invoked exactly
once, >40 % at most twice -- the statistics the paper cites to motivate
cross-function reuse), bursty arrivals, and randomly composed three-level
images.  Multi-level matching shines here precisely because most functions
are too rare for same-function keep-alive to ever hit.

Usage::

    python examples/azure_trace_replay.py [--functions N] [--invocations N]
        [--burstiness B] [--seed N]
"""

import argparse

from repro import ClusterSimulator, SimulationConfig
from repro.analysis.report import ascii_table
from repro.experiments.common import pool_sizes
from repro.schedulers import GreedyMatchScheduler, KeepAliveScheduler, LRUScheduler
from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--functions", type=int, default=60)
    parser.add_argument("--invocations", type=int, default=600)
    parser.add_argument("--burstiness", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    generator = AzureTraceGenerator(AzureTraceConfig(
        n_functions=args.functions,
        n_invocations=args.invocations,
        burstiness=args.burstiness,
    ))
    trace = generator.generate(seed=args.seed)
    stats = generator.trace_statistics(trace)
    print(
        f"trace: {len(trace)} invocations of {args.functions} functions; "
        f"{stats['frac_invoked_once']:.0%} invoked once, "
        f"{stats['frac_invoked_le2']:.0%} invoked <= 2 times, "
        f"hottest function {stats['max_invocations']:.0f} invocations"
    )
    print(f"mean pairwise image similarity: "
          f"{trace.metadata['similarity']:.2f}\n")

    capacity = pool_sizes(trace)["Tight"]
    rows = []
    for scheduler in (KeepAliveScheduler(), LRUScheduler(),
                      GreedyMatchScheduler()):
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=capacity),
            scheduler.make_eviction_policy(),
        )
        t = sim.run(trace, scheduler).telemetry
        hist = t.match_histogram()
        rows.append([
            scheduler.name,
            f"{t.total_startup_latency_s:.1f}",
            str(t.cold_starts),
            str(hist[list(hist)[1]] + hist[list(hist)[2]]),  # L1+L2 reuses
            str(hist[list(hist)[3]]),                         # L3 reuses
        ])

    print(ascii_table(
        ["policy", "total startup [s]", "cold", "partial reuse (L1+L2)",
         "full reuse (L3)"],
        rows,
        title=f"Azure-like trace, Tight pool ({capacity:.0f} MB)",
    ))
    print("\nWith mostly-rare functions, exact-match policies rarely find a "
          "warm hit;\nmulti-level matching recovers reuse from *similar* "
          "containers instead.")


if __name__ == "__main__":
    main()
