#!/usr/bin/env python
"""Capture micro-benchmark means into ``benchmarks/bench_baseline.json``.

Runs the micro-benchmark files under pytest-benchmark, extracts each test's
mean runtime, and writes them as a ``{test_name: mean_seconds}`` baseline.
The autouse guard in ``benchmarks/conftest.py`` fails any benchmark whose
mean regresses more than 30% past its baseline entry.

Usage::

    python tools/bench_capture.py                 # refresh the baseline
    python tools/bench_capture.py --output o.json # write elsewhere
    python tools/bench_capture.py benchmarks/bench_state_encoder.py

Re-run after intentional performance changes and commit the updated
baseline alongside them.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmarks excluded from the default capture because they train DRL
#: policies or replay full experiment grids -- far too slow to re-run on
#: every baseline refresh.  Every file here must still exist (the
#: ``tests/test_bench_manifest.py`` drift test checks both directions).
HEAVY_BENCHMARKS = frozenset({
    "bench_ablations.py",
    "bench_ext_azure.py",
    "bench_ext_sharding.py",
    "bench_ext_zygote.py",
    "bench_fig10_memory.py",
    "bench_fig11a_similarity.py",
    "bench_fig11b_variance.py",
    "bench_fig11c_arrivals.py",
    "bench_fig1_breakdown.py",
    "bench_fig2_motivation.py",
    "bench_fig3_dockerhub.py",
    "bench_fig8_overall.py",
    "bench_fig9_trajectory.py",
    "bench_overhead_inference.py",
    "bench_tab2_functions.py",
})


def discover_benchmarks() -> List[str]:
    """Every ``benchmarks/bench_*.py`` file, repo-relative and sorted."""
    return sorted(
        f"benchmarks/{path.name}"
        for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    )


def default_benchmarks() -> List[str]:
    """Discovered benchmarks minus the heavy exclusion set."""
    return [
        path for path in discover_benchmarks()
        if Path(path).name not in HEAVY_BENCHMARKS
    ]


#: Benchmarks fast enough to re-run on every capture: everything under
#: ``benchmarks/`` that is not explicitly listed as heavy, so a new
#: ``bench_*.py`` file joins the baseline automatically (or must be added
#: to :data:`HEAVY_BENCHMARKS`, which the manifest drift test enforces).
DEFAULT_BENCHMARKS = tuple(default_benchmarks())

DEFAULT_OUTPUT = REPO_ROOT / "benchmarks" / "bench_baseline.json"


def capture(bench_paths: Sequence[str]) -> Dict[str, float]:
    """Run the benchmarks and return ``{test_name: mean_seconds}``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # The guard compares against the file being regenerated; disable it.
    env["REPRO_BENCH_GUARD"] = "off"
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        result = subprocess.run(
            [sys.executable, "-m", "pytest", *bench_paths,
             "--benchmark-only", f"--benchmark-json={json_path}", "-q"],
            cwd=REPO_ROOT, env=env,
        )
        if result.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {result.returncode})")
        data = json.loads(json_path.read_text())
    means: Dict[str, float] = {}
    for bench in data["benchmarks"]:
        # "name" is the bare test name, e.g. "test_match_level_rate".
        means[bench["name"]] = bench["stats"]["mean"]
    return dict(sorted(means.items()))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="*",
                        default=list(DEFAULT_BENCHMARKS),
                        help="benchmark files to capture")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="baseline JSON path")
    args = parser.parse_args(argv)
    means = capture(args.benchmarks)
    output = Path(args.output)
    output.write_text(json.dumps(means, indent=2, sort_keys=True) + "\n")
    for name, mean in means.items():
        print(f"{name}: {mean * 1e3:.3f} ms")
    print(f"wrote {len(means)} baselines to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
