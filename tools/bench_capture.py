#!/usr/bin/env python
"""Capture micro-benchmark baselines into ``benchmarks/bench_baseline.json``.

Runs the micro-benchmark files under pytest-benchmark, extracts each test's
*minimum* round time, and writes them as a ``{test_name: min_seconds}``
baseline.  The autouse guard in ``benchmarks/conftest.py`` fails any
benchmark whose min regresses more than 30% past its baseline entry.  The
min -- not the mean -- is tracked because shared/virtualized hosts add
steal time that inflates the mean unboundedly under load, while the
fastest of hundreds of rounds only moves when the code itself slows down.

Usage::

    python tools/bench_capture.py                 # refresh the baseline
    python tools/bench_capture.py --repeat 3      # jitter-robust refresh
    python tools/bench_capture.py --output o.json # write elsewhere
    python tools/bench_capture.py benchmarks/bench_state_encoder.py
    python tools/bench_capture.py --compare benchmarks/bench_baseline.json

``--compare`` is the gate mode: instead of rewriting the baseline it runs
the same benchmarks and exits non-zero if any min regressed more than 30%
(the ``REGRESSION_FACTOR`` in ``benchmarks/conftest.py``) past the given
baseline file.  ``tools/verify_capture.py --with-bench`` invokes it as a
fourth verification stage.

``--repeat N`` captures N times and keeps each benchmark's slowest min --
extra insurance against a capture run where even the best round was
degraded (faster-than-baseline never fails, so erring slow is safe).

Alongside each timing, the per-file *peak RSS* stamped by the conftest
fixture (``extra_info["peak_rss_mb"]``) is captured as a
``{test_name}[rss_mb]`` entry, so ``--compare`` also gates memory
regressions under the same cold-process conditions the baseline was
captured in.  (The in-run guard deliberately skips RSS: ``ru_maxrss`` is
process-wide and monotone, so warm multi-file runs would false-fail.)

Re-run after intentional performance changes and commit the updated
baseline alongside them.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmarks excluded from the default capture because they train DRL
#: policies or replay full experiment grids -- far too slow to re-run on
#: every baseline refresh.  Every file here must still exist (the
#: ``tests/test_bench_manifest.py`` drift test checks both directions).
HEAVY_BENCHMARKS = frozenset({
    "bench_ablations.py",
    "bench_ext_azure.py",
    "bench_ext_sharding.py",
    "bench_ext_zygote.py",
    "bench_fig10_memory.py",
    "bench_fig11a_similarity.py",
    "bench_fig11b_variance.py",
    "bench_fig11c_arrivals.py",
    "bench_fig1_breakdown.py",
    "bench_fig2_motivation.py",
    "bench_fig3_dockerhub.py",
    "bench_fig8_overall.py",
    "bench_fig9_trajectory.py",
    "bench_overhead_inference.py",
    "bench_tab2_functions.py",
})


def discover_benchmarks() -> List[str]:
    """Every ``benchmarks/bench_*.py`` file, repo-relative and sorted."""
    return sorted(
        f"benchmarks/{path.name}"
        for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    )


def default_benchmarks() -> List[str]:
    """Discovered benchmarks minus the heavy exclusion set."""
    return [
        path for path in discover_benchmarks()
        if Path(path).name not in HEAVY_BENCHMARKS
    ]


#: Benchmarks fast enough to re-run on every capture: everything under
#: ``benchmarks/`` that is not explicitly listed as heavy, so a new
#: ``bench_*.py`` file joins the baseline automatically (or must be added
#: to :data:`HEAVY_BENCHMARKS`, which the manifest drift test enforces).
DEFAULT_BENCHMARKS = tuple(default_benchmarks())

DEFAULT_OUTPUT = REPO_ROOT / "benchmarks" / "bench_baseline.json"

#: Allowed slowdown in ``--compare`` mode; mirrors the autouse guard's
#: ``REGRESSION_FACTOR`` in ``benchmarks/conftest.py`` (kept as a literal
#: here because conftest modules are not importable outside pytest).
REGRESSION_FACTOR = 1.30

#: Suffix marking a baseline entry as a peak-RSS (MB) capture rather than
#: a min round time (seconds).
RSS_SUFFIX = "[rss_mb]"


def capture(bench_paths: Sequence[str]) -> Dict[str, float]:
    """Run the benchmarks and return ``{test_name: min_seconds}``.

    Each file runs in its own pytest process: timings are
    context-sensitive (a process warmed up by earlier benchmark files
    measures ~1.5x faster mins than a cold one), so the baseline pins the
    cold-process worst case.  Any warmer multi-file run can then only come
    in faster, which the guard never fails.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # The guard compares against the file being regenerated; disable it.
    env["REPRO_BENCH_GUARD"] = "off"
    mins: Dict[str, float] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for i, path in enumerate(bench_paths):
            json_path = Path(tmp) / f"bench{i}.json"
            result = subprocess.run(
                [sys.executable, "-m", "pytest", path,
                 "--benchmark-only", f"--benchmark-json={json_path}", "-q"],
                cwd=REPO_ROOT, env=env,
            )
            if result.returncode != 0:
                raise SystemExit(
                    f"benchmark run failed ({path}, exit {result.returncode})"
                )
            data = json.loads(json_path.read_text())
            for bench in data["benchmarks"]:
                # Tests that set ``benchmark.extra_info["no_guard"]`` opted
                # out of regression tracking (timings below load-jitter
                # resolution).
                if (bench.get("extra_info") or {}).get("no_guard"):
                    continue
                # "name" is the bare test name, e.g. "test_match_level_rate".
                mins[bench["name"]] = bench["stats"]["min"]
                rss = (bench.get("extra_info") or {}).get("peak_rss_mb")
                if rss:
                    mins[f"{bench['name']}{RSS_SUFFIX}"] = rss
    return dict(sorted(mins.items()))


def compare(mins: Dict[str, float], baseline: Dict[str, float],
            factor: float = REGRESSION_FACTOR) -> List[str]:
    """Regression lines for every min past ``factor`` x its baseline.

    Benchmarks absent from the baseline are reported informationally (a
    fresh ``bench_*.py`` file is not a regression) but do not fail the
    gate; the returned list contains only genuine regressions.
    """
    regressions: List[str] = []
    for name, observed in mins.items():
        fmt = _fmt_rss if name.endswith(RSS_SUFFIX) else _fmt_ms
        base = baseline.get(name)
        if base is None:
            print(f"  new (no baseline): {name} {fmt(observed)}")
            continue
        allowed = base * factor
        if observed > allowed:
            regressions.append(
                f"{name}: {fmt(observed)} > {factor:.2f}x baseline "
                f"({fmt(base)} -> allowed {fmt(allowed)})"
            )
        else:
            print(f"  ok: {name} {fmt(observed)} (baseline {fmt(base)})")
    return regressions


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def _fmt_rss(mb: float) -> str:
    return f"{mb:.1f} MB"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="*",
                        default=list(DEFAULT_BENCHMARKS),
                        help="benchmark files to capture")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="baseline JSON path")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="gate mode: compare against this baseline "
                             "instead of rewriting it; exits non-zero on "
                             f"any >{REGRESSION_FACTOR:.2f}x regression")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="capture N times and keep each benchmark's "
                             "slowest min (jitter-robust baseline)")
    args = parser.parse_args(argv)
    mins = capture(args.benchmarks)
    for _ in range(args.repeat - 1):
        for name, observed in capture(args.benchmarks).items():
            mins[name] = max(observed, mins.get(name, 0.0))
    if args.compare is not None:
        baseline = json.loads(Path(args.compare).read_text())
        regressions = compare(mins, baseline)
        for line in regressions:
            print(f"REGRESSION {line}")
        status = "FAILED" if regressions else "ok"
        print(f"bench gate: {status} ({len(mins)} benchmarks, "
              f"{len(regressions)} regressions)")
        return 1 if regressions else 0
    output = Path(args.output)
    output.write_text(json.dumps(mins, indent=2, sort_keys=True) + "\n")
    for name, observed in mins.items():
        fmt = _fmt_rss if name.endswith(RSS_SUFFIX) else _fmt_ms
        print(f"{name}: {fmt(observed)}")
    print(f"wrote {len(mins)} baselines to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
