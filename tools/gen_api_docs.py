#!/usr/bin/env python
"""Generate API_REFERENCE.md from the library's docstrings.

Walks every module under ``repro``, extracts public classes/functions and
their (first-paragraph) docstrings, and emits a single markdown reference.
Run from the repository root::

    python tools/gen_api_docs.py [output.md]

The doc-coverage test guarantees every listed item has a docstring, so the
generated reference is always complete.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def walk_modules():
    """Yield every repro module in deterministic order."""
    import repro

    yield repro
    infos = sorted(
        pkgutil.walk_packages(repro.__path__, prefix="repro."),
        key=lambda i: i.name,
    )
    for info in infos:
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def first_paragraph(doc: str) -> str:
    """The docstring's lead paragraph, joined to one line."""
    lines: List[str] = []
    for line in (doc or "").strip().splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def public_members(module) -> Iterator[Tuple[str, object]]:
    """Public classes/functions defined (not re-exported) in ``module``."""
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def signature_of(obj) -> str:
    """Best-effort signature rendering."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return "(...)"


def render() -> str:
    """Render the full API reference as markdown."""
    out: List[str] = [
        "# API Reference",
        "",
        "_Generated from docstrings by `tools/gen_api_docs.py`;"
        " regenerate after API changes._",
    ]
    for module in walk_modules():
        members = list(public_members(module))
        out.append(f"\n## `{module.__name__}`\n")
        out.append(first_paragraph(module.__doc__))
        for name, obj in members:
            kind = "class" if inspect.isclass(obj) else "def"
            out.append(f"\n### `{kind} {name}{signature_of(obj)}`\n")
            out.append(first_paragraph(obj.__doc__))
            if inspect.isclass(obj):
                for attr_name in sorted(vars(obj)):
                    attr = vars(obj)[attr_name]
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr):
                        out.append(
                            f"- `{attr_name}{signature_of(attr)}` — "
                            f"{first_paragraph(attr.__doc__)}"
                        )
                    elif isinstance(attr, property):
                        out.append(
                            f"- `{attr_name}` (property) — "
                            f"{first_paragraph(attr.fget.__doc__ or '')}"
                        )
    return "\n".join(out) + "\n"


def main(argv: List[str]) -> int:
    """CLI entry point."""
    target = Path(argv[0]) if argv else Path("API_REFERENCE.md")
    target.write_text(render())
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
