#!/usr/bin/env python
"""Run the full verification gate: invariants, golden traces, oracles.

Three stages, in order:

1. **Invariant sweep** -- every FStartBench workload x every scheduler
   with ``SimulationConfig.verify`` on, once clean and once under fault
   injection (crashes + stragglers on a sharded, concurrency-limited
   cluster).  Any :class:`InvariantViolation` fails the gate.
2. **Golden traces** -- every checked-in trace under
   ``tests/golden_traces/`` is replayed and must be bit-identical; the
   first divergence is printed.
3. **Differential oracles** -- every oracle from
   :mod:`repro.verify.differential` (including ``cached_vs_fresh``, the
   experiment-cache equivalence check).

``--with-bench`` appends a fourth stage: ``tools/bench_capture.py
--compare benchmarks/bench_baseline.json``, which re-runs the
micro-benchmarks and fails on any >30% mean regression.  Off by default
because it takes benchmark-suite time, not verification time.

Exits non-zero on the first failing stage (later stages still run so the
report is complete).  Usage::

    PYTHONPATH=src python tools/verify_capture.py
    PYTHONPATH=src python tools/verify_capture.py --stage traces
    PYTHONPATH=src python tools/verify_capture.py --with-bench
    PYTHONPATH=src python tools/verify_capture.py --regold   # rewrite goldens
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster.faults import FaultConfig  # noqa: E402
from repro.cluster.simulator import (  # noqa: E402
    ClusterSimulator,
    SimulationConfig,
)
from repro.experiments.parallel import (  # noqa: E402
    SCHEDULER_FACTORIES,
    build_scheduler,
)
from repro.verify.differential import run_oracles  # noqa: E402
from repro.verify.invariants import InvariantViolation  # noqa: E402
from repro.verify.trace import (  # noqa: E402
    diff_traces,
    read_trace,
    record_golden_traces,
    replay_trace,
)
from repro.workloads.fstartbench import (  # noqa: E402
    WORKLOAD_BUILDERS,
    build_workload,
)

GOLDEN_ROOT = REPO_ROOT / "tests" / "golden_traces"

FAULTED = dict(
    faults=FaultConfig(crash_prob=0.1, straggler_prob=0.2, seed=3),
    per_worker_pools=True,
    worker_concurrency=2,
)


def _run_cell(workload_name: str, scheduler_key: str, **overrides) -> int:
    """One verified run; returns the number of checkpoints executed."""
    workload = build_workload(workload_name, seed=0)
    scheduler = build_scheduler(scheduler_key)
    scheduler.reset()
    if hasattr(scheduler, "observe_workload"):
        scheduler.observe_workload(workload)
    eviction = (
        scheduler.make_eviction_policy()
        if hasattr(scheduler, "make_eviction_policy")
        else None
    )
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=1500.0, verify=True, **overrides),
        eviction,
    )
    sim.run(workload, scheduler)
    return sim.verifier.checks_run


def stage_invariants() -> bool:
    """Sweep workloads x schedulers x {clean, faulted}; True when clean."""
    ok = True
    checks = 0
    for workload_name in WORKLOAD_BUILDERS:
        for scheduler_key in sorted(SCHEDULER_FACTORIES):
            for label, overrides in (("clean", {}), ("faulted", FAULTED)):
                try:
                    checks += _run_cell(workload_name, scheduler_key,
                                        **overrides)
                except InvariantViolation as violation:
                    ok = False
                    print(f"FAIL {workload_name} x {scheduler_key} "
                          f"({label}): {violation}")
    cells = len(WORKLOAD_BUILDERS) * len(SCHEDULER_FACTORIES) * 2
    status = "ok" if ok else "FAILED"
    print(f"invariants: {status} ({cells} cells, {checks} checkpoints)")
    return ok


def stage_traces() -> bool:
    """Replay every checked-in golden trace; True when all bit-identical."""
    paths = sorted(GOLDEN_ROOT.glob("*.jsonl"))
    if not paths:
        print(f"traces: FAILED (no golden traces under {GOLDEN_ROOT})")
        return False
    ok = True
    for path in paths:
        golden = read_trace(path)
        replayed = replay_trace(golden, verify=True)
        divergence = diff_traces(golden, replayed)
        if divergence is not None or golden.to_jsonl() != replayed.to_jsonl():
            ok = False
            print(f"FAIL {path.name}: {divergence or 'serialized forms differ'}")
    status = "ok" if ok else "FAILED"
    print(f"traces: {status} ({len(paths)} golden traces)")
    return ok


def stage_oracles() -> bool:
    """Run every differential oracle; True when all agree."""
    results = run_oracles()
    for result in results:
        print(f"  {result}")
    ok = all(r.ok for r in results)
    status = "ok" if ok else "FAILED"
    print(f"oracles: {status} ({len(results)} oracles)")
    return ok


def stage_bench() -> bool:
    """Run the benchmark regression gate; True when nothing regressed."""
    import subprocess

    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "bench_capture.py"),
         "--compare",
         str(REPO_ROOT / "benchmarks" / "bench_baseline.json")],
        cwd=REPO_ROOT,
    )
    ok = result.returncode == 0
    print(f"bench: {'ok' if ok else 'FAILED'}")
    return ok


STAGES = {
    "invariants": stage_invariants,
    "traces": stage_traces,
    "oracles": stage_oracles,
    "bench": stage_bench,
}

#: Stages run without ``--stage``/``--with-bench``; the bench gate is
#: opt-in because it costs benchmark-suite minutes.
DEFAULT_STAGES = ("invariants", "traces", "oracles")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stage", choices=sorted(STAGES), default=None,
                        help="run a single stage instead of the default set")
    parser.add_argument("--with-bench", action="store_true",
                        help="also run the benchmark regression gate "
                             "(tools/bench_capture.py --compare)")
    parser.add_argument("--regold", action="store_true",
                        help="rewrite the golden traces and exit")
    args = parser.parse_args(argv)
    if args.regold:
        for path in record_golden_traces(GOLDEN_ROOT):
            print(f"wrote {path}")
        return 0
    if args.stage:
        stages = [args.stage]
    else:
        stages = list(DEFAULT_STAGES)
        if args.with_bench:
            stages.append("bench")
    ok = True
    for stage_name in stages:
        ok = STAGES[stage_name]() and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
