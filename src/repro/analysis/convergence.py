"""Training-curve analysis for DRL runs.

Summaries of :class:`~repro.core.trainer.TrainingHistory` curves: smoothing,
improvement statistics, convergence detection and curve stability -- the
quantities the ablation discussion cites (e.g. "the mask accelerates
convergence", paper Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def moving_average(values: Sequence[float], window: int = 5) -> np.ndarray:
    """Centered-left moving average (partial windows at the start)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return arr
    out = np.empty_like(arr)
    cumulative = np.cumsum(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        total = cumulative[i] - (cumulative[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


@dataclass(frozen=True)
class ConvergenceSummary:
    """Scalar description of one training curve (lower-is-better metric)."""

    first: float
    last: float
    best: float
    improvement_pct: float        # first -> last, positive = improved
    convergence_episode: int      # first episode within tolerance of best
    stability: float              # std of the last third / |mean| of it

    @property
    def converged(self) -> bool:
        return self.convergence_episode >= 0


def summarize_curve(
    values: Sequence[float], window: int = 3, tolerance: float = 0.05
) -> ConvergenceSummary:
    """Summarize a lower-is-better training curve (e.g. episode latency).

    ``convergence_episode`` is the first episode whose smoothed value is
    within ``tolerance`` (relative) of the smoothed minimum; ``-1`` when the
    curve never stabilizes (fewer than two points).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty curve")
    smooth = moving_average(arr, window)
    best = float(smooth.min())
    threshold = best * (1.0 + tolerance)
    within = np.flatnonzero(smooth <= threshold)
    convergence = int(within[0]) if within.size else -1

    tail = arr[-max(1, arr.size // 3):]
    mean_tail = float(np.mean(tail))
    stability = float(np.std(tail) / abs(mean_tail)) if mean_tail else 0.0
    first, last = float(arr[0]), float(arr[-1])
    improvement = 100.0 * (first - last) / first if first else 0.0
    return ConvergenceSummary(
        first=first,
        last=last,
        best=float(arr.min()),
        improvement_pct=improvement,
        convergence_episode=convergence,
        stability=stability,
    )


def compare_curves(
    curves: dict, window: int = 3, tolerance: float = 0.05
) -> str:
    """ASCII comparison of several labeled training curves."""
    from repro.analysis.report import ascii_table

    rows = []
    for label, values in curves.items():
        s = summarize_curve(values, window, tolerance)
        rows.append([
            label,
            f"{s.first:.1f}",
            f"{s.last:.1f}",
            f"{s.best:.1f}",
            f"{s.improvement_pct:+.1f}%",
            str(s.convergence_episode),
            f"{s.stability:.3f}",
        ])
    return ascii_table(
        ["curve", "first", "last", "best", "improvement", "conv@ep",
         "tail std/mean"],
        rows,
        title="training-curve comparison",
    )
