"""Workload characterization reports.

FStartBench's value is in *knowing* what a workload stresses; this module
renders the full characterization for any :class:`Workload`: per-function
composition, the pairwise similarity matrix (Metric 1), package-size spread
(Metric 2) and an arrival-rate histogram (Metric 3), all as ASCII.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_bar_chart, ascii_table
from repro.packages.similarity import jaccard_similarity
from repro.workloads.metrics import workload_similarity, workload_size_variance
from repro.workloads.workload import Workload


def composition_table(workload: Workload) -> str:
    """Per-function invocation counts, sizes and timing profiles."""
    counts = workload.invocation_counts()
    rows: List[List[str]] = []
    for spec in workload.function_specs():
        rows.append([
            spec.name,
            str(counts.get(spec.name, 0)),
            f"{spec.image.total_size_mb:.0f}",
            f"{spec.image.memory_mb:.0f}",
            f"{spec.function_init_s:.2f}",
            f"{spec.exec_time_mean_s:.2f}",
        ])
    rows.sort(key=lambda r: -int(r[1]))
    return ascii_table(
        ["function", "invocations", "image MB", "mem MB", "init s", "exec s"],
        rows,
        title=f"composition of {workload.name!r} ({len(workload)} invocations)",
    )


def similarity_matrix(workload: Workload) -> str:
    """Pairwise Jaccard similarity between the workload's function types."""
    specs = workload.function_specs()
    header = ["fn \\ fn"] + [s.name.split("-")[0][:8] for s in specs]
    rows = []
    for a in specs:
        row = [a.name[:16]]
        for b in specs:
            row.append(f"{jaccard_similarity(a.image.packages, b.image.packages):.2f}")
        rows.append(row)
    return ascii_table(header, rows, title="pairwise Jaccard similarity")


def arrival_histogram(workload: Workload, bins: int = 12) -> str:
    """Arrivals per time bucket (reveals Uniform / Peak / Random shapes)."""
    times = workload.arrival_times()
    if times.size == 0:
        return "no invocations"
    edges = np.linspace(0.0, max(times.max(), 1e-9), bins + 1)
    counts, _ = np.histogram(times, bins=edges)
    labels = [f"{edges[i]:5.0f}-{edges[i+1]:5.0f}s" for i in range(bins)]
    return ascii_bar_chart(labels, counts.astype(float), width=30,
                           title="arrival histogram")


def interarrival_summary(workload: Workload) -> Dict[str, float]:
    """Burstiness statistics of the arrival process."""
    gaps = workload.interarrival_times()
    if gaps.size == 0:
        return {"mean_gap_s": 0.0, "cv": 0.0, "burstiness_index": 0.0}
    mean = float(gaps.mean())
    std = float(gaps.std())
    cv = std / mean if mean > 0 else 0.0
    # Goh & Barabasi burstiness in [-1, 1]: 0 for Poisson, 1 for extreme.
    burstiness = (std - mean) / (std + mean) if (std + mean) > 0 else 0.0
    return {"mean_gap_s": mean, "cv": cv, "burstiness_index": burstiness}


def full_report(workload: Workload) -> str:
    """The complete characterization of a workload."""
    stats = interarrival_summary(workload)
    lines = [
        composition_table(workload),
        "",
        similarity_matrix(workload),
        "",
        arrival_histogram(workload),
        "",
        f"mean pairwise similarity (Metric 1): "
        f"{workload_similarity(workload):.3f}",
        f"package size variance   (Metric 2): "
        f"{workload_size_variance(workload):.0f}",
        f"interarrival mean/cv/burstiness (Metric 3): "
        f"{stats['mean_gap_s']:.2f}s / {stats['cv']:.2f} / "
        f"{stats['burstiness_index']:+.2f}",
    ]
    return "\n".join(lines)
