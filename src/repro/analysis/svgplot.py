"""Dependency-free SVG charts for the paper's figures.

matplotlib is not available in every environment this repo targets, so the
figure files are rendered directly as SVG: grouped bar charts (Fig 8, 10),
line charts (Fig 9) and box charts (Fig 11).  The goal is readable artifact
files, not a plotting library -- scales are linear, styling minimal.

All coordinates are computed in floating-point pixels on a fixed canvas;
output is a plain XML string (validated by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union
from xml.sax.saxutils import escape

from repro.analysis.stats import BoxStats

#: Qualitative palette (colorblind-safe-ish).
PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377")


@dataclass
class _Frame:
    """Plot geometry: outer canvas and inner data region."""

    width: int = 640
    height: int = 400
    margin_left: int = 70
    margin_right: int = 20
    margin_top: int = 40
    margin_bottom: int = 60

    @property
    def inner_width(self) -> float:
        return self.width - self.margin_left - self.margin_right

    @property
    def inner_height(self) -> float:
        return self.height - self.margin_top - self.margin_bottom

    def x(self, frac: float) -> float:
        return self.margin_left + frac * self.inner_width

    def y(self, frac: float) -> float:
        """frac = 0 at the bottom of the data region."""
        return self.margin_top + (1.0 - frac) * self.inner_height


class SvgCanvas:
    """Accumulates SVG elements and serializes the document."""

    def __init__(self, frame: _Frame, title: str = "") -> None:
        self.frame = frame
        self._parts: List[str] = []
        if title:
            self.text(frame.width / 2, frame.margin_top / 2, title,
                      size=14, anchor="middle", bold=True)

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             opacity: float = 1.0) -> None:
        """Add a filled rectangle."""
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}" fill-opacity="{opacity}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#333", width: float = 1.0) -> None:
        """Add a line segment."""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], stroke: str,
                 width: float = 2.0) -> None:
        """Add an unfilled polyline."""
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def text(self, x: float, y: float, content: str, size: int = 11,
             anchor: str = "start", bold: bool = False,
             rotate: float = 0.0) -> None:
        """Add a text label."""
        weight = ' font-weight="bold"' if bold else ""
        transform = (
            f' transform="rotate({rotate:.0f} {x:.1f} {y:.1f})"'
            if rotate else ""
        )
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}"'
            f"{weight}{transform}>{escape(content)}</text>"
        )

    def to_svg(self) -> str:
        """Serialize the document to an SVG string."""
        f = self.frame
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{f.width}" '
            f'height="{f.height}" viewBox="0 0 {f.width} {f.height}">\n'
            f'<rect width="{f.width}" height="{f.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the SVG document to ``path``."""
        path = Path(path)
        path.write_text(self.to_svg())
        return path


# ---------------------------------------------------------------------------
# Shared scaffolding
# ---------------------------------------------------------------------------

def _nice_ticks(peak: float, n: int = 5) -> List[float]:
    """Round tick positions covering [0, peak]."""
    if peak <= 0:
        return [0.0, 1.0]
    raw = peak / n
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step * n >= peak:
            break
    return [i * step for i in range(n + 1)]


def _axes(canvas: SvgCanvas, ticks: List[float], y_label: str) -> float:
    """Draw the y axis with grid lines; returns the axis maximum."""
    f = canvas.frame
    top = ticks[-1] or 1.0
    canvas.line(f.x(0), f.y(0), f.x(1), f.y(0))            # x axis
    canvas.line(f.x(0), f.y(0), f.x(0), f.y(1))            # y axis
    for tick in ticks:
        frac = tick / top
        canvas.line(f.x(0), f.y(frac), f.x(1), f.y(frac),
                    stroke="#ddd", width=0.5)
        canvas.text(f.x(0) - 6, f.y(frac) + 4, f"{tick:g}", anchor="end")
    canvas.text(14, f.y(0.5), y_label, anchor="middle", rotate=-90)
    return top


def _legend(canvas: SvgCanvas, names: Sequence[str]) -> None:
    f = canvas.frame
    x = f.x(0) + 8
    y = f.margin_top + 6
    for i, name in enumerate(names):
        color = PALETTE[i % len(PALETTE)]
        canvas.rect(x, y + 14 * i, 10, 10, fill=color)
        canvas.text(x + 14, y + 9 + 14 * i, name)


# ---------------------------------------------------------------------------
# Chart types
# ---------------------------------------------------------------------------

def grouped_bar_chart(
    categories: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str = "",
    y_label: str = "",
) -> SvgCanvas:
    """One bar group per category, one colored bar per series (Fig 8/10)."""
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(f"series {name!r} length mismatch")
    frame = _Frame()
    canvas = SvgCanvas(frame, title)
    peak = max((max(v) for v in series.values()), default=1.0)
    top = _axes(canvas, _nice_ticks(peak), y_label)

    n_cat, n_series = len(categories), len(series)
    group_width = 1.0 / max(n_cat, 1)
    bar_frac = 0.8 * group_width / max(n_series, 1)
    for ci, category in enumerate(categories):
        center = (ci + 0.5) * group_width
        canvas.text(frame.x(center), frame.y(0) + 16, category,
                    anchor="middle")
        for si, (name, values) in enumerate(series.items()):
            height_frac = values[ci] / top
            x0 = center - 0.4 * group_width + si * bar_frac
            canvas.rect(
                frame.x(x0),
                frame.y(height_frac),
                bar_frac * frame.inner_width,
                height_frac * frame.inner_height,
                fill=PALETTE[si % len(PALETTE)],
            )
    _legend(canvas, list(series))
    return canvas


def line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> SvgCanvas:
    """Multi-series line chart over shared x values (Fig 9)."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    if not x_values:
        raise ValueError("need at least one x value")
    frame = _Frame()
    canvas = SvgCanvas(frame, title)
    peak = max((max(v) for v in series.values()), default=1.0)
    top = _axes(canvas, _nice_ticks(peak), y_label)
    x_min, x_max = min(x_values), max(x_values)
    span = (x_max - x_min) or 1.0

    for si, (name, values) in enumerate(series.items()):
        points = [
            (frame.x((x - x_min) / span), frame.y(v / top))
            for x, v in zip(x_values, values)
        ]
        canvas.polyline(points, stroke=PALETTE[si % len(PALETTE)])
    for frac, value in ((0.0, x_min), (0.5, (x_min + x_max) / 2),
                        (1.0, x_max)):
        canvas.text(frame.x(frac), frame.y(0) + 16, f"{value:g}",
                    anchor="middle")
    canvas.text(frame.x(0.5), frame.height - 10, x_label, anchor="middle")
    _legend(canvas, list(series))
    return canvas


def box_chart(
    groups: Dict[str, Dict[str, BoxStats]],
    title: str = "",
    y_label: str = "",
) -> SvgCanvas:
    """Box-and-whisker chart: outer groups (workloads) x inner boxes
    (methods), the Fig 11 layout."""
    if not groups:
        raise ValueError("need at least one group")
    frame = _Frame()
    canvas = SvgCanvas(frame, title)
    peak = max(
        stats.maximum for methods in groups.values()
        for stats in methods.values()
    )
    top = _axes(canvas, _nice_ticks(peak), y_label)

    method_names = list(next(iter(groups.values())))
    n_groups = len(groups)
    group_width = 1.0 / n_groups
    box_frac = 0.8 * group_width / max(len(method_names), 1)
    for gi, (group_name, methods) in enumerate(groups.items()):
        center = (gi + 0.5) * group_width
        canvas.text(frame.x(center), frame.y(0) + 16, group_name,
                    anchor="middle")
        for mi, name in enumerate(method_names):
            s = methods[name]
            color = PALETTE[mi % len(PALETTE)]
            x0 = center - 0.4 * group_width + mi * box_frac
            cx = frame.x(x0 + box_frac / 2)
            w = box_frac * frame.inner_width * 0.7
            # whiskers
            canvas.line(cx, frame.y(s.minimum / top),
                        cx, frame.y(s.maximum / top), stroke=color)
            # interquartile box
            canvas.rect(
                cx - w / 2,
                frame.y(s.q3 / top),
                w,
                max(1.0, (s.q3 - s.q1) / top * frame.inner_height),
                fill=color, opacity=0.55,
            )
            # median bar
            canvas.line(cx - w / 2, frame.y(s.median / top),
                        cx + w / 2, frame.y(s.median / top),
                        stroke="#000", width=1.5)
    _legend(canvas, method_names)
    return canvas
