"""Analysis utilities: statistics, box-chart summaries and ASCII reports."""

from repro.analysis.stats import (
    BoxStats,
    box_stats,
    mean_confidence_interval,
    reduction_pct,
)
from repro.analysis.report import ascii_bar_chart, ascii_table, format_seconds
from repro.analysis.breakdown import breakdown_rows, breakdown_table

__all__ = [
    "BoxStats",
    "box_stats",
    "mean_confidence_interval",
    "reduction_pct",
    "ascii_table",
    "ascii_bar_chart",
    "format_seconds",
    "breakdown_rows",
    "breakdown_table",
]
