"""ASCII rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent and dependency
free (no matplotlib available offline).

The telemetry-consuming reports read only aggregate methods
(``queueing_summary``, ``worker_utilization``), so they duck-type over both
the columnar :class:`~repro.cluster.telemetry.Telemetry` and the legacy
row-oriented reference -- the parity suite renders both and asserts the
bytes match.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.telemetry import Telemetry


def format_seconds(value: float) -> str:
    """Human-friendly seconds with stable width."""
    if value >= 100:
        return f"{value:8.1f}s"
    return f"{value:8.2f}s"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal bar chart (one bar per label)."""
    values = list(values)
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def queueing_report(telemetry: "Telemetry", title: str = "Startup queueing") -> str:
    """Render a run's queueing-delay summary as a table.

    Empty string when the run never enforced a worker concurrency limit
    (no queueing telemetry to report).
    """
    if not telemetry.queueing_enabled:
        return ""
    q = telemetry.queueing_summary()
    rows = [
        ["queued starts", f"{int(q['queued_starts'])}"],
        ["total queueing", format_seconds(q["total_queueing_s"]).strip()],
        ["mean queueing", format_seconds(q["mean_queueing_s"]).strip()],
        ["p95 queueing", format_seconds(q["p95_queueing_s"]).strip()],
        ["max queue depth", f"{int(q['max_queue_depth'])}"],
    ]
    return ascii_table(["metric", "value"], rows, title=title)


def surrogate_report(
    telemetry: "Telemetry", title: str = "Distilled-policy audit"
) -> str:
    """Render a run's surrogate-audit counters as a table.

    Shows how many distilled-surrogate decisions were double-checked
    against the full network and how many disagreed (distillation drift).
    Empty string when the run never audited a surrogate (no distilled
    policy attached, or auditing disabled).
    """
    audits = getattr(telemetry, "surrogate_audits", 0)
    if not audits:
        return ""
    disagreements = telemetry.surrogate_disagreements
    rows = [
        ["audited decisions", f"{audits}"],
        ["disagreements", f"{disagreements}"],
        ["agreement", f"{1.0 - disagreements / audits:.1%}"],
    ]
    return ascii_table(["metric", "value"], rows, title=title)


def prewarm_report(
    telemetry: "Telemetry", title: str = "Proactive pre-warming"
) -> str:
    """Render a run's pre-warm accounting as a table.

    Shows how many containers were created ahead of arrivals, how many
    were actually claimed (forecast hits) and how many died unused
    (forecast waste).  Empty string when the run never pre-warmed.
    """
    issued = getattr(telemetry, "prewarms_issued", 0)
    if not issued:
        return ""
    p = telemetry.prewarm_summary()
    rows = [
        ["pre-warms issued", f"{int(p['prewarms_issued'])}"],
        ["reused (hits)", f"{int(p['prewarm_reuses'])}"],
        ["wasted (never claimed)", f"{int(p['prewarm_wasted'])}"],
        ["hit rate", f"{p['prewarm_reuses'] / p['prewarms_issued']:.1%}"],
    ]
    return ascii_table(["metric", "value"], rows, title=title)


def lending_report(
    telemetry: "Telemetry", title: str = "Container lending"
) -> str:
    """Render a run's Pagurus-lending counters as a table.

    Shows how many idle containers were re-specialized toward other
    functions and how many of those were later claimed by their target
    function (the lend hit rate).  Empty string when the run never lent.
    """
    issued = getattr(telemetry, "lends_issued", 0)
    if not issued:
        return ""
    s = telemetry.lending_summary()
    rows = [
        ["lends issued", f"{int(s['lends_issued'])}"],
        ["reused by target (hits)", f"{int(s['lend_reuses'])}"],
        ["hit rate", f"{s['lend_reuses'] / s['lends_issued']:.1%}"],
    ]
    return ascii_table(["metric", "value"], rows, title=title)


def worker_utilization_report(
    telemetry: "Telemetry", title: str = "Worker utilization"
) -> str:
    """Render per-worker busy fractions as a bar chart.

    Busy time (startup + execution seconds) over the run's duration, one
    bar per worker.  Empty string when no busy time was recorded (i.e.
    admission control was disabled).
    """
    utilization = telemetry.worker_utilization()
    if not utilization:
        return ""
    labels = [f"worker {w}" for w in utilization]
    values = [u * 100.0 for u in utilization.values()]
    return ascii_bar_chart(labels, values, unit="%", title=title)
