"""ASCII rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent and dependency
free (no matplotlib available offline).
"""

from __future__ import annotations

from typing import List, Sequence


def format_seconds(value: float) -> str:
    """Human-friendly seconds with stable width."""
    if value >= 100:
        return f"{value:8.1f}s"
    return f"{value:8.2f}s"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal bar chart (one bar per label)."""
    values = list(values)
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)
