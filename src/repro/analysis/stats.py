"""Statistics helpers for the experiment reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the paper's box charts (Fig. 11)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def as_tuple(self) -> Tuple[float, float, float, float, float]:
        """The five-number summary as a plain tuple."""
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute the five-number summary (plus mean) of ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("box_stats needs at least one value")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return BoxStats(
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation mean +/- half-width confidence interval."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    half = float(z * arr.std(ddof=1) / np.sqrt(arr.size))
    return mean, half


def reduction_pct(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``.

    Positive = improvement (the paper's "MLCR reduces latency by X %").
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline
