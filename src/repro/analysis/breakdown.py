"""Startup-breakdown rendering (the Fig. 1 stacked bars, as a table)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import ascii_table
from repro.containers.costmodel import StartupBreakdown, StartupPhase

_PHASES = [
    StartupPhase.CREATE,
    StartupPhase.CLEAN,
    StartupPhase.PULL,
    StartupPhase.INSTALL,
    StartupPhase.RUNTIME_INIT,
    StartupPhase.FUNCTION_INIT,
]


def breakdown_rows(
    breakdowns: Dict[str, StartupBreakdown]
) -> List[Tuple[str, ...]]:
    """One row per labeled breakdown: phases + total, in seconds."""
    rows: List[Tuple[str, ...]] = []
    for label, bd in breakdowns.items():
        phases = bd.as_dict()
        rows.append(
            (
                label,
                *(f"{phases[p]:.2f}" for p in _PHASES),
                f"{bd.total_s:.2f}",
            )
        )
    return rows


def breakdown_table(
    breakdowns: Dict[str, StartupBreakdown], title: str = ""
) -> str:
    """Render labeled breakdowns as a phase-by-phase ASCII table."""
    headers = ["start", *(p.value for p in _PHASES), "total"]
    return ascii_table(headers, breakdown_rows(breakdowns), title=title)
