"""Content-addressed experiment cache: skip re-simulating unchanged cells.

Every grid cell, pool sizing and ``runall`` section is a pure function of
its inputs (the simulator is deterministic by construction).  This module
keys each such result by a SHA-256 digest over a canonical JSON payload of
everything the result depends on:

* the task fields themselves (scheduler, workload, seed, pool, capacity);
* the :class:`~repro.cluster.simulator.SimulationConfig` fingerprint,
  including the cost-model parameter values;
* the content-address versions --
  :data:`~repro.workloads.fstartbench.WORKLOAD_GENERATOR_VERSION`,
  :data:`~repro.containers.costmodel.COST_MODEL_VERSION`, this module's
  :data:`ENGINE_VERSION` and :data:`CACHE_FORMAT_VERSION`.

Results persist as compact columnar summaries (a keys column plus a values
column, floats serialized with shortest-round-trip ``repr`` so the cache
round-trip is bit-exact) under ``.repro_cache/``:

* ``cells/<digest>.json`` -- one grid cell's ``(method, summary)``;
* ``pools/<digest>.json`` -- Tight/Moderate/Loose capacities per workload;
* ``sections/<digest>.md`` -- one ``runall`` section's report body.

Invalidation is by construction: changing a config knob, a seed, or any of
the version constants changes the digest, so stale entries are simply never
addressed again (``prune()`` removes them).  The ``cached_vs_fresh``
differential oracle and the hypothesis parity suite hold cache hits to
byte-identical reports; ``REPRO_CACHE=off`` (or ``--no-cache``) disables
the cache and ``REPRO_CACHE_DIR`` relocates it.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, TYPE_CHECKING

from repro.cluster.simulator import SimulationConfig
from repro.containers.costmodel import COST_MODEL_VERSION
from repro.workloads.fstartbench import WORKLOAD_GENERATOR_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.parallel import GridCell, GridTask

#: On-disk cache layout version; bump on any change to the stored file
#: schema (every older entry becomes unaddressable).
CACHE_FORMAT_VERSION = 1

#: Umbrella version of the simulation engine's *behaviour*: bump whenever
#: scheduler, simulator, eviction or DRL changes alter any deterministic
#: run outcome that is not captured by the fingerprinted configs.  The
#: golden traces catch the same drift at verification time; this constant
#: is how a behaviour change declares itself to the cache.
ENGINE_VERSION = 1


def _json_safe(value):
    """Make ``value`` canonically JSON-serializable (handles inf/nan)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def digest_payload(payload: Dict) -> str:
    """SHA-256 hex digest of a canonical (sorted-keys) JSON payload."""
    canonical = json.dumps(_json_safe(payload), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def config_fingerprint(config: SimulationConfig) -> Dict:
    """Primitive-field fingerprint of a simulation configuration.

    Captures every knob that changes run outcomes: capacity, worker
    topology, pricing mode, fault probabilities and the full cost-model
    parameter set.  ``verify`` and ``trace`` are observation-only and
    deliberately excluded -- they must not fork the cache address space.
    """
    params = config.cost_model.params
    return {
        "pool_capacity_mb": config.pool_capacity_mb,
        "n_workers": config.n_workers,
        "delta_pricing": config.delta_pricing,
        "per_worker_pools": config.per_worker_pools,
        "worker_concurrency": config.worker_concurrency,
        "worker_capacity_mb": config.worker_capacity_mb,
        "faults": {
            "crash_prob": config.faults.crash_prob,
            "straggler_prob": config.faults.straggler_prob,
            "straggler_factor": config.faults.straggler_factor,
            "seed": config.faults.seed,
        },
        "cost_model": {
            "create_s": params.create_s,
            "bandwidth_mb_per_s": params.bandwidth_mb_per_s,
            "per_package_pull_s": params.per_package_pull_s,
            "clean_s": params.clean_s,
            "runtime_init_s": dict(params.runtime_init_s),
            "default_runtime_init_s": params.default_runtime_init_s,
            "warm_runtime_factor": params.warm_runtime_factor,
            "warm_function_factor": params.warm_function_factor,
        },
    }


def version_stamp() -> Dict[str, int]:
    """The version constants baked into every cache key."""
    return {
        "cache_format": CACHE_FORMAT_VERSION,
        "engine": ENGINE_VERSION,
        "workload_gen": WORKLOAD_GENERATOR_VERSION,
        "cost_model": COST_MODEL_VERSION,
    }


def default_cache_root() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache/``."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def cache_enabled_by_env() -> bool:
    """Whether the environment permits caching (``REPRO_CACHE`` != off)."""
    return os.environ.get("REPRO_CACHE", "").lower() not in ("off", "0")


@dataclass
class ExperimentCache:
    """Content-addressed store for cells, pool sizings and section texts.

    ``enabled=None`` defers to :func:`cache_enabled_by_env`; a disabled
    cache answers every lookup with a miss and stores nothing, so callers
    thread one object through unconditionally.  ``hits`` / ``misses``
    count cell, pool and section lookups alike.
    """

    root: Optional[Path] = None
    enabled: Optional[bool] = None
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.enabled is None:
            self.enabled = cache_enabled_by_env()
        self.root = Path(self.root) if self.root is not None \
            else default_cache_root()

    # -- plumbing -----------------------------------------------------------
    def _read(self, bucket: str, key: str, suffix: str) -> Optional[str]:
        if not self.enabled:
            return None
        path = self.root / bucket / f"{key}{suffix}"
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return text

    def _write(self, bucket: str, key: str, suffix: str, text: str) -> None:
        if not self.enabled:
            return
        directory = self.root / bucket
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{key}{suffix}"
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text)
        tmp.replace(path)

    # -- grid cells ---------------------------------------------------------
    def cell_key(self, task: "GridTask") -> str:
        """Content address of one grid task.

        The payload enumerates the result-determining fields explicitly;
        ``GridTask.stream`` is deliberately absent -- streaming and batch
        feeds are summary-identical by design (the
        ``streaming_vs_materialized`` oracle enforces it), so both route
        to the same cache entry.
        """
        payload = {
            "kind": "grid_cell",
            "versions": version_stamp(),
            "scheduler": task.scheduler,
            "workload": task.workload,
            "seed": task.seed,
            "pool_label": task.pool_label,
            "capacity_mb": task.capacity_mb,
            "sim_config": config_fingerprint(
                SimulationConfig(pool_capacity_mb=task.capacity_mb)
            ),
        }
        return digest_payload(payload)

    def get_cell(self, task: "GridTask") -> Optional["GridCell"]:
        """Cached outcome of ``task``, or ``None`` (miss / disabled /
        corrupt entry)."""
        from repro.experiments.parallel import GridCell

        text = self._read("cells", self.cell_key(task), ".json")
        if text is None:
            return None
        try:
            data = json.loads(text)
            method = data["method"]
            summary = dict(zip(data["keys"],
                               array("d", data["values"])))
            if len(summary) != len(data["keys"]):
                raise ValueError("duplicate summary keys")
        except (ValueError, KeyError, TypeError):
            # Corrupt or truncated entry: treat as a miss (it will be
            # rewritten after the fresh run).
            self.hits -= 1
            self.misses += 1
            return None
        return GridCell(task=task, method=method, summary=summary)

    def put_cell(self, cell: "GridCell") -> None:
        """Persist one cell as a columnar ``(keys, values)`` summary."""
        data = {
            "version": CACHE_FORMAT_VERSION,
            "task": {
                "scheduler": cell.task.scheduler,
                "workload": cell.task.workload,
                "seed": cell.task.seed,
                "pool_label": cell.task.pool_label,
                "capacity_mb": cell.task.capacity_mb,
            },
            "method": cell.method,
            "keys": list(cell.summary.keys()),
            "values": [float(v) for v in cell.summary.values()],
        }
        self._write("cells", self.cell_key(cell.task), ".json",
                    json.dumps(data))

    # -- pool sizings -------------------------------------------------------
    def pool_key(self, workload: str, seed: int) -> str:
        """Content address of one workload's Tight/Moderate/Loose sizing."""
        payload = {
            "kind": "pool_sizes",
            "versions": version_stamp(),
            "workload": workload,
            "seed": seed,
        }
        return digest_payload(payload)

    def get_pool_sizes(self, workload: str,
                       seed: int) -> Optional[Dict[str, float]]:
        """Cached capacity map for ``workload``/``seed``, or ``None``."""
        text = self._read("pools", self.pool_key(workload, seed), ".json")
        if text is None:
            return None
        try:
            data = json.loads(text)
            return dict(zip(data["labels"], array("d", data["values"])))
        except (ValueError, KeyError, TypeError):
            self.hits -= 1
            self.misses += 1
            return None

    def put_pool_sizes(self, workload: str, seed: int,
                       sizes: Dict[str, float]) -> None:
        """Persist one workload's capacity map."""
        data = {
            "version": CACHE_FORMAT_VERSION,
            "labels": list(sizes.keys()),
            "values": [float(v) for v in sizes.values()],
        }
        self._write("pools", self.pool_key(workload, seed), ".json",
                    json.dumps(data))

    # -- report sections ----------------------------------------------------
    def section_key(self, name: str, scale_fields: Dict) -> str:
        """Content address of one ``runall`` section's report body."""
        payload = {
            "kind": "runall_section",
            "versions": version_stamp(),
            "section": name,
            "scale": scale_fields,
        }
        return digest_payload(payload)

    def get_section(self, name: str, scale_fields: Dict) -> Optional[str]:
        """Cached report body for a section, or ``None``."""
        return self._read("sections", self.section_key(name, scale_fields),
                          ".md")

    def put_section(self, name: str, scale_fields: Dict, body: str) -> None:
        """Persist one section's report body."""
        self._write("sections", self.section_key(name, scale_fields),
                    ".md", body)

    # -- maintenance --------------------------------------------------------
    def prune(self) -> int:
        """Delete every stored entry; returns the number removed.

        Content addressing never *reuses* stale entries -- they just stop
        being addressed -- so pruning is purely a disk-space operation.
        """
        removed = 0
        if self.root is None or not self.root.exists():
            return removed
        for bucket in ("cells", "pools", "sections"):
            directory = self.root / bucket
            if not directory.exists():
                continue
            for path in directory.iterdir():
                if path.is_file():
                    path.unlink()
                    removed += 1
        return removed


def pool_sizes_cached(workload_name: str, seed: int,
                      cache: Optional[ExperimentCache]) -> Dict[str, float]:
    """Tight/Moderate/Loose capacities, via the cache when available.

    A miss measures :func:`repro.experiments.common.pool_sizes` with an
    unbounded reference run (one full simulation) and stores the result;
    a hit skips the reference run entirely.  Round-trip is bit-exact, so
    downstream grids are byte-identical with the cache on or off.
    """
    from repro.experiments.common import pool_sizes
    from repro.experiments.parallel import cached_workload

    if cache is not None:
        cached = cache.get_pool_sizes(workload_name, seed)
        if cached is not None:
            return cached
    sizes = pool_sizes(cached_workload(workload_name, seed))
    if cache is not None:
        cache.put_pool_sizes(workload_name, seed, sizes)
    return sizes
