"""Figure 11: benchmark evaluation across workload features.

Three subfigures, each a box chart of total startup latency over pool sizes
{25, 50, 75, 100}% of Loose and repeated seeds:

* (a) function similarity: HI-Sim vs LO-Sim,
* (b) package-size variance: LO-Var vs HI-Var,
* (c) arrival patterns: Uniform / Peak / Random.

Expected shapes: every method does better on HI-Sim than LO-Sim and on
LO-Var than HI-Var; Peak is the hardest arrival pattern; MLCR is lowest
throughout with the largest margins on the hard variants (LO-Sim, HI-Var,
Peak).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ascii_table
from repro.analysis.stats import BoxStats, box_stats
from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    loose_capacity,
    make_baselines,
    train_mlcr_for,
)
from repro.experiments.fig8_overall import METHOD_ORDER
from repro.workloads.fstartbench import (
    hi_sim_workload,
    hi_var_workload,
    lo_sim_workload,
    lo_var_workload,
    peak_workload,
    random_workload,
    uniform_workload,
)
from repro.workloads.workload import Workload

POOL_FRACTIONS = (0.25, 0.50, 0.75, 1.00)

SUBFIGURES: Dict[str, Dict[str, Callable[..., Workload]]] = {
    "a:similarity": {"HI-Sim": hi_sim_workload, "LO-Sim": lo_sim_workload},
    "b:variance": {"LO-Var": lo_var_workload, "HI-Var": hi_var_workload},
    "c:arrival": {
        "Uniform": uniform_workload,
        "Peak": peak_workload,
        "Random": random_workload,
    },
}


@dataclass(frozen=True)
class Fig11Box:
    """Latency distribution of one (workload, method) over pools x seeds."""

    workload: str
    method: str
    stats: BoxStats
    samples: Tuple[float, ...]


@dataclass(frozen=True)
class Fig11Result:
    subfigure: str
    boxes: List[Fig11Box]
    loose_mb: Dict[str, float]
    repeats: int
    pool_fractions: Tuple[float, ...] = POOL_FRACTIONS

    def box(self, workload: str, method: str) -> Fig11Box:
        """The (workload, method) box of the result."""
        for b in self.boxes:
            if b.workload == workload and b.method == method:
                return b
        raise KeyError((workload, method))

    def mean_of(self, workload: str, method: str) -> float:
        """Mean total startup latency of one (workload, method) box."""
        return self.box(workload, method).stats.mean


def run_subfigure(
    subfigure: str,
    scale: Optional[ExperimentScale] = None,
    pool_fractions: Optional[Sequence[float]] = None,
) -> Fig11Result:
    """Run one of ``"a:similarity"``, ``"b:variance"``, ``"c:arrival"``."""
    if subfigure not in SUBFIGURES:
        raise KeyError(
            f"unknown subfigure {subfigure!r}; choose from {sorted(SUBFIGURES)}"
        )
    scale = scale or ExperimentScale.from_env()
    if pool_fractions is None:
        pool_fractions = scale.fig11_pool_fractions
    builders = SUBFIGURES[subfigure]

    boxes: List[Fig11Box] = []
    loose_by_workload: Dict[str, float] = {}
    for wl_name, builder in builders.items():
        loose = loose_capacity(builder(seed=0))
        loose_by_workload[wl_name] = loose
        samples: Dict[str, List[float]] = {m: [] for m in METHOD_ORDER}
        for frac in pool_fractions:
            capacity = frac * loose
            mlcr = train_mlcr_for(
                wl_name, lambda s, b=builder: b(seed=s), capacity, scale
            )
            for seed in range(scale.repeats):
                workload = builder(seed=seed)
                for scheduler in make_baselines() + [mlcr]:
                    res = evaluate_scheduler(
                        scheduler, workload, capacity, f"{frac:.0%}"
                    )
                    samples[scheduler.name].append(res.total_startup_s)
        for method in METHOD_ORDER:
            boxes.append(
                Fig11Box(
                    workload=wl_name,
                    method=method,
                    stats=box_stats(samples[method]),
                    samples=tuple(samples[method]),
                )
            )
    return Fig11Result(
        subfigure=subfigure,
        boxes=boxes,
        loose_mb=loose_by_workload,
        repeats=scale.repeats,
        pool_fractions=tuple(pool_fractions),
    )


def report(result: Fig11Result) -> str:
    """Render the result as the paper-style ASCII report."""
    rows = []
    workloads = list(dict.fromkeys(b.workload for b in result.boxes))
    for wl in workloads:
        for method in METHOD_ORDER:
            s = result.box(wl, method).stats
            rows.append(
                [
                    wl,
                    method,
                    f"{s.minimum:.1f}",
                    f"{s.q1:.1f}",
                    f"{s.median:.1f}",
                    f"{s.q3:.1f}",
                    f"{s.maximum:.1f}",
                    f"{s.mean:.1f}",
                ]
            )
    return ascii_table(
        ["workload", "method", "min", "q1", "median", "q3", "max", "mean"],
        rows,
        title=(
            f"Fig 11{result.subfigure}: total startup latency [s] over "
            f"pool sizes {[f'{f:.0%}' for f in result.pool_fractions]} x "
            f"{result.repeats} seeds"
        ),
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    for sub in SUBFIGURES:
        print(report(run_subfigure(sub)))
        print()
