"""Parallel experiment runner: fan a scheduler/workload grid over workers.

The experiment suite replays thousands of simulations that are completely
independent of each other: one per ``(scheduler, workload, pool size,
seed)`` cell.  This module materializes that grid as picklable
:class:`GridTask` descriptions and fans them across ``multiprocessing``
workers.

Determinism is by construction:

* a task carries *names and seeds*, never live objects -- each worker
  rebuilds the workload and a fresh scheduler, so results are a pure
  function of the task (workloads are memoized per process by
  ``(name, seed)``, which is equivalence-preserving because
  ``build_workload`` is deterministic and workloads are frozen);
* results return in task order (``Pool.map`` preserves it), so the merged
  telemetry and the rendered report are byte-identical for any ``jobs``
  value, including ``jobs=1`` (which short-circuits to an in-process loop).

IPC is columnar: a worker ships back ``(method, summary-keys tuple,
array('d') values)`` -- a few hundred bytes -- instead of a pickled object
graph, and both the serial and the parallel path round-trip through the
same packer so their cells are identical by construction.  With an
:class:`~repro.experiments.cache.ExperimentCache` attached, cached cells
are served from disk and only the misses fan out to workers.

Wired into ``python -m repro.experiments.runall --jobs N`` and
``python -m repro simulate --jobs N``.  MLCR is absent from
:data:`SCHEDULER_FACTORIES` on purpose: trained policies are not cheap to
rebuild per task (see ``repro.experiments.common.train_mlcr_for`` and its
in-process cache).
"""

from __future__ import annotations

import multiprocessing
import os
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ascii_table
from repro.cluster.lanes import (
    SCHEDULER_CLASS_NAMES,
    ArrivalTable,
    LaneKernel,
    LaneSpec,
    lane_supported_scheduler,
)
from repro.experiments.cache import ExperimentCache, pool_sizes_cached
from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
)
from repro.workloads.fstartbench import build_workload
from repro.workloads.workload import Workload

#: Scheduler registry: CLI name -> class name in :mod:`repro.schedulers`.
#: Every entry builds with no constructor arguments, which is what makes
#: grid tasks picklable and worker-rebuildable.  The mapping is shared
#: with the lane kernel (:data:`repro.cluster.lanes.SCHEDULER_CLASS_NAMES`)
#: so every registry key has a lane path by construction -- there is no
#: supported-but-unlisted scheduler that could silently fall back to the
#: sequential driver under ``lanes > 1``.
SCHEDULER_FACTORIES: Dict[str, str] = dict(SCHEDULER_CLASS_NAMES)

#: The paper's four baselines, in ``make_baselines()`` order.
BASELINE_KEYS: Tuple[str, ...] = ("lru", "faascache", "keepalive", "greedy")

#: The default grid's scheduler set: the paper baselines plus the three
#: extension policy families (MPC pre-warm, Pagurus lending, offline Q).
GRID_KEYS: Tuple[str, ...] = BASELINE_KEYS + ("mpc", "lending", "offline")


def build_scheduler(key: str):
    """Instantiate a scheduler from its registry ``key``."""
    import repro.schedulers as schedulers

    try:
        class_name = SCHEDULER_FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {key!r}; choose from {sorted(SCHEDULER_FACTORIES)}"
        ) from None
    return getattr(schedulers, class_name)()


@dataclass(frozen=True)
class GridTask:
    """One cell of the experiment grid (picklable, name-and-seed only).

    ``stream`` feeds the cell through ``ClusterSimulator.run_stream``
    instead of batch ``run``.  Both paths produce identical summaries by
    design (enforced by the ``streaming_vs_materialized`` oracle), so the
    flag is excluded from the experiment cache's content address -- a cell
    computed either way serves the other.
    """

    scheduler: str      # key into SCHEDULER_FACTORIES
    workload: str       # key into WORKLOAD_BUILDERS
    seed: int
    pool_label: str     # "Tight" / "Moderate" / "Loose" (cosmetic)
    capacity_mb: float
    stream: bool = False


@dataclass(frozen=True)
class GridCell:
    """The merged-telemetry outcome of one grid task."""

    task: GridTask
    method: str                  # scheduler display name
    summary: Dict[str, float]    # Telemetry.summary() of the run

    @property
    def total_startup_s(self) -> float:
        """Total startup latency of the run."""
        return self.summary["total_startup_s"]

    @property
    def cold_starts(self) -> float:
        """Cold-start count of the run."""
        return self.summary["cold_starts"]


#: Packed IPC form of one cell: ``(method, summary keys, summary values)``.
#: Keys are a tuple of interned strings and values a flat ``array('d')``
#: block, so pickling a worker result costs a few hundred bytes instead of
#: an object graph; doubles round-trip exactly.
PackedCell = Tuple[str, Tuple[str, ...], "array"]

#: Per-process workload memo keyed by ``(name, seed)``: grid tasks in the
#: same worker that share a workload draw skip rebuilding it.  Safe because
#: :class:`~repro.workloads.workload.Workload` is frozen and
#: ``build_workload`` is deterministic, so reuse is observationally
#: identical to a rebuild.
_WORKLOAD_CACHE: Dict[Tuple[str, int], Workload] = {}


def cached_workload(name: str, seed: int) -> Workload:
    """Build (or fetch the process-local memo of) one workload draw."""
    key = (name, seed)
    workload = _WORKLOAD_CACHE.get(key)
    if workload is None:
        workload = _WORKLOAD_CACHE[key] = build_workload(name, seed=seed)
    return workload


def clear_workload_cache() -> None:
    """Drop the process-local workload memo (used by tests)."""
    _WORKLOAD_CACHE.clear()
    _ARRIVAL_TABLE_CACHE.clear()


def _arrival_table_cache_cap() -> int:
    """Size bound of the per-process arrival-table memo.

    ``REPRO_ARRIVAL_TABLE_CACHE`` overrides the default of 8 tables; a
    20k-function table costs real memory, so the memo must not accumulate
    one entry per ``(workload, seed)`` across a large grid.  Values below
    1 are clamped to 1 (the memo is useless without at least the current
    draw).
    """
    raw = os.environ.get("REPRO_ARRIVAL_TABLE_CACHE", "")
    try:
        cap = int(raw)
    except ValueError:
        cap = 8
    return max(1, cap) if raw else 8


#: Per-process columnar lowering memo keyed by ``(name, seed)``: every lane
#: replaying the same workload draw shares one read-only
#: :class:`~repro.cluster.lanes.ArrivalTable`.  Bounded LRU (see
#: :func:`_arrival_table_cache_cap`): hits refresh recency, inserts beyond
#: the cap evict the least-recently-used table.  Eviction is
#: equivalence-preserving -- a re-lowered table is bit-identical to the
#: evicted one.
_ARRIVAL_TABLE_CACHE: "OrderedDict[Tuple[str, int], ArrivalTable]" = (
    OrderedDict()
)


def cached_arrival_table(name: str, seed: int) -> ArrivalTable:
    """Columnar lowering of one workload draw (bounded process memo)."""
    key = (name, seed)
    table = _ARRIVAL_TABLE_CACHE.get(key)
    if table is None:
        table = ArrivalTable(cached_workload(name, seed))
        _ARRIVAL_TABLE_CACHE[key] = table
        cap = _arrival_table_cache_cap()
        while len(_ARRIVAL_TABLE_CACHE) > cap:
            _ARRIVAL_TABLE_CACHE.popitem(last=False)
    else:
        _ARRIVAL_TABLE_CACHE.move_to_end(key)
    return table


def lane_supported(task: GridTask) -> bool:
    """Whether ``task`` can run on the lane kernel.

    Grid cells all use the default single-shard, no-concurrency-limit
    simulator configuration, so support hinges only on the scheduler having
    a lane fast path -- which every registry key now does (closed-form or
    scripted).  The ``stream`` flag is irrelevant: batch and stream
    summaries are identical by the ``streaming_vs_materialized`` oracle's
    guarantee, and the lane kernel reproduces both.
    """
    return lane_supported_scheduler(task.scheduler)


def run_task(task: GridTask) -> GridCell:
    """Execute one grid cell (the worker entry point).

    Rebuilds workload and scheduler from the task's names and seed, so the
    result is deterministic regardless of which process runs it.
    """
    scheduler = build_scheduler(task.scheduler)
    workload = cached_workload(task.workload, task.seed)
    result = evaluate_scheduler(
        scheduler, workload, task.capacity_mb, task.pool_label,
        stream=task.stream,
    )
    return GridCell(
        task=task,
        method=result.method,
        summary=result.result.telemetry.summary(),
    )


def pack_cell(cell: GridCell) -> PackedCell:
    """Flatten a cell into the columnar IPC block (task omitted: the
    parent already holds it)."""
    summary = cell.summary
    return cell.method, tuple(summary.keys()), array("d", summary.values())


def unpack_cell(task: GridTask, packed: PackedCell) -> GridCell:
    """Rebuild a cell from its columnar IPC block."""
    method, keys, values = packed
    return GridCell(task=task, method=method,
                    summary=dict(zip(keys, values)))


def _run_task_packed(task: GridTask) -> PackedCell:
    """Worker entry point returning the columnar IPC block."""
    return pack_cell(run_task(task))


def _run_lane_batch_packed(tasks: Tuple[GridTask, ...]) -> List[PackedCell]:
    """Worker entry point: run a batch of cells on one lane kernel.

    Each task becomes one lane; tasks sharing a workload draw share one
    process-memoized :class:`~repro.cluster.lanes.ArrivalTable`.  Results
    come back in task order as the same columnar IPC blocks the sequential
    worker ships, so downstream unpacking cannot tell the paths apart.
    """
    specs = [
        LaneSpec(
            scheduler=task.scheduler,
            table=cached_arrival_table(task.workload, task.seed),
            capacity_mb=task.capacity_mb,
        )
        for task in tasks
    ]
    results = LaneKernel(specs).run()
    return [
        (res.method, tuple(res.summary.keys()),
         array("d", res.summary.values()))
        for res in results
    ]


def _pool_context():
    """Pick a multiprocessing start method (fork where available)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_grid(
    tasks: Sequence[GridTask],
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    lanes: int = 1,
) -> List[GridCell]:
    """Run every task, fanning across ``jobs`` worker processes.

    ``jobs <= 1`` runs in-process.  Results always come back in task
    order, so downstream merging is independent of scheduling jitter.
    Serial and parallel paths round-trip through the same columnar packer,
    so their cells are equal by construction.

    With ``cache`` given (and enabled), each task is first looked up by
    its content address; only the misses are simulated (and then stored),
    so a warm cache re-runs nothing.  Cached and fresh cells are
    bit-identical -- the ``cached_vs_fresh`` differential oracle enforces
    this.

    With ``lanes > 1``, every cache-missed cell runs in batches of
    ``lanes`` on the :class:`~repro.cluster.lanes.LaneKernel` -- many
    cells per process step instead of one full simulator per cell.  The
    whole scheduler registry has lane paths (closed-form or scripted), so
    there is no silent sequential fallback: a task whose scheduler the
    kernel does not know raises ``KeyError``, exactly as
    :func:`build_scheduler` would.  Lane cells are byte-identical to
    sequential ones (the ``lanes_vs_sequential`` oracle and hypothesis
    suite enforce this), so any grid accepts any ``lanes`` value.
    """
    tasks = list(tasks)
    cells: List[Optional[GridCell]] = [None] * len(tasks)
    use_cache = cache is not None and cache.enabled
    if use_cache:
        misses = []
        for i, task in enumerate(tasks):
            hit = cache.get_cell(task)
            if hit is not None:
                cells[i] = hit
            else:
                misses.append(i)
    else:
        misses = list(range(len(tasks)))
    if misses:
        if lanes > 1:
            laned, solo = list(misses), []
        else:
            laned, solo = [], list(misses)
        batches = [
            tuple(laned[j:j + lanes]) for j in range(0, len(laned), lanes)
        ]
        if jobs <= 1 or len(misses) <= 1:
            packed = [_run_task_packed(tasks[i]) for i in solo]
            batch_packed = [
                _run_lane_batch_packed(tuple(tasks[i] for i in batch))
                for batch in batches
            ]
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, len(misses))) as pool:
                packed = pool.map(
                    _run_task_packed, [tasks[i] for i in solo]
                )
                batch_packed = pool.map(
                    _run_lane_batch_packed,
                    [tuple(tasks[i] for i in batch) for batch in batches],
                )
        filled = list(zip(solo, packed)) + [
            (i, block)
            for batch, blocks in zip(batches, batch_packed)
            for i, block in zip(batch, blocks)
        ]
        for i, block in filled:
            cell = unpack_cell(tasks[i], block)
            cells[i] = cell
            if use_cache:
                cache.put_cell(cell)
    return cells


@dataclass(frozen=True)
class GridResult:
    """All cells of a grid run, plus deterministic aggregation/rendering."""

    cells: List[GridCell]

    def merged(self) -> List[Tuple[Tuple[str, str, str], Dict[str, float]]]:
        """Mean metrics per ``(workload, pool_label, method)`` group.

        Groups appear in first-encounter (task) order; within a group the
        mean is over seeds.  Pure-python arithmetic on an ordered list, so
        the output is identical however the cells were computed.
        """
        groups: Dict[Tuple[str, str, str], List[GridCell]] = {}
        for cell in self.cells:
            key = (cell.task.workload, cell.task.pool_label, cell.method)
            groups.setdefault(key, []).append(cell)
        merged: List[Tuple[Tuple[str, str, str], Dict[str, float]]] = []
        for key, cells in groups.items():
            n = float(len(cells))
            metrics = {
                name: sum(c.summary[name] for c in cells) / n
                for name in cells[0].summary
            }
            metrics["n_seeds"] = n
            merged.append((key, metrics))
        return merged

    def report(self) -> str:
        """Render the merged grid as a deterministic ASCII table.

        Contains no timestamps or wall-clock values: two runs over the
        same grid produce byte-identical text whatever ``jobs`` was.
        """
        rows = []
        for (workload, pool_label, method), metrics in self.merged():
            rows.append([
                workload,
                pool_label,
                method,
                f"{metrics['total_startup_s']:.1f}",
                f"{metrics['mean_startup_s'] * 1e3:.0f}",
                f"{metrics['cold_starts']:.1f}",
                f"{metrics['evictions']:.1f}",
                f"{metrics['peak_warm_memory_mb']:.0f}",
                f"{int(metrics['n_seeds'])}",
            ])
        return ascii_table(
            ["workload", "pool", "method", "total [s]", "mean [ms]",
             "cold", "evictions", "peak MB", "seeds"],
            rows,
            title="Parallel baseline grid (means over seeds)",
        )


def default_grid(
    scale: Optional[ExperimentScale] = None,
    workloads: Sequence[str] = ("Overall",),
    schedulers: Sequence[str] = GRID_KEYS,
    pool_labels: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    cache: Optional[ExperimentCache] = None,
) -> List[GridTask]:
    """The standard ``(scheduler x workload x pool size x seed)`` grid.

    Capacities are derived per workload from the paper's Tight / Moderate /
    Loose sizing (seed-0 reference run, exactly as the figure experiments
    do; with ``cache`` given the sizing is served content-addressed and the
    reference run is skipped).  ``seeds`` defaults to
    ``range(scale.repeats)``.
    """
    scale = scale or ExperimentScale.from_env()
    seeds = list(seeds) if seeds is not None else list(range(scale.repeats))
    tasks: List[GridTask] = []
    for workload in workloads:
        capacities = pool_sizes_cached(workload, 0, cache)
        labels = list(pool_labels) if pool_labels is not None else list(capacities)
        for pool_label in labels:
            capacity = capacities[pool_label]
            for seed in seeds:
                for scheduler in schedulers:
                    tasks.append(GridTask(
                        scheduler=scheduler,
                        workload=workload,
                        seed=seed,
                        pool_label=pool_label,
                        capacity_mb=capacity,
                    ))
    return tasks


def run_default_grid(
    scale: Optional[ExperimentScale] = None,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    lanes: int = 1,
    **grid_kwargs,
) -> GridResult:
    """Build :func:`default_grid` and run it with ``jobs`` workers.

    ``cache`` (optional) serves both the pool sizing and the grid cells
    content-addressed; the rendered report is byte-identical with the
    cache on, off, cold or warm.  ``lanes > 1`` runs supported cells in
    lane-kernel batches (see :func:`run_grid`).
    """
    tasks = default_grid(scale, cache=cache, **grid_kwargs)
    return GridResult(
        cells=run_grid(tasks, jobs=jobs, cache=cache, lanes=lanes)
    )


def report(result: GridResult) -> str:
    """Module-level report hook matching the other experiment modules."""
    return result.report()
