"""Figure 10: warm-resource consumption under the Loose pool size.

Peak warm-pool memory and eviction counts per method.  The paper's shape:
the exact-match baselines (LRU, FaasCache, KeepAlive) fill the whole pool
and trigger evictions/rejections, while the multi-level methods (Greedy,
MLCR) recycle containers and do not need to exhaust the pool; Greedy
consumes the least memory of all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.report import ascii_table
from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    make_baselines,
    pool_sizes,
    train_mlcr_for,
)
from repro.experiments.fig8_overall import METHOD_ORDER
from repro.workloads.fstartbench import overall_workload


@dataclass(frozen=True)
class Fig10Row:
    method: str
    peak_warm_memory_mb: float
    pool_utilization: float   # peak / capacity
    evictions: float
    keep_alive_rejections: float
    total_startup_s: float


@dataclass(frozen=True)
class Fig10Result:
    rows: List[Fig10Row]
    capacity_mb: float

    def row(self, method: str) -> Fig10Row:
        """The row for one method."""
        for r in self.rows:
            if r.method == method:
                return r
        raise KeyError(method)


def run(scale: Optional[ExperimentScale] = None) -> Fig10Result:
    """Run the experiment; returns its result dataclass."""
    scale = scale or ExperimentScale.from_env()
    capacity = pool_sizes(overall_workload(seed=0))["Loose"]
    mlcr = train_mlcr_for(
        "Overall", lambda s: overall_workload(seed=s), capacity, scale
    )

    acc: Dict[str, List] = {m: [] for m in METHOD_ORDER}
    for seed in range(scale.repeats):
        workload = overall_workload(seed=seed)
        for scheduler in make_baselines() + [mlcr]:
            res = evaluate_scheduler(scheduler, workload, capacity, "Loose")
            t = res.result.telemetry
            acc[scheduler.name].append(
                (
                    t.peak_warm_memory_mb,
                    t.evictions,
                    t.keep_alive_rejections,
                    t.total_startup_latency_s,
                )
            )

    rows = []
    for method in METHOD_ORDER:
        data = np.array(acc[method])
        rows.append(
            Fig10Row(
                method=method,
                peak_warm_memory_mb=float(data[:, 0].mean()),
                pool_utilization=float(data[:, 0].mean() / capacity),
                evictions=float(data[:, 1].mean()),
                keep_alive_rejections=float(data[:, 2].mean()),
                total_startup_s=float(data[:, 3].mean()),
            )
        )
    return Fig10Result(rows=rows, capacity_mb=capacity)


def report(result: Fig10Result) -> str:
    """Render the result as the paper-style ASCII report."""
    rows = [
        [
            r.method,
            f"{r.peak_warm_memory_mb:.0f}",
            f"{r.pool_utilization:.0%}",
            f"{r.evictions:.1f}",
            f"{r.keep_alive_rejections:.1f}",
            f"{r.total_startup_s:.1f}",
        ]
        for r in result.rows
    ]
    return ascii_table(
        ["method", "peak warm MB", "pool util", "evictions",
         "rejections", "total startup s"],
        rows,
        title=(
            f"Fig 10: warm resource consumption, Loose pool "
            f"({result.capacity_mb:.0f}MB)"
        ),
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
