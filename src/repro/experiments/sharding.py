"""Extension experiment: global vs per-worker warm pools.

The paper's platform reserves warm memory *per worker* but schedules against
the union of idle containers; most simulators (including the paper's
evaluation) treat the pool as one global budget.  This experiment quantifies
the difference: the same total capacity, partitioned across 1..N workers,
under the exact-match and multi-level schedulers.

Expected shape: fragmentation can only hurt -- a container must fit in *its
worker's* shard, so sharded pools evict more and warm-hit less; the effect
grows with shard count and bites hardest at Tight capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import ascii_table
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.experiments.common import ExperimentScale, pool_sizes
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.fstartbench import overall_workload

WORKER_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class ShardingRow:
    """Mean results for one (method, worker-count) configuration."""

    method: str
    n_workers: int
    total_startup_s: float
    cold_starts: float
    evictions: float


@dataclass(frozen=True)
class ShardingResult:
    """All rows plus the capacity used."""

    rows: List[ShardingRow]
    capacity_mb: float

    def row(self, method: str, n_workers: int) -> ShardingRow:
        """The row for one (method, worker-count) pair."""
        for r in self.rows:
            if r.method == method and r.n_workers == n_workers:
                return r
        raise KeyError((method, n_workers))


def run(
    scale: Optional[ExperimentScale] = None,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> ShardingResult:
    """Sweep worker counts at Tight capacity for LRU and Greedy-Match."""
    scale = scale or ExperimentScale.from_env()
    capacity = pool_sizes(overall_workload(seed=0))["Tight"]
    rows: List[ShardingRow] = []
    for n_workers in worker_counts:
        for scheduler_cls in (LRUScheduler, GreedyMatchScheduler):
            acc: Dict[str, List[float]] = {"t": [], "c": [], "e": []}
            for seed in range(scale.repeats):
                workload = overall_workload(seed=seed)
                scheduler = scheduler_cls()
                sim = ClusterSimulator(
                    SimulationConfig(
                        pool_capacity_mb=capacity,
                        n_workers=n_workers,
                        per_worker_pools=n_workers > 1,
                    ),
                    scheduler.make_eviction_policy(),
                )
                t = sim.run(workload, scheduler).telemetry
                acc["t"].append(t.total_startup_latency_s)
                acc["c"].append(t.cold_starts)
                acc["e"].append(t.evictions)
            rows.append(ShardingRow(
                method=scheduler_cls.name,
                n_workers=n_workers,
                total_startup_s=float(np.mean(acc["t"])),
                cold_starts=float(np.mean(acc["c"])),
                evictions=float(np.mean(acc["e"])),
            ))
    return ShardingResult(rows=rows, capacity_mb=capacity)


def report(result: ShardingResult) -> str:
    """Render the sweep as an ASCII table."""
    table = [
        [r.method, str(r.n_workers), f"{r.total_startup_s:.1f}",
         f"{r.cold_starts:.1f}", f"{r.evictions:.1f}"]
        for r in result.rows
    ]
    return ascii_table(
        ["method", "workers", "total startup [s]", "cold starts",
         "evictions"],
        table,
        title=(f"Extension: pool sharding at Tight capacity "
               f"({result.capacity_mb:.0f}MB total)"),
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
