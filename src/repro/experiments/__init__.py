"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(...) -> <Result dataclass>`` and
``report(result) -> str`` (the rows/series the paper reports, as ASCII).
The ``benchmarks/`` directory wires each one into pytest-benchmark.

See DESIGN.md section 4 for the experiment index.
"""

from repro.experiments.common import (
    ExperimentScale,
    MethodResult,
    evaluate_scheduler,
    make_baselines,
    pool_sizes,
    train_mlcr_for,
)

__all__ = [
    "ExperimentScale",
    "MethodResult",
    "evaluate_scheduler",
    "make_baselines",
    "pool_sizes",
    "train_mlcr_for",
]
