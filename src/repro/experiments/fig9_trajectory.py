"""Figure 9: cumulative startup latency / cold starts, Greedy vs MLCR, Loose.

The paper's deep-dive into *why* fewer cold starts does not imply lower
latency: along the arrival stream, Greedy-Match occasionally grabs a
container that MLCR deliberately leaves warm for a later, deeper match.  The
figure plots cumulative total startup latency and cumulative cold starts
against the arrival index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    pool_sizes,
    train_mlcr_for,
)
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.workloads.fstartbench import overall_workload


@dataclass(frozen=True)
class Fig9Result:
    arrival_index: np.ndarray
    greedy_cum_latency: np.ndarray
    mlcr_cum_latency: np.ndarray
    greedy_cum_cold: np.ndarray
    mlcr_cum_cold: np.ndarray
    capacity_mb: float

    @property
    def final_gap_s(self) -> float:
        """Final cumulative-latency gap (positive = MLCR lower)."""
        return float(self.greedy_cum_latency[-1] - self.mlcr_cum_latency[-1])


def run(
    scale: Optional[ExperimentScale] = None, eval_seed: int = 0
) -> Fig9Result:
    """Run the experiment; returns its result dataclass."""
    scale = scale or ExperimentScale.from_env()
    workload = overall_workload(seed=eval_seed)
    capacity = pool_sizes(workload)["Loose"]

    greedy_result = evaluate_scheduler(
        GreedyMatchScheduler(), workload, capacity, "Loose"
    )
    mlcr = train_mlcr_for(
        "Overall", lambda s: overall_workload(seed=s), capacity, scale
    )
    mlcr_result = evaluate_scheduler(mlcr, workload, capacity, "Loose")

    g_t, m_t = greedy_result.result.telemetry, mlcr_result.result.telemetry
    return Fig9Result(
        arrival_index=np.arange(1, len(workload) + 1),
        greedy_cum_latency=g_t.cumulative_latency(),
        mlcr_cum_latency=m_t.cumulative_latency(),
        greedy_cum_cold=g_t.cumulative_cold_starts(),
        mlcr_cum_cold=m_t.cumulative_cold_starts(),
        capacity_mb=capacity,
    )


def report(result: Fig9Result, samples: int = 10) -> str:
    """Print the two series at evenly spaced arrival indices."""
    n = len(result.arrival_index)
    picks = np.unique(np.linspace(0, n - 1, samples).astype(int))
    lines = [
        f"Fig 9: cumulative series under Loose pool "
        f"({result.capacity_mb:.0f}MB)",
        "",
        f"{'arrival':>8} | {'greedy lat':>11} {'mlcr lat':>11} | "
        f"{'greedy cold':>11} {'mlcr cold':>10}",
    ]
    for i in picks:
        lines.append(
            f"{result.arrival_index[i]:>8} | "
            f"{result.greedy_cum_latency[i]:>10.1f}s "
            f"{result.mlcr_cum_latency[i]:>10.1f}s | "
            f"{result.greedy_cum_cold[i]:>11d} "
            f"{result.mlcr_cum_cold[i]:>10d}"
        )
    lines.append("")
    lines.append(
        f"final latency gap (greedy - MLCR): {result.final_gap_s:+.1f}s "
        "(paper: +3.8s)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
