"""Figure 8: overall startup latency (a) and cold starts (b).

All 13 FStartBench functions, 400 invocations, per-type Poisson arrivals;
warm pool sized Tight / Moderate / Loose; five methods (LRU, FaasCache,
KeepAlive, Greedy-Match, MLCR).  The paper repeats 50x and reports averages;
repeat count here follows :class:`ExperimentScale` (``REPRO_SCALE=full`` for
long runs).

Expected shape: MLCR lowest total latency at every pool size with the
largest margin under Tight; Greedy-Match and MLCR far fewer cold starts than
the exact-match baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.report import ascii_table
from repro.analysis.stats import reduction_pct
from repro.experiments.common import (
    ExperimentScale,
    MethodResult,
    evaluate_scheduler,
    make_baselines,
    pool_sizes,
    train_mlcr_for,
)
from repro.workloads.fstartbench import overall_workload

METHOD_ORDER = ["LRU", "FaasCache", "KeepAlive", "Greedy-Match", "MLCR"]


@dataclass(frozen=True)
class Fig8Cell:
    """Mean results of one (method, pool size) cell."""

    method: str
    pool_label: str
    total_startup_s: float
    cold_starts: float
    evictions: float
    peak_warm_memory_mb: float


@dataclass(frozen=True)
class Fig8Result:
    cells: List[Fig8Cell]
    capacities: Dict[str, float]
    repeats: int
    raw: List[MethodResult]

    def cell(self, method: str, pool_label: str) -> Fig8Cell:
        """The (method, pool size) cell of the result."""
        for c in self.cells:
            if c.method == method and c.pool_label == pool_label:
                return c
        raise KeyError((method, pool_label))

    def mlcr_reduction_vs(self, baseline: str, pool_label: str) -> float:
        """Percent latency reduction of MLCR vs a baseline at a pool size."""
        base = self.cell(baseline, pool_label).total_startup_s
        ours = self.cell("MLCR", pool_label).total_startup_s
        return reduction_pct(base, ours)


def run(scale: Optional[ExperimentScale] = None) -> Fig8Result:
    """Run the experiment; returns its result dataclass."""
    scale = scale or ExperimentScale.from_env()
    sizing_workload = overall_workload(seed=0)
    capacities = pool_sizes(sizing_workload)

    raw: List[MethodResult] = []
    for pool_label, capacity in capacities.items():
        mlcr = train_mlcr_for(
            "Overall", lambda s: overall_workload(seed=s), capacity, scale
        )
        for seed in range(scale.repeats):
            workload = overall_workload(seed=seed)
            for scheduler in make_baselines() + [mlcr]:
                raw.append(
                    evaluate_scheduler(scheduler, workload, capacity, pool_label)
                )

    cells: List[Fig8Cell] = []
    for pool_label in capacities:
        for method in METHOD_ORDER:
            rows = [
                r for r in raw
                if r.method == method and r.pool_label == pool_label
            ]
            cells.append(
                Fig8Cell(
                    method=method,
                    pool_label=pool_label,
                    total_startup_s=float(
                        np.mean([r.total_startup_s for r in rows])
                    ),
                    cold_starts=float(np.mean([r.cold_starts for r in rows])),
                    evictions=float(np.mean([r.evictions for r in rows])),
                    peak_warm_memory_mb=float(
                        np.mean([r.peak_warm_memory_mb for r in rows])
                    ),
                )
            )
    return Fig8Result(
        cells=cells, capacities=capacities, repeats=scale.repeats, raw=raw
    )


def report(result: Fig8Result) -> str:
    """Render the result as the paper-style ASCII report."""
    rows_latency = []
    rows_cold = []
    for method in METHOD_ORDER:
        lat_row: List[object] = [method]
        cold_row: List[object] = [method]
        for pool_label in result.capacities:
            cell = result.cell(method, pool_label)
            lat_row.append(f"{cell.total_startup_s:.1f}")
            cold_row.append(f"{cell.cold_starts:.1f}")
        rows_latency.append(lat_row)
        rows_cold.append(cold_row)
    headers = ["method", *result.capacities.keys()]
    lines = [
        f"Fig 8 (repeats={result.repeats}; capacities: "
        + ", ".join(f"{k}={v:.0f}MB" for k, v in result.capacities.items())
        + ")",
        "",
        ascii_table(headers, rows_latency,
                    title="(a) total startup latency [s]"),
        "",
        ascii_table(headers, rows_cold, title="(b) cold starts [count]"),
        "",
        "MLCR latency reduction vs baselines:",
    ]
    for baseline in METHOD_ORDER[:-1]:
        per_pool = ", ".join(
            f"{pool}: {result.mlcr_reduction_vs(baseline, pool):+.0f}%"
            for pool in result.capacities
        )
        lines.append(f"  vs {baseline:12s} {per_pool}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
