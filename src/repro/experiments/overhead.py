"""Section VI-D: scheduler overhead.

Measures the wall-clock cost of one MLCR scheduling decision (state encoding
plus a policy-network forward pass) and compares it to the startup-latency
savings each decision buys.  The paper reports 3--4 ms per decision on a
V100; a numpy forward pass on CPU lands in the same order of magnitude.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    make_baselines,
    pool_sizes,
    train_mlcr_for,
)
from repro.workloads.fstartbench import overall_workload


@dataclass(frozen=True)
class OverheadResult:
    mean_decision_ms: float
    p95_decision_ms: float
    decisions: int
    mean_saving_per_decision_s: float
    overhead_fraction: float  # decision time / mean saving

    @property
    def worthwhile(self) -> bool:
        """Scheduling pays for itself when the saving dwarfs the overhead."""
        return self.overhead_fraction < 0.5


def run(
    scale: Optional[ExperimentScale] = None, eval_seed: int = 0
) -> OverheadResult:
    """Run the experiment; returns its result dataclass."""
    scale = scale or ExperimentScale.from_env()
    workload = overall_workload(seed=eval_seed)
    capacity = pool_sizes(workload)["Tight"]
    mlcr = train_mlcr_for(
        "Overall", lambda s: overall_workload(seed=s), capacity, scale
    )

    # Time every decision by wrapping decide().
    times: list = []
    original_decide = mlcr.decide

    def timed_decide(ctx):
        t0 = time.perf_counter()
        decision = original_decide(ctx)
        times.append(time.perf_counter() - t0)
        return decision

    mlcr.reset()
    mlcr.decide = timed_decide  # type: ignore[method-assign]
    try:
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=capacity),
            mlcr.make_eviction_policy(),
        )
        mlcr_result = sim.run(workload, mlcr)
    finally:
        del mlcr.decide  # restore the bound method

    # Savings: compare against the best exact-match baseline.
    baseline_latency = min(
        evaluate_scheduler(b, workload, capacity, "Tight").total_startup_s
        for b in make_baselines()[:3]  # LRU, FaasCache, KeepAlive
    )
    saving = baseline_latency - mlcr_result.telemetry.total_startup_latency_s
    per_decision_saving = saving / max(1, len(workload))

    arr = np.array(times)
    mean_ms = float(arr.mean() * 1e3)
    return OverheadResult(
        mean_decision_ms=mean_ms,
        p95_decision_ms=float(np.percentile(arr, 95) * 1e3),
        decisions=len(times),
        mean_saving_per_decision_s=per_decision_saving,
        overhead_fraction=(mean_ms / 1e3) / max(1e-9, per_decision_saving),
    )


def report(result: OverheadResult) -> str:
    """Render the result as the paper-style ASCII report."""
    return "\n".join(
        [
            "Section VI-D: MLCR scheduling overhead",
            f"  decisions measured:        {result.decisions}",
            f"  mean decision time:        {result.mean_decision_ms:.2f} ms "
            "(paper: 3-4 ms on V100)",
            f"  p95 decision time:         {result.p95_decision_ms:.2f} ms",
            f"  mean saving per decision:  "
            f"{result.mean_saving_per_decision_s * 1e3:.1f} ms",
            f"  overhead / saving:         {result.overhead_fraction:.3f}",
            f"  scheduling worthwhile:     {result.worthwhile}",
        ]
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
