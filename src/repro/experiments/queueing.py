"""Extension experiment: worker concurrency limits and startup queueing.

The paper's evaluation treats workers as latency-transparent: a cold start
costs the same whether one or a hundred containers are starting at once.
Real platforms cap per-worker concurrency (OpenWhisk's invoker slots), so
bursts queue and the *observed* startup latency includes the wait for a
slot.  This experiment turns on the simulator's admission control and
sweeps the two platform knobs it introduces:

* ``worker_concurrency`` -- slots per worker (startup + execution hold a
  slot); lower limits queue more of HI-Sim's bursty arrivals;
* ``n_workers`` -- cluster size at a fixed per-worker limit; with real
  contention, worker count finally moves mean startup latency.

Expected shape: queueing delay grows sharply as the limit tightens, and
adding workers at a fixed limit strictly reduces both the queueing and the
mean startup latency -- the knob the no-contention simulator could never
show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import ascii_table
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.experiments.common import ExperimentScale
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.workloads.fstartbench import hi_sim_workload

CONCURRENCY_LIMITS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4, 8)
POOL_CAPACITY_MB = 2048.0


@dataclass(frozen=True)
class QueueingRow:
    """Mean results for one (n_workers, concurrency) configuration."""

    n_workers: int
    concurrency: int
    mean_startup_s: float
    mean_queueing_s: float
    queued_starts: float
    max_queue_depth: float
    mean_utilization: float


@dataclass(frozen=True)
class QueueingResult:
    """All rows of the queueing sweep."""

    rows: List[QueueingRow]

    def row(self, n_workers: int, concurrency: int) -> QueueingRow:
        """The row for one (worker-count, concurrency-limit) pair."""
        for r in self.rows:
            if r.n_workers == n_workers and r.concurrency == concurrency:
                return r
        raise KeyError((n_workers, concurrency))


def run(
    scale: Optional[ExperimentScale] = None,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    concurrency_limits: Sequence[int] = CONCURRENCY_LIMITS,
) -> QueueingResult:
    """Sweep worker count x concurrency limit on HI-Sim under Greedy-Match."""
    scale = scale or ExperimentScale.from_env()
    rows: List[QueueingRow] = []
    for n_workers in worker_counts:
        for limit in concurrency_limits:
            acc: Dict[str, List[float]] = {
                "s": [], "q": [], "n": [], "d": [], "u": [],
            }
            for seed in range(scale.repeats):
                workload = hi_sim_workload(seed=seed)
                scheduler = GreedyMatchScheduler()
                sim = ClusterSimulator(
                    SimulationConfig(
                        pool_capacity_mb=POOL_CAPACITY_MB,
                        n_workers=n_workers,
                        worker_concurrency=limit,
                    ),
                    scheduler.make_eviction_policy(),
                )
                t = sim.run(workload, scheduler).telemetry
                q = t.queueing_summary()
                acc["s"].append(t.mean_startup_latency_s)
                acc["q"].append(q["mean_queueing_s"])
                acc["n"].append(q["queued_starts"])
                acc["d"].append(q["max_queue_depth"])
                acc["u"].append(q["mean_worker_utilization"])
            rows.append(QueueingRow(
                n_workers=n_workers,
                concurrency=limit,
                mean_startup_s=float(np.mean(acc["s"])),
                mean_queueing_s=float(np.mean(acc["q"])),
                queued_starts=float(np.mean(acc["n"])),
                max_queue_depth=float(np.mean(acc["d"])),
                mean_utilization=float(np.mean(acc["u"])),
            ))
    return QueueingResult(rows=rows)


def report(result: QueueingResult) -> str:
    """Render the sweep as an ASCII table."""
    table = [
        [str(r.n_workers), str(r.concurrency), f"{r.mean_startup_s:.3f}",
         f"{r.mean_queueing_s:.3f}", f"{r.queued_starts:.1f}",
         f"{r.max_queue_depth:.1f}", f"{100 * r.mean_utilization:.1f}%"]
        for r in result.rows
    ]
    return ascii_table(
        ["workers", "limit", "mean startup [s]", "mean queueing [s]",
         "queued starts", "max depth", "utilization"],
        table,
        title=("Extension: worker concurrency limits on HI-Sim "
               f"(Greedy-Match, {POOL_CAPACITY_MB:.0f}MB pool)"),
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
