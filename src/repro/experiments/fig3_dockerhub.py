"""Figure 3: pull-count popularity of the top-1000 Docker Hub images.

The design-rationale measurement behind multi-level reuse: a few base (OS)
and language images dominate pulls -- the top-4 base images account for ~77 %
of base-image pulls.  Reproduced over the synthetic Zipf-calibrated registry
(Docker Hub is not reachable offline; see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import ascii_bar_chart
from repro.packages.package import PackageLevel
from repro.packages.registry import SyntheticRegistry


@dataclass(frozen=True)
class Fig3Result:
    """Top images per level and the headline concentration statistics."""

    top_base_images: List[Tuple[str, int]]
    top_language_images: List[Tuple[str, int]]
    top4_base_share: float
    top4_language_share: float


def run(registry: SyntheticRegistry | None = None, top_k: int = 8) -> Fig3Result:
    """Run the experiment; returns its result dataclass."""
    reg = registry or SyntheticRegistry()
    base = [(im.name, im.pull_count)
            for im in reg.images_at_level(PackageLevel.OS)[:top_k]]
    lang = [(im.name, im.pull_count)
            for im in reg.images_at_level(PackageLevel.LANGUAGE)[:top_k]]
    return Fig3Result(
        top_base_images=base,
        top_language_images=lang,
        top4_base_share=reg.top_k_share(PackageLevel.OS, 4),
        top4_language_share=reg.top_k_share(PackageLevel.LANGUAGE, 4),
    )


def report(result: Fig3Result) -> str:
    """Render the result as the paper-style ASCII report."""
    def chart(title: str, items: List[Tuple[str, int]]) -> str:
        labels = [name for name, _ in items]
        values = [count / 1e9 for _, count in items]
        return ascii_bar_chart(labels, values, unit="B pulls", title=title)

    return "\n".join(
        [
            "Fig 3: top-1000 Docker Hub image popularity (synthetic registry)",
            "",
            chart("base (OS) images:", result.top_base_images),
            "",
            chart("language images:", result.top_language_images),
            "",
            f"top-4 base-image pull share:     {result.top4_base_share:.1%}"
            "  (paper: ~77%)",
            f"top-4 language-image pull share: {result.top4_language_share:.1%}",
        ]
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
