"""Table II: the FStartBench function inventory.

Prints the 13 functions with their OS / language / runtime stacks plus the
measured quantities our synthetic profiles add (image size, memory footprint,
cold-start latency and the cold-start-to-execution ratio the paper reports as
1.3x--166x on Tencent SCF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import ascii_table
from repro.containers.costmodel import StartupCostModel
from repro.containers.matching import MatchLevel
from repro.packages.package import PackageLevel
from repro.workloads.functions import fstartbench_functions


@dataclass(frozen=True)
class Tab2Row:
    func_id: int
    name: str
    os: str
    language: str
    runtime: str
    description: str
    image_size_mb: float
    memory_mb: float
    cold_start_s: float
    cold_to_exec_ratio: float


@dataclass(frozen=True)
class Tab2Result:
    rows: List[Tab2Row]

    @property
    def min_ratio(self) -> float:
        return min(r.cold_to_exec_ratio for r in self.rows)

    @property
    def max_ratio(self) -> float:
        return max(r.cold_to_exec_ratio for r in self.rows)


def _level_names(spec, level: PackageLevel) -> str:
    """Packages at a level, largest first (the primary stack leads)."""
    pkgs = sorted(
        spec.image.level_set(level), key=lambda p: (-p.size_mb, p.name)
    )
    return "+".join(p.name for p in pkgs) if pkgs else "-"


def run(cost_model: StartupCostModel | None = None) -> Tab2Result:
    """Run the experiment; returns its result dataclass."""
    model = cost_model or StartupCostModel()
    rows: List[Tab2Row] = []
    for spec in fstartbench_functions():
        cold = model.latency_s(
            spec.image, MatchLevel.NO_MATCH, spec.function_init_s
        )
        rows.append(
            Tab2Row(
                func_id=spec.func_id,
                name=spec.name,
                os=_level_names(spec, PackageLevel.OS),
                language=_level_names(spec, PackageLevel.LANGUAGE),
                runtime=_level_names(spec, PackageLevel.RUNTIME),
                description=spec.description,
                image_size_mb=spec.image.total_size_mb,
                memory_mb=spec.image.memory_mb,
                cold_start_s=cold,
                cold_to_exec_ratio=cold / spec.exec_time_mean_s,
            )
        )
    return Tab2Result(rows=rows)


def report(result: Tab2Result) -> str:
    """Render the result as the paper-style ASCII report."""
    table_rows = [
        [
            r.func_id,
            r.name,
            next((p.replace("-base", "") for p in r.os.split("+")
                  if p.endswith("-base")), r.os.split("+")[0]),
            r.language.split("+")[0],
            r.runtime,
            f"{r.image_size_mb:.0f}",
            f"{r.memory_mb:.0f}",
            f"{r.cold_start_s:.2f}",
            f"{r.cold_to_exec_ratio:.1f}x",
        ]
        for r in result.rows
    ]
    table = ascii_table(
        ["id", "function", "OS", "language", "runtime", "size MB",
         "mem MB", "cold s", "cold/exec"],
        table_rows,
        title="Table II: FStartBench functions",
    )
    return "\n".join(
        [
            table,
            "",
            f"cold-start / execution ratio range: "
            f"{result.min_ratio:.1f}x - {result.max_ratio:.1f}x "
            "(paper: 1.3x - 166x)",
        ]
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
