"""Extension experiment: production-scale streaming trace replay.

The paper evaluates on 400-invocation FStartBench mixes; production traces
(Shahrad et al.'s Azure analysis) are tens of thousands of functions and
millions of invocations per day.  This scenario family replays a synthetic
Azure-like trace at that scale through the streaming pipeline end to end:

* arrivals come from :meth:`AzureTraceGenerator.stream` -- heap-merged
  per-function generators, never materialized, O(#functions) memory;
* the simulator consumes them via :meth:`ClusterSimulator.run_stream`,
  holding one future arrival at a time;
* telemetry is :class:`~repro.cluster.telemetry.BoundedTelemetry` -- exact
  counters plus quantile sketches, O(1) in the invocation count.

At ``REPRO_SCALE=fast`` the family runs 300 functions x 30k invocations
per cell (seconds); at ``full`` it is the headline 20k functions x 10M
invocations, which no materialized path could hold in memory.  Cells are
independent ``(scheduler, seed)`` pairs and fan across worker processes
exactly like the baseline grid; the report carries no wall-clock values,
so its text is byte-identical for any ``jobs`` count.

Pool capacity is derived *from the trace itself*: a fixed fraction of the
summed per-function image memory, computed from the stream's function
specs without generating a single arrival.  That keeps the sizing
deterministic, seed-dependent only through the sampled function mix, and
cheap at any scale (a Loose-style unbounded reference run would itself
cost a full replay).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import ascii_table
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.experiments.common import ExperimentScale
from repro.experiments.parallel import _pool_context, build_scheduler
from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator

#: Schedulers replayed per cell (keys into
#: :data:`repro.experiments.parallel.SCHEDULER_FACTORIES`).  MLCR is absent
#: for the same reason it is absent from the baseline grid: trained policies
#: are not cheap to rebuild per worker.
STREAM_SCHEDULERS: Tuple[str, ...] = ("lru", "keepalive", "greedy")

#: Evaluation seeds (kept small: each full-scale cell is a 10M-event replay).
STREAM_SEEDS: Tuple[int, ...] = (0, 1)

#: Pool capacity as a fraction of the summed per-function image memory.
CAPACITY_FRACTION = 0.08

#: Mean arrival rate (invocations/second) held constant across scales, so
#: burst density -- not trace length -- is what changes with duration.
ARRIVALS_PER_SECOND = 100.0


@dataclass(frozen=True)
class StreamReplayTask:
    """One streaming-replay cell (picklable, names and numbers only)."""

    scheduler: str
    seed: int
    n_functions: int
    n_invocations: int
    capacity_fraction: float = CAPACITY_FRACTION


@dataclass(frozen=True)
class StreamReplayCell:
    """Outcome of one streaming-replay cell."""

    task: StreamReplayTask
    method: str
    summary: Dict[str, float]


@dataclass(frozen=True)
class StreamReplayRow:
    """Mean results over seeds for one scheduler at one scale."""

    method: str
    n_functions: int
    n_invocations: int
    mean_startup_ms: float
    p95_startup_ms: float
    cold_fraction: float
    evictions: float
    peak_warm_memory_mb: float
    n_seeds: int


@dataclass(frozen=True)
class StreamReplayResult:
    """All cells of one streaming-replay run, plus aggregation."""

    cells: List[StreamReplayCell]

    def rows(self) -> List[StreamReplayRow]:
        """Mean metrics per scheduler, in first-encounter (task) order."""
        groups: Dict[Tuple[str, int, int], List[StreamReplayCell]] = {}
        for cell in self.cells:
            key = (cell.method, cell.task.n_functions,
                   cell.task.n_invocations)
            groups.setdefault(key, []).append(cell)
        rows: List[StreamReplayRow] = []
        for (method, n_fns, n_inv), cells in groups.items():
            def mean(name: str) -> float:
                return float(np.mean([c.summary[name] for c in cells]))

            invocations = mean("invocations")
            rows.append(StreamReplayRow(
                method=method,
                n_functions=n_fns,
                n_invocations=n_inv,
                mean_startup_ms=mean("mean_startup_s") * 1e3,
                p95_startup_ms=mean("p95_startup_s") * 1e3,
                cold_fraction=(
                    mean("cold_starts") / invocations if invocations else 0.0
                ),
                evictions=mean("evictions"),
                peak_warm_memory_mb=mean("peak_warm_memory_mb"),
                n_seeds=len(cells),
            ))
        return rows


def trace_config(n_functions: int, n_invocations: int) -> AzureTraceConfig:
    """The scenario family's trace shape at one scale.

    Duration scales with the invocation count so the mean arrival rate
    stays at :data:`ARRIVALS_PER_SECOND` regardless of scale.
    """
    return AzureTraceConfig(
        n_functions=n_functions,
        n_invocations=n_invocations,
        duration_s=n_invocations / ARRIVALS_PER_SECOND,
    )


def derive_capacity_mb(
    stream, capacity_fraction: float = CAPACITY_FRACTION
) -> float:
    """Pool capacity for one cell: a fraction of the summed image memory.

    Reads only the stream's sampled function specs (already drawn at
    stream construction), so sizing costs O(#functions) and never touches
    an arrival.
    """
    total = sum(spec.image.memory_mb for spec in stream.specs)
    return capacity_fraction * total


def run_cell(task: StreamReplayTask) -> StreamReplayCell:
    """Execute one streaming-replay cell (the worker entry point).

    Rebuilds generator, stream and scheduler from the task's numbers, so
    the result is deterministic regardless of which process runs it.
    """
    generator = AzureTraceGenerator(
        trace_config(task.n_functions, task.n_invocations)
    )
    stream = generator.stream(seed=task.seed)
    scheduler = build_scheduler(task.scheduler)
    eviction = (
        scheduler.make_eviction_policy()
        if hasattr(scheduler, "make_eviction_policy")
        else None
    )
    sim = ClusterSimulator(
        SimulationConfig(
            pool_capacity_mb=derive_capacity_mb(
                stream, task.capacity_fraction
            ),
            bounded_telemetry=True,
        ),
        eviction,
    )
    result = sim.run_stream(stream, scheduler)
    return StreamReplayCell(
        task=task, method=result.scheduler_name, summary=result.summary()
    )


#: Packed IPC form of one cell, mirroring the baseline grid's columnar
#: blocks: ``(method, summary keys, summary values)``.
PackedStreamCell = Tuple[str, Tuple[str, ...], "array"]


def _run_cell_packed(task: StreamReplayTask) -> PackedStreamCell:
    """Worker entry point returning the columnar IPC block."""
    cell = run_cell(task)
    return cell.method, tuple(cell.summary), array("d", cell.summary.values())


def _run_lane_group_packed(
    tasks: Tuple[StreamReplayTask, ...]
) -> List[PackedStreamCell]:
    """Worker entry point: replay one stream through many lanes at once.

    ``tasks`` must share ``(seed, n_functions, n_invocations)`` so they
    describe the *same* arrival stream; each task becomes one bounded lane
    (its own scheduler and derived capacity) of a single
    :func:`~repro.cluster.lanes.run_stream_lanes` pass, which lowers the
    stream into columnar chunks exactly once instead of once per cell.
    Results come back in task order as the same columnar blocks
    :func:`_run_cell_packed` ships -- byte-identical to the sequential
    ``run_stream`` path (the ``streaming_vs_materialized`` oracle pins
    this), so downstream unpacking cannot tell the paths apart.
    """
    from repro.cluster.lanes import run_stream_lanes

    head = tasks[0]
    generator = AzureTraceGenerator(
        trace_config(head.n_functions, head.n_invocations)
    )
    stream = generator.stream(seed=head.seed)
    results = run_stream_lanes(
        [
            (task.scheduler,
             derive_capacity_mb(stream, task.capacity_fraction))
            for task in tasks
        ],
        stream,
    )
    return [
        (res.method, tuple(res.summary), array("d", res.summary.values()))
        for res in results
    ]


def default_tasks(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = STREAM_SCHEDULERS,
    seeds: Sequence[int] = STREAM_SEEDS,
) -> List[StreamReplayTask]:
    """The ``(scheduler x seed)`` cell list at this scale's trace size."""
    scale = scale or ExperimentScale.from_env()
    return [
        StreamReplayTask(
            scheduler=scheduler,
            seed=seed,
            n_functions=scale.stream_functions,
            n_invocations=scale.stream_invocations,
        )
        for seed in seeds
        for scheduler in schedulers
    ]


def run(
    scale: Optional[ExperimentScale] = None,
    jobs: int = 1,
    schedulers: Sequence[str] = STREAM_SCHEDULERS,
    seeds: Sequence[int] = STREAM_SEEDS,
    lanes: int = 1,
) -> StreamReplayResult:
    """Replay the scenario family, fanning cells over ``jobs`` processes.

    Results come back in task order (``Pool.map`` preserves it), and the
    serial path round-trips through the same columnar packer as the
    parallel one, so the outcome is byte-identical for any ``jobs``.

    ``lanes > 1`` groups cells that replay the same stream (same seed and
    trace shape) and runs each group through one chunked
    :func:`~repro.cluster.lanes.run_stream_lanes` pass -- the stream is
    generated and lowered once per group instead of once per cell, still
    O(1)-memory, with summaries byte-identical to the sequential path.
    ``jobs`` then fans the *groups* across workers.
    """
    tasks = default_tasks(scale, schedulers=schedulers, seeds=seeds)
    if lanes > 1:
        groups: Dict[Tuple[int, int, int, float],
                     List[StreamReplayTask]] = {}
        for task in tasks:
            key = (task.seed, task.n_functions, task.n_invocations,
                   task.capacity_fraction)
            groups.setdefault(key, []).append(task)
        batches = [
            tuple(group[j:j + lanes])
            for group in groups.values()
            for j in range(0, len(group), lanes)
        ]
        if jobs <= 1 or len(batches) <= 1:
            batch_packed = [_run_lane_group_packed(b) for b in batches]
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, len(batches))) as pool:
                batch_packed = pool.map(_run_lane_group_packed, batches)
        packed_by_task = {
            id(task): block
            for batch, blocks in zip(batches, batch_packed)
            for task, block in zip(batch, blocks)
        }
        packed = [packed_by_task[id(task)] for task in tasks]
    elif jobs <= 1 or len(tasks) <= 1:
        packed = [_run_cell_packed(t) for t in tasks]
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
            packed = pool.map(_run_cell_packed, tasks)
    cells = [
        StreamReplayCell(
            task=task, method=method, summary=dict(zip(keys, values))
        )
        for task, (method, keys, values) in zip(tasks, packed)
    ]
    return StreamReplayResult(cells=cells)


def report(result: StreamReplayResult) -> str:
    """Render the family as a deterministic ASCII table (no wall-clock)."""
    rows = [
        [r.method, f"{r.n_functions}", f"{r.n_invocations}",
         f"{r.mean_startup_ms:.1f}", f"{r.p95_startup_ms:.1f}",
         f"{100 * r.cold_fraction:.1f}%", f"{r.evictions:.1f}",
         f"{r.peak_warm_memory_mb:.0f}", f"{r.n_seeds}"]
        for r in result.rows()
    ]
    return ascii_table(
        ["method", "functions", "invocations", "mean startup [ms]",
         "p95 [ms]", "cold %", "evictions", "peak MB", "seeds"],
        rows,
        title=("Extension: streaming Azure-like replay "
               f"(capacity = {CAPACITY_FRACTION:.0%} of summed image MB, "
               "bounded telemetry)"),
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
