"""Shared experiment infrastructure.

* Pool sizing: the paper's *Loose* capacity is "the peak memory size of all
  running containers in the cluster"; we measure it with an unbounded-pool
  reference run.  *Tight* and *Moderate* are 1/5 and 1/2 of Loose.
* Method construction: the five comparison methods, each paired with its
  designed eviction policy.
* MLCR training cache: experiments share trained schedulers keyed by
  (workload family, capacity, config) so a benchmark session does not
  retrain for every figure.
* Scale control: ``REPRO_SCALE=fast|full|paper`` trades fidelity for wall
  time (training episodes, repeat counts).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.eviction import LRUEviction
from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.core.config import MLCRConfig
from repro.core.mlcr import MLCRScheduler, train_mlcr_scheduler
from repro.core.trainer import EVAL_EPISODE_BASE
from repro.drl.dqn import DQNConfig
from repro.schedulers.base import Scheduler
from repro.schedulers.faascache import FaasCacheScheduler
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.keepalive import KeepAliveScheduler
from repro.schedulers.lru import LRUScheduler
from repro.workloads.workload import Workload

POOL_LEVELS: Dict[str, float] = {"Tight": 0.2, "Moderate": 0.5, "Loose": 1.0}


@dataclass(frozen=True)
class ExperimentScale:
    """Budget knobs shared by every experiment.

    ``fast`` keeps benchmark wall time in minutes; ``full`` approaches the
    paper's budgets (50 repeats, long training) and is meant for overnight
    runs.
    """

    repeats: int
    train_episodes: int
    demo_episodes: int
    n_slots: int
    model_dim: int
    fig11_pool_fractions: Tuple[float, ...]
    restarts: int
    #: Streaming-replay scenario size (ext_stream_replay): functions in the
    #: synthetic Azure trace and total invocations streamed through the
    #: simulator.  ``full`` is the production-scale 10M-invocation replay.
    stream_functions: int = 300
    stream_invocations: int = 30_000

    @staticmethod
    def from_env() -> "ExperimentScale":
        mode = os.environ.get("REPRO_SCALE", "fast").lower()
        if mode in ("full", "paper"):
            return ExperimentScale(
                repeats=10, train_episodes=40, demo_episodes=4,
                n_slots=16, model_dim=64,
                fig11_pool_fractions=(0.25, 0.50, 0.75, 1.00),
                restarts=3,
                stream_functions=20_000, stream_invocations=10_000_000,
            )
        return ExperimentScale(
            repeats=3, train_episodes=12, demo_episodes=2,
            n_slots=12, model_dim=32,
            fig11_pool_fractions=(0.25, 1.00),
            restarts=2,
            stream_functions=300, stream_invocations=30_000,
        )

    def mlcr_config(self, seed: int = 0) -> MLCRConfig:
        """MLCR hyperparameters matching this scale's budget."""
        return MLCRConfig(
            n_slots=self.n_slots,
            model_dim=self.model_dim,
            head_hidden=self.model_dim,
            n_episodes=self.train_episodes,
            demo_episodes=self.demo_episodes,
            epsilon_decay_steps=max(500, self.train_episodes * 300),
            eval_every=3,
            eval_episodes=3,
            shaping_coef=1.5,
            dqn=DQNConfig(batch_size=32, target_sync_every=150,
                          gamma=0.99, lr=7e-4),
            seed=seed,
        )


@dataclass(frozen=True)
class MethodResult:
    """One (method, workload, capacity) evaluation."""

    method: str
    workload: str
    pool_label: str
    capacity_mb: float
    total_startup_s: float
    mean_startup_s: float
    cold_starts: int
    evictions: int
    peak_warm_memory_mb: float
    result: SimulationResult


# ---------------------------------------------------------------------------
# Pool sizing
# ---------------------------------------------------------------------------

def loose_capacity(workload: Workload) -> float:
    """Measure the paper's Loose capacity with an unbounded reference run.

    "Loose is set to the peak memory size of all running containers in the
    cluster": we measure the peak concurrent container memory of an
    exact-match-reuse (LRU-style) reference run with an unbounded pool --
    the container population a conventional keep-alive platform builds up.
    """
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=float("inf")), LRUEviction()
    )
    result = sim.run(workload, LRUScheduler())
    return result.telemetry.peak_live_memory_mb


def pool_sizes(workload: Workload) -> Dict[str, float]:
    """Tight / Moderate / Loose capacities for ``workload``."""
    loose = loose_capacity(workload)
    return {label: frac * loose for label, frac in POOL_LEVELS.items()}


# ---------------------------------------------------------------------------
# Methods
# ---------------------------------------------------------------------------

def make_baselines() -> List[Scheduler]:
    """Fresh instances of the paper's four baseline methods."""
    return [
        LRUScheduler(),
        FaasCacheScheduler(),
        KeepAliveScheduler(),
        GreedyMatchScheduler(),
    ]


def evaluate_scheduler(
    scheduler: Scheduler,
    workload: Workload,
    capacity_mb: float,
    pool_label: str = "",
    stream: bool = False,
) -> MethodResult:
    """Run one scheduler over one workload at one capacity.

    With ``stream`` the workload is fed through
    :meth:`~repro.cluster.simulator.ClusterSimulator.run_stream` (wrapped
    as a lazy arrival stream) instead of batch ``run``.  The two paths are
    decision-identical -- the ``streaming_vs_materialized`` oracle holds
    them to that -- so ``stream`` changes the memory profile, never the
    result.
    """
    scheduler.reset()
    if hasattr(scheduler, "observe_workload"):
        scheduler.observe_workload(workload)
    eviction = (
        scheduler.make_eviction_policy()
        if hasattr(scheduler, "make_eviction_policy")
        else None
    )
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity_mb), eviction
    )
    if stream:
        from repro.workloads.stream import stream_from_workload

        result = sim.run_stream(stream_from_workload(workload), scheduler)
    else:
        result = sim.run(workload, scheduler)
    t = result.telemetry
    return MethodResult(
        method=scheduler.name,
        workload=workload.name,
        pool_label=pool_label,
        capacity_mb=capacity_mb,
        total_startup_s=t.total_startup_latency_s,
        mean_startup_s=t.mean_startup_latency_s,
        cold_starts=t.cold_starts,
        evictions=t.evictions,
        peak_warm_memory_mb=t.peak_warm_memory_mb,
        result=result,
    )


# ---------------------------------------------------------------------------
# MLCR training cache
# ---------------------------------------------------------------------------

_MLCR_CACHE: Dict[Tuple, Tuple[MLCRScheduler, object]] = {}

#: Training seeds are offset from evaluation seeds so the policy is evaluated
#: on unseen workload draws of the same family (the paper trains offline on
#: FStartBench traces, then deploys).
TRAIN_SEED_OFFSET = 1000


def make_training_factory(
    workload_builder: Callable[[int], Workload],
    scale: "ExperimentScale",
) -> Callable[[int], Workload]:
    """Map trainer episode indices to workload seeds.

    Training episodes cycle over a small pool of training seeds; validation
    episodes (indices >= :data:`EVAL_EPISODE_BASE`) use a disjoint held-out
    seed range.  Experiment evaluation seeds (0, 1, 2, ...) are never seen
    during training.
    """
    train_pool = max(1, scale.repeats * 2)

    def factory(ep: int) -> Workload:
        if ep >= EVAL_EPISODE_BASE:
            return workload_builder(
                TRAIN_SEED_OFFSET + 500 + (ep - EVAL_EPISODE_BASE) % 4
            )
        return workload_builder(TRAIN_SEED_OFFSET + ep % train_pool)

    return factory


def train_mlcr_for(
    workload_family: str,
    workload_builder: Callable[[int], Workload],
    capacity_mb: float,
    scale: Optional[ExperimentScale] = None,
    cache: bool = True,
    config: Optional[MLCRConfig] = None,
) -> MLCRScheduler:
    """Train (or fetch a cached) MLCR scheduler for a workload family.

    Parameters
    ----------
    workload_family:
        Cache key component, e.g. ``"Overall"`` or ``"HI-Sim"``.
    workload_builder:
        Maps a seed to a workload; training uses seeds
        ``TRAIN_SEED_OFFSET + episode``.
    capacity_mb:
        Pool capacity to train against (policies are capacity-specific).
    """
    scale = scale or ExperimentScale.from_env()
    cfg = config or scale.mlcr_config()
    key = (workload_family, round(capacity_mb, 1), cfg, scale.restarts)
    if cache and key in _MLCR_CACHE:
        return _MLCR_CACHE[key][0]

    # DQN training on small budgets is seed-sensitive: train a few restarts
    # and keep the one with the best *validation* latency (the validation
    # seeds are disjoint from both training and evaluation seeds).
    best = None
    factory = make_training_factory(workload_builder, scale)
    for restart in range(max(1, scale.restarts)):
        restart_cfg = replace(cfg, seed=cfg.seed + 1017 * restart)
        scheduler, history = train_mlcr_scheduler(
            workload_factory=factory,
            sim_config=SimulationConfig(pool_capacity_mb=capacity_mb),
            config=restart_cfg,
        )
        if best is None or history.best_eval_latency < best[1].best_eval_latency:
            best = (scheduler, history)
    if cache:
        _MLCR_CACHE[key] = best
    return best[0]


def clear_mlcr_cache() -> None:
    """Drop all cached trained schedulers (used by tests)."""
    _MLCR_CACHE.clear()
