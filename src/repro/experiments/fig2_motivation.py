"""Figure 2: why best-effort (greedy) container reuse is not optimal.

The paper's example: two warm containers C1 and C2; F3 arrives first and
greedily takes the container that minimizes *its own* startup (Policy 1), but
that container was the only viable deep match for the soon-arriving F2, so
the *total* startup time ends up higher than the globally-planned Policy 2.

We reconstruct the scenario with FStartBench functions:

* C1 holds the ``hello-python-debian`` stack (Debian + Python + Flask);
* C2 holds the ``comm-cpp`` stack (CentOS + C++) -- irrelevant to both probes;
* F3 = ``analytics-numpy`` (L2-matches C1; no match with C2);
* F2 = ``alu`` (exactly C1's stack -> L3 full match; no match with C2).

Policy 1 (greedy): F3 grabs C1 at L2; F2 must cold-start.
Policy 2 (planned): F3 cold-starts; F2 warm-starts on C1 at L3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import ascii_table
from repro.containers.costmodel import StartupCostModel
from repro.containers.matching import MatchLevel, match_level
from repro.workloads.functions import function_by_id

C1_FUNC_ID = 5    # hello-python-debian: the contested container
C2_FUNC_ID = 9    # comm-cpp: the decoy container
F3_FUNC_ID = 6    # analytics-numpy: arrives first, L2 match with C1
F2_FUNC_ID = 10   # alu: arrives second, L3 match with C1


@dataclass(frozen=True)
class Fig2Result:
    """Startup latencies of both policies and the option table."""

    options: Dict[str, Dict[str, float]]  # function -> {start kind -> latency}
    policy1_total_s: float                # greedy (best-effort)
    policy2_total_s: float                # globally planned

    @property
    def greedy_is_suboptimal(self) -> bool:
        return self.policy1_total_s > self.policy2_total_s


def run(cost_model: StartupCostModel | None = None) -> Fig2Result:
    """Run the experiment; returns its result dataclass."""
    model = cost_model or StartupCostModel()
    c1_image = function_by_id(C1_FUNC_ID).image
    c2_image = function_by_id(C2_FUNC_ID).image

    options: Dict[str, Dict[str, float]] = {}
    latencies: Dict[tuple, float] = {}
    for label, func_id in (("F3", F3_FUNC_ID), ("F2", F2_FUNC_ID)):
        spec = function_by_id(func_id)
        row: Dict[str, float] = {}
        for cname, cimage in (("C1", c1_image), ("C2", c2_image)):
            match = match_level(spec.image, cimage)
            if match.is_reusable:
                row[cname] = model.latency_s(
                    spec.image, match, spec.function_init_s
                )
            else:
                row[cname] = float("nan")
            latencies[(label, cname)] = row[cname]
        row["cold"] = model.latency_s(
            spec.image, MatchLevel.NO_MATCH, spec.function_init_s
        )
        latencies[(label, "cold")] = row["cold"]
        options[label] = row

    # Policy 1 (greedy best-effort): F3 takes its best option (C1 at L2);
    # F2's only deep match is gone, so F2 cold-starts.
    policy1 = latencies[("F3", "C1")] + latencies[("F2", "cold")]
    # Policy 2 (global): F3 cold-starts, preserving C1 for F2's full match.
    policy2 = latencies[("F3", "cold")] + latencies[("F2", "C1")]
    return Fig2Result(
        options=options, policy1_total_s=policy1, policy2_total_s=policy2
    )


def report(result: Fig2Result) -> str:
    """Render the result as the paper-style ASCII report."""
    rows: List[List[str]] = []
    for label, row in result.options.items():
        rows.append(
            [
                label,
                *(
                    "no match" if v != v else f"{v:.2f}s"  # NaN check
                    for v in (row["C1"], row["C2"], row["cold"])
                ),
            ]
        )
    table = ascii_table(
        ["function", "warm C1", "warm C2", "cold"],
        rows,
        title="Fig 2: startup options (seconds)",
    )
    lines = [
        table,
        "",
        f"Policy 1 (greedy best-effort) total: {result.policy1_total_s:.2f}s",
        f"Policy 2 (globally planned)   total: {result.policy2_total_s:.2f}s",
        f"greedy suboptimal: {result.greedy_is_suboptimal}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
