"""Ablations of the MLCR design choices (DESIGN.md section 5).

Four variants trained on the same workload/pool and compared on held-out
seeds:

* **full** -- attention trunk + action mask + greedy demonstration seeding;
* **no-mask** -- the Section IV-C mask removed (invalid actions become cold
  starts and pollute exploration/targets);
* **mlp** -- attention trunk replaced by a flat MLP;
* **no-demos** -- replay buffer not seeded with Greedy-Match rollouts.

Also reports the Lookahead clairvoyant heuristic as a headroom reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.report import ascii_table
from repro.cluster.simulator import SimulationConfig
from repro.core.mlcr import train_mlcr_scheduler
from repro.experiments.common import (
    ExperimentScale,
    evaluate_scheduler,
    make_training_factory,
    pool_sizes,
)
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lookahead import LookaheadScheduler
from repro.workloads.fstartbench import overall_workload

VARIANTS = ("full", "no-mask", "mlp", "no-demos")


@dataclass(frozen=True)
class AblationRow:
    variant: str
    mean_total_startup_s: float
    mean_cold_starts: float
    final_training_latency_s: float


@dataclass(frozen=True)
class AblationResult:
    rows: List[AblationRow]
    greedy_total_s: float
    lookahead_total_s: float
    capacity_mb: float

    def row(self, variant: str) -> AblationRow:
        """The row for one method."""
        for r in self.rows:
            if r.variant == variant:
                return r
        raise KeyError(variant)


def _variant_config(base, variant: str):
    if variant == "full":
        return base
    if variant == "no-mask":
        return replace(base, use_mask=False)
    if variant == "mlp":
        return replace(base, use_attention=False)
    if variant == "no-demos":
        return replace(base, demo_episodes=0)
    raise KeyError(variant)


def run(scale: Optional[ExperimentScale] = None) -> AblationResult:
    """Run the experiment; returns its result dataclass."""
    scale = scale or ExperimentScale.from_env()
    capacity = pool_sizes(overall_workload(seed=0))["Tight"]
    base_cfg = scale.mlcr_config()
    eval_seeds = range(scale.repeats)

    rows: List[AblationRow] = []
    for variant in VARIANTS:
        cfg = _variant_config(base_cfg, variant)
        scheduler, history = train_mlcr_scheduler(
            workload_factory=make_training_factory(
                lambda s: overall_workload(seed=s), scale
            ),
            sim_config=SimulationConfig(pool_capacity_mb=capacity),
            config=cfg,
        )
        totals, colds = [], []
        for seed in eval_seeds:
            res = evaluate_scheduler(
                scheduler, overall_workload(seed=seed), capacity, "Tight"
            )
            totals.append(res.total_startup_s)
            colds.append(res.cold_starts)
        rows.append(
            AblationRow(
                variant=variant,
                mean_total_startup_s=float(np.mean(totals)),
                mean_cold_starts=float(np.mean(colds)),
                final_training_latency_s=history.episode_latencies[-1],
            )
        )

    greedy_totals, lookahead_totals = [], []
    for seed in eval_seeds:
        wl = overall_workload(seed=seed)
        greedy_totals.append(
            evaluate_scheduler(GreedyMatchScheduler(), wl, capacity,
                               "Tight").total_startup_s
        )
        lookahead_totals.append(
            evaluate_scheduler(LookaheadScheduler(), wl, capacity,
                               "Tight").total_startup_s
        )
    return AblationResult(
        rows=rows,
        greedy_total_s=float(np.mean(greedy_totals)),
        lookahead_total_s=float(np.mean(lookahead_totals)),
        capacity_mb=capacity,
    )


def report(result: AblationResult) -> str:
    """Render the result as the paper-style ASCII report."""
    rows = [
        [
            r.variant,
            f"{r.mean_total_startup_s:.1f}",
            f"{r.mean_cold_starts:.1f}",
            f"{r.final_training_latency_s:.1f}",
        ]
        for r in result.rows
    ]
    table = ascii_table(
        ["variant", "eval total startup s", "cold starts",
         "final train latency s"],
        rows,
        title=f"MLCR ablations (Tight pool, {result.capacity_mb:.0f}MB)",
    )
    return "\n".join(
        [
            table,
            "",
            f"Greedy-Match reference:  {result.greedy_total_s:.1f}s",
            f"Lookahead (clairvoyant): {result.lookahead_total_s:.1f}s",
        ]
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
