"""Figure 1: startup-time breakdown under C-style vs W-style reuse.

The paper's motivating microbenchmark: after function F1 runs, its container
is kept warm and four other functions are invoked.  "C" reuses warm
containers only for the *same* function (so F2--F5 all cold-start); "W"
always adopts the warm container, pulling only missing packages.  The paper
reports W accelerating startup by up to 14x over C.

We reproduce the scenario inside the cost model: the warm container hosts the
``analytics-numpy`` stack (Debian + Python + numpy-family runtime) and the
probe functions are the Debian/Python family plus the ML function -- the
closest FStartBench analogue of the original figure's function set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.breakdown import breakdown_table
from repro.containers.costmodel import StartupBreakdown, StartupCostModel
from repro.containers.matching import MatchLevel, match_level
from repro.workloads.functions import function_by_id

#: The warm container's function (the figure's F1).
WARM_FUNC_ID = 6
#: The probe functions (the figure's F2..F5).
PROBE_FUNC_IDS = (5, 7, 8, 13)


@dataclass(frozen=True)
class Fig1Result:
    """Per-probe breakdowns for both reuse styles, plus speedups."""

    cold: Dict[str, StartupBreakdown]      # "C": cold start
    warm: Dict[str, StartupBreakdown]      # "W": reuse F1's container
    match_levels: Dict[str, MatchLevel]
    speedups: Dict[str, float]

    @property
    def max_speedup(self) -> float:
        return max(self.speedups.values())


def run(cost_model: StartupCostModel | None = None) -> Fig1Result:
    """Compute the Fig. 1 breakdowns from the cost model."""
    model = cost_model or StartupCostModel()
    warm_image = function_by_id(WARM_FUNC_ID).image
    cold: Dict[str, StartupBreakdown] = {}
    warm: Dict[str, StartupBreakdown] = {}
    matches: Dict[str, MatchLevel] = {}
    speedups: Dict[str, float] = {}
    for func_id in PROBE_FUNC_IDS:
        spec = function_by_id(func_id)
        label = f"F{func_id}:{spec.name}"
        match = match_level(spec.image, warm_image)
        c = model.breakdown(spec.image, MatchLevel.NO_MATCH, spec.function_init_s)
        w = model.breakdown(spec.image, match, spec.function_init_s)
        cold[label] = c
        warm[label] = w
        matches[label] = match
        speedups[label] = c.total_s / w.total_s if w.total_s > 0 else float("inf")
    return Fig1Result(cold=cold, warm=warm, match_levels=matches,
                      speedups=speedups)


def report(result: Fig1Result) -> str:
    """Render the figure as two phase tables plus speedups."""
    lines: List[str] = [
        "Fig 1: startup breakdown reusing F1's warm container",
        "",
        breakdown_table(result.cold, title='"C" (cold start, same-function reuse only)'),
        "",
        breakdown_table(result.warm, title='"W" (always adopt the warm container)'),
        "",
        "speedups (C total / W total):",
    ]
    for label, speedup in result.speedups.items():
        lines.append(
            f"  {label}: {speedup:5.1f}x  "
            f"(match: {result.match_levels[label].name})"
        )
    lines.append(f"  max speedup: {result.max_speedup:.1f}x (paper: up to 14x)")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report(run()))
