"""Render experiment results as SVG figure files.

Bridges the experiment result dataclasses and :mod:`repro.analysis.svgplot`;
used by ``runall --figures`` to emit one SVG per reproduced figure.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.analysis.svgplot import (
    SvgCanvas,
    box_chart,
    grouped_bar_chart,
    line_chart,
)
from repro.experiments.fig8_overall import METHOD_ORDER, Fig8Result
from repro.experiments.fig9_trajectory import Fig9Result
from repro.experiments.fig10_memory import Fig10Result
from repro.experiments.fig11_benchmarks import Fig11Result


def fig8_latency_chart(result: Fig8Result) -> SvgCanvas:
    """Fig 8a: total startup latency, grouped by pool size."""
    pools = list(result.capacities)
    series = {
        method: [result.cell(method, pool).total_startup_s for pool in pools]
        for method in METHOD_ORDER
    }
    return grouped_bar_chart(
        pools, series,
        title="Fig 8a: total startup latency",
        y_label="seconds",
    )


def fig8_cold_chart(result: Fig8Result) -> SvgCanvas:
    """Fig 8b: cold-start counts, grouped by pool size."""
    pools = list(result.capacities)
    series = {
        method: [result.cell(method, pool).cold_starts for pool in pools]
        for method in METHOD_ORDER
    }
    return grouped_bar_chart(
        pools, series,
        title="Fig 8b: cold starts",
        y_label="count",
    )


def fig9_chart(result: Fig9Result, samples: int = 80) -> SvgCanvas:
    """Fig 9: cumulative startup latency along the arrival stream."""
    n = len(result.arrival_index)
    picks = np.unique(np.linspace(0, n - 1, min(samples, n)).astype(int))
    return line_chart(
        [float(result.arrival_index[i]) for i in picks],
        {
            "Greedy-Match": [float(result.greedy_cum_latency[i])
                             for i in picks],
            "MLCR": [float(result.mlcr_cum_latency[i]) for i in picks],
        },
        title="Fig 9: cumulative startup latency (Loose pool)",
        x_label="arrival index",
        y_label="seconds",
    )


def fig10_chart(result: Fig10Result) -> SvgCanvas:
    """Fig 10: peak warm memory per method."""
    series = {
        "peak warm MB": [
            result.row(m).peak_warm_memory_mb for m in METHOD_ORDER
        ],
    }
    return grouped_bar_chart(
        METHOD_ORDER, series,
        title="Fig 10: warm resource consumption (Loose pool)",
        y_label="MB",
    )


def fig11_chart(result: Fig11Result) -> SvgCanvas:
    """Fig 11x: latency distributions per workload and method."""
    groups: Dict[str, Dict] = {}
    for box in result.boxes:
        groups.setdefault(box.workload, {})[box.method] = box.stats
    return box_chart(
        groups,
        title=f"Fig 11{result.subfigure}: total startup latency",
        y_label="seconds",
    )


def save_figures(
    results: Dict[str, object], outdir: Path
) -> List[Path]:
    """Render every available result into ``outdir``; returns file paths.

    ``results`` maps experiment ids (``fig8``, ``fig9``, ``fig10``,
    ``fig11a``...) to their result objects; unknown ids are skipped.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def emit(name: str, canvas: SvgCanvas) -> None:
        written.append(canvas.save(outdir / f"{name}.svg"))

    if "fig8" in results:
        emit("fig8a_latency", fig8_latency_chart(results["fig8"]))
        emit("fig8b_cold_starts", fig8_cold_chart(results["fig8"]))
    if "fig9" in results:
        emit("fig9_trajectory", fig9_chart(results["fig9"]))
    if "fig10" in results:
        emit("fig10_memory", fig10_chart(results["fig10"]))
    for sub in ("a", "b", "c"):
        key = f"fig11{sub}"
        if key in results:
            emit(key, fig11_chart(results[key]))
    return written
