"""Run every paper experiment and write a combined report.

Used to regenerate the data section of EXPERIMENTS.md::

    python -m repro.experiments.runall [output.md] [--figures DIR]
        [--jobs N] [--lanes L] [--no-cache] [--profile]
        [--stream-functions N] [--stream-invocations N]

Honors ``REPRO_SCALE``.  The MLCR training cache is shared across
experiments, so fig8/fig9/fig10 train each pool size once.  With
``--figures`` the fig8/9/10/11 results are additionally rendered as SVG
files into the given directory.  ``--jobs N`` fans the baseline grid
section over N worker processes and ``--lanes L`` batches its
lane-supported cells L per process onto the lane kernel (the report text
is identical for any N and L).

Section bodies are deterministic (no timestamps; every seed fixed), so
each is additionally served from the content-addressed experiment cache
(:mod:`repro.experiments.cache`): a warm-cache re-run skips every
simulation and re-training and just re-assembles the report, byte-for-byte
equal to the cold run's (wall-clock timings go to stdout only, never into
the report).  ``--no-cache`` (or
``REPRO_CACHE=off``) forces fresh runs; ``--figures`` bypasses the section
cache too, because rendering needs the in-memory result objects a cached
body no longer carries.  ``--profile`` runs everything under cProfile and
prints the top-25 cumulative-time entries.

``--stream-functions`` / ``--stream-invocations`` override the streaming
replay section's trace size (defaults come from ``REPRO_SCALE``: 300 x 30k
fast, 20k x 10M full).  The overrides flow through the scale fields the
section cache is keyed on, so a resized section never serves a stale body.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, replace
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.experiments import (
    ablations,
    ext_stream_replay,
    fig1_breakdown,
    fig2_motivation,
    fig3_dockerhub,
    fig8_overall,
    fig9_trajectory,
    fig10_memory,
    fig11_benchmarks,
    overhead,
    parallel,
    queueing,
    tab2_functions,
)
from repro.experiments.cache import ExperimentCache
from repro.experiments.common import ExperimentScale


def _experiments(
    scale: ExperimentScale, collected: dict, jobs: int = 1,
    cache: Optional[ExperimentCache] = None, lanes: int = 1,
) -> List[Tuple[str, str, Callable[[], str]]]:
    def keep(key: str, result):
        collected[key] = result
        return result

    return [
        ("fig1", "Fig 1 - startup breakdown (C vs W)",
         lambda: fig1_breakdown.report(fig1_breakdown.run())),
        ("fig2", "Fig 2 - greedy vs planned reuse",
         lambda: fig2_motivation.report(fig2_motivation.run())),
        ("fig3", "Fig 3 - Docker Hub popularity",
         lambda: fig3_dockerhub.report(fig3_dockerhub.run())),
        ("tab2", "Table II - FStartBench functions",
         lambda: tab2_functions.report(tab2_functions.run())),
        ("fig8", "Fig 8 - overall latency & cold starts",
         lambda: fig8_overall.report(keep("fig8", fig8_overall.run(scale)))),
        ("fig9", "Fig 9 - cumulative trajectories",
         lambda: fig9_trajectory.report(
             keep("fig9", fig9_trajectory.run(scale)))),
        ("fig10", "Fig 10 - warm resource consumption",
         lambda: fig10_memory.report(
             keep("fig10", fig10_memory.run(scale)))),
        ("fig11a", "Fig 11a - function similarity",
         lambda: fig11_benchmarks.report(keep(
             "fig11a",
             fig11_benchmarks.run_subfigure("a:similarity", scale)))),
        ("fig11b", "Fig 11b - package size variance",
         lambda: fig11_benchmarks.report(keep(
             "fig11b",
             fig11_benchmarks.run_subfigure("b:variance", scale)))),
        ("fig11c", "Fig 11c - arrival patterns",
         lambda: fig11_benchmarks.report(keep(
             "fig11c",
             fig11_benchmarks.run_subfigure("c:arrival", scale)))),
        ("overhead", "Section VI-D - scheduler overhead",
         lambda: overhead.report(overhead.run(scale))),
        ("ablations", "Ablations",
         lambda: ablations.report(ablations.run(scale))),
        ("queueing", "Extension - worker concurrency & queueing",
         lambda: queueing.report(queueing.run(scale))),
        ("grid", "Baseline grid (parallel runner)",
         lambda: parallel.run_default_grid(scale, jobs=jobs, cache=cache,
                                           lanes=lanes).report()),
        ("stream", "Extension - streaming Azure-like replay",
         lambda: ext_stream_replay.report(
             ext_stream_replay.run(scale, jobs=jobs))),
    ]


def run_all(
    output: Path | None = None,
    scale: ExperimentScale | None = None,
    figures_dir: Path | None = None,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    lanes: int = 1,
) -> str:
    """Run every experiment; returns (and optionally writes) the report.

    ``jobs`` only parallelizes the grid section and ``lanes`` only batches
    its lane-supported cells; the report text does not depend on either.  With ``cache`` given, section bodies are
    served content-addressed (except when ``figures_dir`` is set, which
    needs the in-memory results); a warm cache turns the whole run into
    file reads.
    """
    scale = scale or ExperimentScale.from_env()
    collected: dict = {}
    scale_fields = asdict(scale)
    # Figure rendering needs the result objects the section runners feed
    # into ``collected``; a cached body cannot provide them.
    use_section_cache = (
        cache is not None and cache.enabled and figures_dir is None
    )
    sections: List[str] = [
        "# MLCR reproduction - full experiment run",
        f"scale: repeats={scale.repeats}, "
        f"train_episodes={scale.train_episodes}, restarts={scale.restarts}",
    ]
    for key, title, runner in _experiments(scale, collected, jobs, cache,
                                            lanes):
        start = time.time()
        cached_body = (
            cache.get_section(key, scale_fields)
            if use_section_cache else None
        )
        if cached_body is not None:
            print(f"cached: {title}", flush=True)
            body = cached_body
        else:
            print(f"running: {title} ...", flush=True)
            try:
                body = runner()
            except Exception as exc:  # pragma: no cover - surfaced, not hidden
                body = f"FAILED: {exc!r}"
            else:
                if use_section_cache:
                    cache.put_section(key, scale_fields, body)
        elapsed = time.time() - start
        # Wall-clock goes to stdout only: the report itself must be
        # byte-identical across jobs counts and cache states.
        sections.append(f"\n## {title}\n\n```\n{body}\n```")
        print(f"  done in {elapsed:.1f}s", flush=True)
    if figures_dir is not None:
        from repro.experiments.figures import save_figures

        written = save_figures(collected, figures_dir)
        sections.append(
            "\n## Figures\n\n" + "\n".join(f"* `{p}`" for p in written)
        )
        print(f"wrote {len(written)} figure files to {figures_dir}")
    text = "\n".join(sections)
    if output is not None:
        Path(output).write_text(text)
        print(f"wrote {output}")
    return text


def _parse_args(
    argv: List[str],
) -> Tuple[Path | None, Path | None, int, int, bool, bool, dict]:
    output: Path | None = None
    figures: Path | None = None
    jobs = 1
    lanes = 1
    no_cache = False
    profile = False
    scale_overrides: dict = {}
    rest = list(argv)
    while rest:
        arg = rest.pop(0)
        if arg == "--figures":
            if not rest:
                raise SystemExit("--figures needs a directory")
            figures = Path(rest.pop(0))
        elif arg == "--jobs":
            if not rest:
                raise SystemExit("--jobs needs a worker count")
            jobs = int(rest.pop(0))
        elif arg == "--lanes":
            if not rest:
                raise SystemExit("--lanes needs a lane count")
            lanes = int(rest.pop(0))
        elif arg == "--stream-functions":
            if not rest:
                raise SystemExit("--stream-functions needs a count")
            scale_overrides["stream_functions"] = int(rest.pop(0))
        elif arg == "--stream-invocations":
            if not rest:
                raise SystemExit("--stream-invocations needs a count")
            scale_overrides["stream_invocations"] = int(rest.pop(0))
        elif arg == "--no-cache":
            no_cache = True
        elif arg == "--profile":
            profile = True
        else:
            output = Path(arg)
    return output, figures, jobs, lanes, no_cache, profile, scale_overrides


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    (out, figs, n_jobs, n_lanes, no_cache, profile,
     overrides) = _parse_args(sys.argv[1:])
    run_cache = ExperimentCache(enabled=False if no_cache else None)
    run_scale = ExperimentScale.from_env()
    if overrides:
        run_scale = replace(run_scale, **overrides)

    def _main() -> str:
        return run_all(out, scale=run_scale, figures_dir=figs, jobs=n_jobs,
                       cache=run_cache, lanes=n_lanes)

    if profile:
        from repro.profiling import profile_call

        profile_call(_main)
    else:
        _main()
