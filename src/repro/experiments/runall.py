"""Run every paper experiment and write a combined report.

Used to regenerate the data section of EXPERIMENTS.md::

    python -m repro.experiments.runall [output.md] [--figures DIR] [--jobs N]

Honors ``REPRO_SCALE``.  The MLCR training cache is shared across
experiments, so fig8/fig9/fig10 train each pool size once.  With
``--figures`` the fig8/9/10/11 results are additionally rendered as SVG
files into the given directory.  ``--jobs N`` fans the baseline grid
section over N worker processes (its report text is identical for any N).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, List, Tuple

from repro.experiments import (
    ablations,
    fig1_breakdown,
    fig2_motivation,
    fig3_dockerhub,
    fig8_overall,
    fig9_trajectory,
    fig10_memory,
    fig11_benchmarks,
    overhead,
    parallel,
    queueing,
    tab2_functions,
)
from repro.experiments.common import ExperimentScale


def _experiments(
    scale: ExperimentScale, collected: dict, jobs: int = 1
) -> List[Tuple[str, str, Callable[[], str]]]:
    def keep(key: str, result):
        collected[key] = result
        return result

    return [
        ("fig1", "Fig 1 - startup breakdown (C vs W)",
         lambda: fig1_breakdown.report(fig1_breakdown.run())),
        ("fig2", "Fig 2 - greedy vs planned reuse",
         lambda: fig2_motivation.report(fig2_motivation.run())),
        ("fig3", "Fig 3 - Docker Hub popularity",
         lambda: fig3_dockerhub.report(fig3_dockerhub.run())),
        ("tab2", "Table II - FStartBench functions",
         lambda: tab2_functions.report(tab2_functions.run())),
        ("fig8", "Fig 8 - overall latency & cold starts",
         lambda: fig8_overall.report(keep("fig8", fig8_overall.run(scale)))),
        ("fig9", "Fig 9 - cumulative trajectories",
         lambda: fig9_trajectory.report(
             keep("fig9", fig9_trajectory.run(scale)))),
        ("fig10", "Fig 10 - warm resource consumption",
         lambda: fig10_memory.report(
             keep("fig10", fig10_memory.run(scale)))),
        ("fig11a", "Fig 11a - function similarity",
         lambda: fig11_benchmarks.report(keep(
             "fig11a",
             fig11_benchmarks.run_subfigure("a:similarity", scale)))),
        ("fig11b", "Fig 11b - package size variance",
         lambda: fig11_benchmarks.report(keep(
             "fig11b",
             fig11_benchmarks.run_subfigure("b:variance", scale)))),
        ("fig11c", "Fig 11c - arrival patterns",
         lambda: fig11_benchmarks.report(keep(
             "fig11c",
             fig11_benchmarks.run_subfigure("c:arrival", scale)))),
        ("overhead", "Section VI-D - scheduler overhead",
         lambda: overhead.report(overhead.run(scale))),
        ("ablations", "Ablations",
         lambda: ablations.report(ablations.run(scale))),
        ("queueing", "Extension - worker concurrency & queueing",
         lambda: queueing.report(queueing.run(scale))),
        ("grid", "Baseline grid (parallel runner)",
         lambda: parallel.run_default_grid(scale, jobs=jobs).report()),
    ]


def run_all(
    output: Path | None = None,
    scale: ExperimentScale | None = None,
    figures_dir: Path | None = None,
    jobs: int = 1,
) -> str:
    """Run every experiment; returns (and optionally writes) the report.

    ``jobs`` only parallelizes the grid section; its report text does not
    depend on the worker count.
    """
    scale = scale or ExperimentScale.from_env()
    collected: dict = {}
    sections: List[str] = [
        "# MLCR reproduction - full experiment run",
        f"scale: repeats={scale.repeats}, "
        f"train_episodes={scale.train_episodes}, restarts={scale.restarts}",
    ]
    for _key, title, runner in _experiments(scale, collected, jobs):
        start = time.time()
        print(f"running: {title} ...", flush=True)
        try:
            body = runner()
        except Exception as exc:  # pragma: no cover - surfaced, not hidden
            body = f"FAILED: {exc!r}"
        elapsed = time.time() - start
        sections.append(f"\n## {title}\n\n```\n{body}\n```\n"
                        f"_({elapsed:.1f}s)_")
        print(f"  done in {elapsed:.1f}s", flush=True)
    if figures_dir is not None:
        from repro.experiments.figures import save_figures

        written = save_figures(collected, figures_dir)
        sections.append(
            "\n## Figures\n\n" + "\n".join(f"* `{p}`" for p in written)
        )
        print(f"wrote {len(written)} figure files to {figures_dir}")
    text = "\n".join(sections)
    if output is not None:
        Path(output).write_text(text)
        print(f"wrote {output}")
    return text


def _parse_args(argv: List[str]) -> Tuple[Path | None, Path | None, int]:
    output: Path | None = None
    figures: Path | None = None
    jobs = 1
    rest = list(argv)
    while rest:
        arg = rest.pop(0)
        if arg == "--figures":
            if not rest:
                raise SystemExit("--figures needs a directory")
            figures = Path(rest.pop(0))
        elif arg == "--jobs":
            if not rest:
                raise SystemExit("--jobs needs a worker count")
            jobs = int(rest.pop(0))
        else:
            output = Path(arg)
    return output, figures, jobs


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    out, figs, n_jobs = _parse_args(sys.argv[1:])
    run_all(out, figures_dir=figs, jobs=n_jobs)
