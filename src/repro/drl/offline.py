"""Off-policy Q-learning from recorded decision traces.

The golden-trace JSONL format (:mod:`repro.verify.trace`) and the serving
plane's decision recordings (:mod:`repro.serve.recorder`) are both offline
datasets: every line carries the invoked function (``fn``), whether the
start was cold (``cold``), the Table-I match level it started at (``m``)
and the startup latency paid (``lat``).  :func:`fit_from_traces` distills
them into a tabular Q-function over (function, action) pairs -- action 0
is a cold start, actions 1..3 are warm starts at match level L1..L3 --
with reward ``-lat`` and the next arriving function as the successor
state, then runs a fixed number of synchronous value-iteration sweeps.

Determinism contract (pinned by the ``offline_agent_deterministic``
differential oracle and the shard-shuffle property suite):

* **Order independence** -- transitions are reduced to sufficient
  statistics (integer counts plus per-cell reward multisets summed with
  ``math.fsum`` over *sorted* values), so fitting the same shards in any
  order yields a bit-identical Q-table.
* **Replay determinism** -- :class:`OfflineQPolicy` is a pure lookup
  table; scheduling the same workload twice yields identical decisions.

The fitted policy drives :class:`~repro.schedulers.offline.\
OfflineQScheduler`, which masks unavailable actions per decision with the
same :func:`~repro.drl.dqn.masked_argmax` machinery as the PR-3 DQN stack.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.drl.dqn import DQNConfig

#: Action space: cold start plus the three reusable Table-I match levels.
N_ACTIONS = 4
ACTION_COLD = 0

#: Keys a JSONL row must carry to count as one decision (golden-trace
#: lines and serve-recording decision lines both qualify; headers and
#: scheduler-swap markers do not).
_DECISION_KEYS = ("fn", "cold", "m", "lat")

TraceSource = Union[str, Path, Iterable[str]]


@dataclass(frozen=True)
class Transition:
    """One offline (s, a, r, s') sample; ``next_state`` None at episode end."""

    state: str
    action: int
    reward: float
    next_state: Optional[str]


def iter_transitions(lines: Iterable[str]) -> Iterator[Transition]:
    """Parse decision lines into transitions (consecutive-pair chaining).

    Non-decision lines (trace headers, serve swap markers, blanks) are
    skipped; the final decision of a shard becomes a terminal transition.
    """
    prev: Optional[Tuple[str, int, float]] = None
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        try:
            row = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if not isinstance(row, dict):
            continue
        if any(key not in row for key in _DECISION_KEYS):
            continue
        action = ACTION_COLD if row["cold"] else int(row["m"])
        state = str(row["fn"])
        if prev is not None:
            yield Transition(prev[0], prev[1], prev[2], state)
        prev = (state, action, -float(row["lat"]))
    if prev is not None:
        yield Transition(prev[0], prev[1], prev[2], None)


def _read_lines(source: TraceSource) -> Iterable[str]:
    """Lines of one shard: a path is read, an iterable is passed through."""
    if isinstance(source, (str, Path)):
        return Path(source).read_text().splitlines()
    return source


@dataclass(frozen=True)
class OfflineQPolicy:
    """Tabular Q-function fitted from traces (pure lookup at serve time).

    ``q[i, a]`` is the value of action ``a`` in state ``states[i]``; cells
    never observed in the data are ``NaN`` and must be masked out by the
    consumer.  ``n_transitions`` counts the samples the fit consumed.
    """

    states: Tuple[str, ...]
    q: np.ndarray
    gamma: float
    iterations: int
    n_transitions: int

    def __post_init__(self) -> None:
        if self.q.shape != (len(self.states), N_ACTIONS):
            raise ValueError("q must be (n_states, N_ACTIONS)")

    def action_values(self, function_name: str) -> Optional[np.ndarray]:
        """Q-row for ``function_name``; None for unseen functions."""
        index = self._index().get(function_name)
        if index is None:
            return None
        return self.q[index]

    def _index(self) -> Dict[str, int]:
        index = getattr(self, "_state_index", None)
        if index is None:
            index = {name: i for i, name in enumerate(self.states)}
            object.__setattr__(self, "_state_index", index)
        return index

    def save(self, path: Union[str, Path]) -> Path:
        """Serialize to ``.npz``; returns the path."""
        path = Path(path)
        meta = json.dumps({
            "gamma": self.gamma,
            "iterations": self.iterations,
            "n_transitions": self.n_transitions,
        })
        np.savez(
            path,
            states=np.array(self.states, dtype=object),
            q=self.q,
            meta=np.array(meta),
        )
        # np.savez appends .npz only when missing; normalize the return.
        return path if path.suffix == ".npz" else path.with_suffix(
            path.suffix + ".npz"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "OfflineQPolicy":
        """Load a policy saved by :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            meta = json.loads(str(data["meta"]))
            return cls(
                states=tuple(str(s) for s in data["states"]),
                q=np.asarray(data["q"], dtype=np.float64),
                gamma=float(meta["gamma"]),
                iterations=int(meta["iterations"]),
                n_transitions=int(meta["n_transitions"]),
            )


def fit_from_traces(
    sources: Iterable[TraceSource],
    gamma: float = DQNConfig().gamma,
    iterations: int = 50,
) -> OfflineQPolicy:
    """Fit a tabular Q-function from JSONL shards (order-independent).

    Parameters
    ----------
    sources:
        Trace shards: file paths and/or iterables of JSONL lines.
        Transitions chain *within* a shard only, so re-ordering the
        shards -- or fitting them on different machines and merging --
        yields a bit-identical policy.
    gamma:
        Discount factor (defaults to the PR-3 DQN stack's).
    iterations:
        Synchronous value-iteration sweeps over the empirical model.
    """
    if not 0.0 <= gamma < 1.0:
        raise ValueError("gamma must be in [0, 1)")
    counts: Dict[Tuple[str, int], int] = {}
    rewards: Dict[Tuple[str, int], List[float]] = {}
    successors: Dict[Tuple[str, int], Dict[Optional[str], int]] = {}
    n_transitions = 0
    for source in sources:
        for tr in iter_transitions(_read_lines(source)):
            key = (tr.state, tr.action)
            counts[key] = counts.get(key, 0) + 1
            rewards.setdefault(key, []).append(tr.reward)
            nexts = successors.setdefault(key, {})
            nexts[tr.next_state] = nexts.get(tr.next_state, 0) + 1
            n_transitions += 1

    states = tuple(sorted(
        {s for s, _ in counts}
        | {ns for nexts in successors.values() for ns in nexts
           if ns is not None}
    ))
    state_index = {name: i for i, name in enumerate(states)}

    # Empirical MDP: mean reward (fsum over the sorted multiset, so shard
    # order cannot perturb the float sum) and successor frequencies.
    mean_reward: Dict[Tuple[str, int], float] = {
        key: math.fsum(sorted(values)) / counts[key]
        for key, values in rewards.items()
    }

    q = np.zeros((len(states), N_ACTIONS), dtype=np.float64)
    observed = np.zeros((len(states), N_ACTIONS), dtype=bool)
    for (state, action) in counts:
        observed[state_index[state], action] = True
    for _ in range(max(0, iterations)):
        # V(s') = max over *observed* actions (0 for dead-end states).
        masked = np.where(observed, q, -np.inf)
        values = np.where(
            observed.any(axis=1), masked.max(axis=1), 0.0
        )
        new_q = q.copy()
        for key in sorted(counts):
            state, action = key
            total = counts[key]
            bootstrap = 0.0
            for next_state, n in sorted(
                successors[key].items(), key=lambda kv: (kv[0] is None,
                                                         kv[0] or "")
            ):
                if next_state is not None:
                    bootstrap += (n / total) * values[state_index[next_state]]
            new_q[state_index[state], action] = (
                mean_reward[key] + gamma * bootstrap
            )
        q = new_q

    q[~observed] = np.nan
    return OfflineQPolicy(
        states=states,
        q=q,
        gamma=float(gamma),
        iterations=int(iterations),
        n_transitions=n_transitions,
    )


def trace_lines_from_result(result) -> List[str]:
    """Render a simulation result's invocations as offline JSONL lines.

    Used by :meth:`OfflineQScheduler.observe_workload` to bootstrap a
    policy from a reference rollout without touching the filesystem; the
    lines carry exactly the decision keys :func:`iter_transitions` needs.
    """
    columns = result.telemetry.invocation_columns()
    return [
        json.dumps(
            {"fn": fn, "t": t, "cold": bool(cold), "m": int(m),
             "lat": lat},
            separators=(",", ":"),
        )
        for fn, t, cold, m, lat in zip(
            columns.function_name,
            columns.arrival_time,
            columns.cold_start,
            columns.match,
            columns.startup_latency_s,
        )
    ]
