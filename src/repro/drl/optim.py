"""Gradient-descent optimizers.

Optimizer state (momentum / Adam moments) is allocated with
``np.zeros_like`` on the parameter values, so it automatically follows the
network's compute dtype: a float32 network gets float32 optimizer state and
the whole update step stays in float32 (scalar coefficients are Python
floats, which numpy's weak promotion keeps at the array dtype).
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.drl.layers import Parameter


class Optimizer(abc.ABC):
    """Updates a fixed set of parameters from their accumulated gradients."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("no parameters to optimize")
        self.params: List[Parameter] = list(params)
        self.lr = lr

    @abc.abstractmethod
    def step(self) -> None:
        """Apply one update using the current gradients."""

    def zero_grad(self) -> None:
        """Zero every accumulated gradient."""
        for p in self.params:
            p.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Globally rescale gradients to at most ``max_norm``; returns norm."""
        # Flat dot products: no squared-gradient temporaries on the hot path.
        total = np.sqrt(sum(
            float(np.dot(g, g)) for g in (p.grad.ravel() for p in self.params)
        ))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for p in self.params:
                p.grad *= scale
        return total


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: Sequence[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        """Apply one parameter update from the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one parameter update from the accumulated gradients."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        scale = self.lr / bias1
        for p, m, v in zip(self.params, self._m, self._v):
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad**2
            denom = np.sqrt(v / bias2)
            denom += self.eps
            p.value -= scale * m / denom
