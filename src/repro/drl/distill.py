"""Policy distillation: compress the trained DQN into a µs-scale surrogate.

The deployed MLCR policy is deterministic -- ``agent.act(state, mask,
epsilon=0.0)`` is a pure function of the encoded state -- so serving does
not need the network at all: it needs any artifact that maps encoded states
to the same greedy actions.  Following the deployment argument of the
off-policy serverless-RL line (Agarwal et al., 2308.07541), this module
distills the network into a small **CART decision tree** over the raw
encoded-state features:

* :func:`collect_decisions` replays workloads through the simulator's
  incremental API with the trained scheduler, recording every
  ``(state, mask, greedy action)`` the network produces -- the
  distillation dataset is exactly the state distribution the policy
  induces on itself.
* :func:`fit_tree` grows an axis-aligned Gini-impurity tree (pure numpy,
  vectorized split scan) over those states, stored as five flat arrays --
  a :class:`TreeSurrogate` prediction is a handful of array lookups,
  roughly three orders of magnitude cheaper than the attention stack's
  matrix products.
* :class:`TreeSurrogate.act` validates the predicted action against the
  live action mask and reports ``None`` when invalid, so callers fall
  back to the full network instead of acting on a stale prediction
  (masks depend on pool state the tree never saw).

:func:`distill_scheduler` bundles the pipeline and measures in-sample
agreement; :func:`save_surrogate` / :func:`load_surrogate` persist the flat
arrays as ``.npz`` next to the network checkpoints
(:mod:`repro.core.persistence`).  The ``surrogate_vs_network`` differential
oracle enforces the ≥ 99 % agreement bar, and
:meth:`repro.core.mlcr.MLCRScheduler.attach_surrogate` wires the artifact
into the serving path with an audited disagreement counter.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.workload import Workload

#: On-disk format version of surrogate artifacts.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class DistillConfig:
    """Hyperparameters of the distillation tree.

    ``max_depth`` bounds the tree; ``min_samples_leaf`` stops splits that
    would strand fewer samples.  The defaults are deliberately generous:
    in-sample fidelity is the goal (the tree is a compression of the
    network's decision surface, not a generalizing learner), and the
    ``surrogate_vs_network`` oracle enforces the agreement floor.
    """

    max_depth: int = 12
    min_samples_leaf: int = 1

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")


class TreeSurrogate:
    """A flat-array CART tree predicting greedy actions from states.

    Nodes are parallel arrays indexed by node id (root = 0): internal
    nodes carry ``feature``/``threshold`` and route to ``left`` (value
    ``<= threshold``) or ``right``; leaves have ``feature == -1`` and
    carry the predicted action in ``value``.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        n_actions: int,
        state_dim: int,
    ) -> None:
        self.feature = np.asarray(feature, dtype=np.int32)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int32)
        self.right = np.asarray(right, dtype=np.int32)
        self.value = np.asarray(value, dtype=np.int32)
        self.n_actions = int(n_actions)
        self.state_dim = int(state_dim)

    @property
    def n_nodes(self) -> int:
        """Total node count (internal + leaves)."""
        return len(self.feature)

    def predict(self, state: np.ndarray) -> int:
        """Greedy action for one encoded state (scalar tree walk)."""
        feature = self.feature
        node = 0
        f = int(feature[0])
        while f >= 0:
            if state[f] <= self.threshold[node]:
                node = int(self.left[node])
            else:
                node = int(self.right[node])
            f = int(feature[node])
        return int(self.value[node])

    def predict_batch(self, states: np.ndarray) -> np.ndarray:
        """Greedy actions for ``(n, state_dim)`` states (vectorized walk)."""
        states = np.asarray(states, dtype=np.float64)
        nodes = np.zeros(len(states), dtype=np.int32)
        pending = self.feature[nodes] >= 0
        while pending.any():
            ix = np.flatnonzero(pending)
            n = nodes[ix]
            f = self.feature[n]
            go_left = states[ix, f] <= self.threshold[n]
            nodes[ix] = np.where(go_left, self.left[n], self.right[n])
            pending[ix] = self.feature[nodes[ix]] >= 0
        return self.value[nodes].astype(np.int64)

    def act(self, state: np.ndarray, mask: np.ndarray) -> Optional[int]:
        """Mask-validated action for one state.

        Returns the predicted action when the live ``mask`` allows it and
        ``None`` otherwise -- the caller's signal to fall back to the full
        network (graceful degradation instead of acting on a prediction
        the current pool state forbids).
        """
        action = self.predict(state)
        if action < len(mask) and bool(mask[action]):
            return action
        return None


@dataclass(frozen=True)
class DistillReport:
    """What the distillation produced and how faithful it is."""

    n_states: int           # distillation dataset size
    n_nodes: int            # tree size
    agreement: float        # in-sample fraction matching the network
    n_actions: int
    state_dim: int


def collect_decisions(
    scheduler,
    workloads: Sequence[Workload],
    capacity_mb: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replay ``workloads`` with the trained scheduler, recording decisions.

    Drives the simulator's incremental API (``load`` /
    ``next_decision_point`` / ``apply_decision``) so every recorded tuple
    is a state the deployed policy actually visits.  Returns
    ``(states (n, state_dim), masks (n, n_actions) bool, actions (n,))``
    -- the network's greedy choices on its own trajectory.
    """
    from repro.cluster.simulator import ClusterSimulator, SimulationConfig

    states: List[np.ndarray] = []
    masks: List[np.ndarray] = []
    actions: List[int] = []
    for workload in workloads:
        scheduler.reset()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=capacity_mb),
            scheduler.make_eviction_policy(),
        )
        sim.load(workload)
        while True:
            ctx = sim.next_decision_point()
            if ctx is None:
                break
            encoded = scheduler.encoder.encode(ctx)
            mask = (encoded.mask if scheduler.use_mask
                    else np.ones_like(encoded.mask))
            action = scheduler.agent.act(encoded.state, mask, epsilon=0.0)
            states.append(np.asarray(encoded.state, dtype=np.float64))
            masks.append(np.asarray(mask, dtype=bool))
            actions.append(int(action))
            sim.apply_decision(encoded.decision_for(action))
        sim.finish(scheduler_name=scheduler.name)
    if not states:
        raise ValueError("no decisions collected: workloads were empty")
    return (
        np.stack(states),
        np.stack(masks),
        np.asarray(actions, dtype=np.int64),
    )


def _best_split(
    states: np.ndarray, onehot: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Best ``(feature, threshold)`` by weighted Gini, or None if no split.

    ``onehot`` is the ``(n, k)`` label indicator matrix of the node's
    samples.  For every feature the candidate thresholds are the midpoints
    between consecutive distinct sorted values; left/right class counts at
    every cut come from one prefix cumsum, so the scan is vectorized per
    feature.
    """
    n, k = onehot.shape
    total = onehot.sum(axis=0)
    best: Optional[Tuple[int, float]] = None
    best_score = np.inf
    for f in range(states.shape[1]):
        column = states[:, f]
        order = np.argsort(column, kind="stable")
        sorted_vals = column[order]
        cuts = np.flatnonzero(sorted_vals[1:] > sorted_vals[:-1])
        if cuts.size == 0:
            continue
        prefix = np.cumsum(onehot[order], axis=0)
        left = prefix[cuts]                       # (cuts, k) counts <= cut
        right = total[None, :] - left
        n_left = left.sum(axis=1)
        n_right = n - n_left
        gini_left = 1.0 - ((left / n_left[:, None]) ** 2).sum(axis=1)
        gini_right = 1.0 - ((right / n_right[:, None]) ** 2).sum(axis=1)
        score = (n_left * gini_left + n_right * gini_right) / n
        ix = int(score.argmin())
        if score[ix] < best_score - 1e-15:
            cut = cuts[ix]
            best_score = float(score[ix])
            best = (f, float((sorted_vals[cut] + sorted_vals[cut + 1]) / 2.0))
    return best


def fit_tree(
    states: np.ndarray,
    actions: np.ndarray,
    n_actions: int,
    config: Optional[DistillConfig] = None,
) -> TreeSurrogate:
    """Grow a CART tree mapping encoded states to greedy actions.

    Standard top-down Gini induction with depth and leaf-size stopping
    rules; deterministic (stable sorts, first-best ties) so the same
    dataset always yields the same artifact.
    """
    config = config or DistillConfig()
    states = np.asarray(states, dtype=np.float64)
    actions = np.asarray(actions, dtype=np.int64)
    if states.ndim != 2 or len(states) != len(actions):
        raise ValueError("states must be (n, d) aligned with actions (n,)")
    onehot = np.zeros((len(actions), n_actions), dtype=np.float64)
    onehot[np.arange(len(actions)), actions] = 1.0

    feature: List[int] = []
    threshold: List[float] = []
    left: List[int] = []
    right: List[int] = []
    value: List[int] = []

    def new_node() -> int:
        feature.append(-1)
        threshold.append(0.0)
        left.append(-1)
        right.append(-1)
        value.append(0)
        return len(feature) - 1

    def build(ix: np.ndarray, depth: int) -> int:
        node = new_node()
        counts = onehot[ix].sum(axis=0)
        value[node] = int(counts.argmax())
        if (
            depth >= config.max_depth
            or len(ix) < 2 * config.min_samples_leaf
            or counts.max() == len(ix)  # pure
        ):
            return node
        split = _best_split(states[ix], onehot[ix])
        if split is None:
            return node
        f, t = split
        go_left = states[ix, f] <= t
        left_ix = ix[go_left]
        right_ix = ix[~go_left]
        if (
            len(left_ix) < config.min_samples_leaf
            or len(right_ix) < config.min_samples_leaf
        ):
            return node
        feature[node] = f
        threshold[node] = t
        left[node] = build(left_ix, depth + 1)
        right[node] = build(right_ix, depth + 1)
        return node

    build(np.arange(len(states)), 0)
    return TreeSurrogate(
        feature=np.array(feature), threshold=np.array(threshold),
        left=np.array(left), right=np.array(right), value=np.array(value),
        n_actions=n_actions, state_dim=states.shape[1],
    )


def distill_scheduler(
    scheduler,
    workloads: Sequence[Workload],
    capacity_mb: float,
    config: Optional[DistillConfig] = None,
) -> Tuple[TreeSurrogate, DistillReport]:
    """Full pipeline: collect decisions, fit the tree, measure agreement.

    ``scheduler`` is a trained :class:`~repro.core.mlcr.MLCRScheduler`.
    The returned report's ``agreement`` is in-sample: the fraction of
    collected states where the tree reproduces the network's greedy
    action (the quantity the ``surrogate_vs_network`` oracle bounds).
    """
    states, _masks, actions = collect_decisions(
        scheduler, workloads, capacity_mb
    )
    surrogate = fit_tree(
        states, actions, n_actions=scheduler.agent.action_dim, config=config
    )
    predicted = surrogate.predict_batch(states)
    agreement = float((predicted == actions).mean())
    report = DistillReport(
        n_states=len(states),
        n_nodes=surrogate.n_nodes,
        agreement=agreement,
        n_actions=surrogate.n_actions,
        state_dim=surrogate.state_dim,
    )
    return surrogate, report


def save_surrogate(surrogate: TreeSurrogate, path: str) -> None:
    """Persist a surrogate to ``path`` as ``.npz`` (flat arrays + meta)."""
    meta = json.dumps({
        "format_version": FORMAT_VERSION,
        "n_actions": surrogate.n_actions,
        "state_dim": surrogate.state_dim,
    })
    buffer = io.BytesIO()
    np.savez(
        buffer,
        _meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        feature=surrogate.feature,
        threshold=surrogate.threshold,
        left=surrogate.left,
        right=surrogate.right,
        value=surrogate.value,
    )
    with open(path, "wb") as fh:
        fh.write(buffer.getvalue())


def load_surrogate(path: str) -> TreeSurrogate:
    """Load a surrogate saved by :func:`save_surrogate`."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["_meta"]).decode("utf-8"))
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported surrogate format version {version!r}"
            )
        return TreeSurrogate(
            feature=data["feature"], threshold=data["threshold"],
            left=data["left"], right=data["right"], value=data["value"],
            n_actions=meta["n_actions"], state_dim=meta["state_dim"],
        )
