"""Q-networks: the Fig. 7 policy network and an MLP ablation.

The paper's policy network concatenates cluster and function states,
normalizes them, lifts them through an embedding layer, applies two
multi-head attention layers, and maps to per-action Q-values through linear
layers, with a mask filtering invalid actions (applied by the agent).

Our state is structured: one *global* segment (function + cluster features)
and ``n_slots`` *container* segments.  :class:`AttentionQNetwork` embeds each
segment as a token, runs the two attention blocks over the ``n_slots + 1``
tokens, and reads one Q-value per container token (action = reuse that
container) plus one from the global token (action = cold start).  Action
``i < n_slots`` reuses slot ``i``; action ``n_slots`` is the cold start --
exactly the paper's action space with ``a_{n+1}`` as the new-container
action.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.drl.attention import AttentionBlock
from repro.drl.layers import LayerNorm, Linear, Module, ReLU, Sequential


class QNetwork(Module, abc.ABC):
    """Interface: maps flat state batches to per-action Q-value batches."""

    state_dim: int
    action_dim: int

    @abc.abstractmethod
    def forward(self, states: np.ndarray) -> np.ndarray:
        """``(batch, state_dim) -> (batch, action_dim)``."""

    @abc.abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop ``(batch, action_dim)`` gradients; returns state grads."""


class AttentionQNetwork(QNetwork):
    """Token-based Fig. 7 network.

    Parameters
    ----------
    global_dim:
        Width of the global (function + cluster) feature segment.
    slot_dim:
        Width of each container-slot feature segment.
    n_slots:
        Number of container slots (= warm-pool action count ``n``).
    model_dim:
        Token embedding width (the paper uses 512; CPU default 64).
    n_heads:
        Attention heads (paper: 2).
    n_blocks:
        Attention layers (paper: 2).
    head_hidden:
        Hidden width of the Q read-out heads.
    dtype:
        Compute/storage precision.  The MLCR pipeline passes float32 (the
        fast path); the default stays float64 for tight gradient checks.
    """

    def __init__(
        self,
        global_dim: int,
        slot_dim: int,
        n_slots: int,
        rng: np.random.Generator,
        model_dim: int = 64,
        n_heads: int = 2,
        n_blocks: int = 2,
        head_hidden: int = 64,
        dtype: np.dtype = np.float64,
    ) -> None:
        if n_slots < 1:
            raise ValueError("need at least one container slot")
        self.global_dim = global_dim
        self.slot_dim = slot_dim
        self.n_slots = n_slots
        self.model_dim = model_dim
        self.dtype = np.dtype(dtype)
        self.state_dim = global_dim + n_slots * slot_dim
        self.action_dim = n_slots + 1

        self.global_embed = Linear(global_dim, model_dim, rng,
                                   name="embed.global", dtype=dtype)
        self.slot_embed = Linear(slot_dim, model_dim, rng, name="embed.slot",
                                 dtype=dtype)
        self.blocks = [
            AttentionBlock(model_dim, n_heads, rng, name=f"block{i}",
                           dtype=dtype)
            for i in range(n_blocks)
        ]
        self.out_norm = LayerNorm(model_dim, name="out.ln", dtype=dtype)
        self.slot_head = Sequential(
            Linear(model_dim, head_hidden, rng, name="head.slot.0",
                   dtype=dtype),
            ReLU(),
            Linear(head_hidden, 1, rng, name="head.slot.1", dtype=dtype),
        )
        self.cold_head = Sequential(
            Linear(model_dim, head_hidden, rng, name="head.cold.0",
                   dtype=dtype),
            ReLU(),
            Linear(head_hidden, 1, rng, name="head.cold.1", dtype=dtype),
        )
        self._batch: Optional[int] = None

    # -- state layout helpers -------------------------------------------------
    def split_state(self, states: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split flat states into (global, slots) segments."""
        if states.ndim != 2 or states.shape[1] != self.state_dim:
            raise ValueError(
                f"expected (batch, {self.state_dim}), got {states.shape}"
            )
        if states.dtype != self.dtype:
            states = states.astype(self.dtype)
        global_part = states[:, : self.global_dim]
        slot_part = states[:, self.global_dim :].reshape(
            states.shape[0], self.n_slots, self.slot_dim
        )
        return global_part, slot_part

    # -- forward / backward -----------------------------------------------------
    def forward(self, states: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        global_part, slot_part = self.split_state(states)
        b = states.shape[0]
        if self.training:
            self._batch = b
        g_tok = self.global_embed.forward(global_part)[:, None, :]
        s_tok = self.slot_embed.forward(slot_part)
        tokens = np.concatenate([g_tok, s_tok], axis=1)  # (B, n+1, D)
        for block in self.blocks:
            tokens = block.forward(tokens)
        tokens = self.out_norm.forward(tokens)
        q_slots = self.slot_head.forward(tokens[:, 1:, :])[..., 0]   # (B, n)
        q_cold = self.cold_head.forward(tokens[:, 0, :])             # (B, 1)
        return np.concatenate([q_slots, q_cold], axis=1)             # (B, n+1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._batch is None:
            raise RuntimeError("backward before forward")
        b, self._batch = self._batch, None
        if grad.shape != (b, self.action_dim):
            raise ValueError(f"expected grad shape {(b, self.action_dim)}")
        d_slot_q = grad[:, : self.n_slots, None]     # (B, n, 1)
        d_cold_q = grad[:, self.n_slots :]           # (B, 1)
        d_tokens = np.zeros((b, self.n_slots + 1, self.model_dim),
                            dtype=self.dtype)
        d_tokens[:, 1:, :] = self.slot_head.backward(d_slot_q)
        d_tokens[:, 0, :] = self.cold_head.backward(d_cold_q)
        d_tokens = self.out_norm.backward(d_tokens)
        for block in reversed(self.blocks):
            d_tokens = block.backward(d_tokens)
        d_global = self.global_embed.backward(d_tokens[:, 0, :])
        d_slots = self.slot_embed.backward(d_tokens[:, 1:, :])
        return np.concatenate(
            [d_global, d_slots.reshape(b, self.n_slots * self.slot_dim)], axis=1
        )


class DuelingAttentionQNetwork(AttentionQNetwork):
    """Dueling decomposition over the attention trunk (Wang et al., 2016).

    The global token produces a state value ``V(s)``; the slot tokens (and
    the global token, for the cold action) produce advantages ``A(s, a)``.
    Q-values recombine as ``Q = V + A - mean(A)``, which stabilizes learning
    when many actions have near-identical value -- common here, since most
    warm containers are interchangeable.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Reuse the parent's heads as advantage heads; add the value head.
        rng = np.random.default_rng(0)
        self.value_head = Sequential(
            Linear(self.model_dim, kwargs.get("head_hidden", 64), rng,
                   name="head.value.0", dtype=self.dtype),
            ReLU(),
            Linear(kwargs.get("head_hidden", 64), 1, rng,
                   name="head.value.1", dtype=self.dtype),
        )
        self.invalidate_parameter_cache()
        self._dueling_cache = None

    def forward(self, states: np.ndarray) -> np.ndarray:
        """Forward pass: ``Q = V + A - mean(A)`` over the attention trunk."""
        global_part, slot_part = self.split_state(states)
        b = states.shape[0]
        if self.training:
            self._batch = b
        g_tok = self.global_embed.forward(global_part)[:, None, :]
        s_tok = self.slot_embed.forward(slot_part)
        tokens = np.concatenate([g_tok, s_tok], axis=1)
        for block in self.blocks:
            tokens = block.forward(tokens)
        tokens = self.out_norm.forward(tokens)
        adv_slots = self.slot_head.forward(tokens[:, 1:, :])[..., 0]
        adv_cold = self.cold_head.forward(tokens[:, 0, :])
        value = self.value_head.forward(tokens[:, 0, :])     # (B, 1)
        adv = np.concatenate([adv_slots, adv_cold], axis=1)  # (B, A)
        if self.training:
            self._dueling_cache = adv.shape[1]
        return value + adv - adv.mean(axis=1, keepdims=True)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass through the dueling recombination and the trunk."""
        if self._batch is None or self._dueling_cache is None:
            raise RuntimeError("backward before forward")
        b, self._batch = self._batch, None
        k = self._dueling_cache
        self._dueling_cache = None
        d_value = grad.sum(axis=1, keepdims=True)                 # (B, 1)
        d_adv = grad - grad.sum(axis=1, keepdims=True) / k        # (B, A)

        d_tokens = np.zeros((b, self.n_slots + 1, self.model_dim),
                            dtype=self.dtype)
        d_tokens[:, 1:, :] = self.slot_head.backward(
            d_adv[:, : self.n_slots, None]
        )
        d_tokens[:, 0, :] = self.cold_head.backward(d_adv[:, self.n_slots:])
        d_tokens[:, 0, :] += self.value_head.backward(d_value)
        d_tokens = self.out_norm.backward(d_tokens)
        for block in reversed(self.blocks):
            d_tokens = block.backward(d_tokens)
        d_global = self.global_embed.backward(d_tokens[:, 0, :])
        d_slots = self.slot_embed.backward(d_tokens[:, 1:, :])
        return np.concatenate(
            [d_global, d_slots.reshape(b, self.n_slots * self.slot_dim)],
            axis=1,
        )


class MLPQNetwork(QNetwork):
    """Plain MLP over the flat state (the attention-vs-MLP ablation)."""

    def __init__(
        self,
        global_dim: int,
        slot_dim: int,
        n_slots: int,
        rng: np.random.Generator,
        hidden: int = 128,
        n_hidden_layers: int = 2,
        dtype: np.dtype = np.float64,
    ) -> None:
        if n_hidden_layers < 1:
            raise ValueError("need at least one hidden layer")
        self.global_dim = global_dim
        self.slot_dim = slot_dim
        self.n_slots = n_slots
        self.dtype = np.dtype(dtype)
        self.state_dim = global_dim + n_slots * slot_dim
        self.action_dim = n_slots + 1
        layers = [Linear(self.state_dim, hidden, rng, name="mlp.0",
                         dtype=dtype), ReLU()]
        for i in range(1, n_hidden_layers):
            layers += [Linear(hidden, hidden, rng, name=f"mlp.{i}",
                              dtype=dtype), ReLU()]
        layers.append(Linear(hidden, self.action_dim, rng, name="mlp.out",
                             dtype=dtype))
        self.net = Sequential(*layers)

    def forward(self, states: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        if states.ndim != 2 or states.shape[1] != self.state_dim:
            raise ValueError(
                f"expected (batch, {self.state_dim}), got {states.shape}"
            )
        if states.dtype != self.dtype:
            states = states.astype(self.dtype)
        return self.net.forward(states)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        return self.net.backward(grad)
