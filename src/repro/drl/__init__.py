"""From-scratch deep reinforcement learning substrate (numpy only).

The paper trains its scheduler with PyTorch on a V100; this reproduction has
no GPU frameworks available, so the full stack is implemented here on numpy
with manual backpropagation:

* :mod:`repro.drl.layers` -- Parameter/Module framework, Linear, ReLU,
  LayerNorm, Sequential;
* :mod:`repro.drl.attention` -- multi-head self-attention (Fig. 7's trunk);
* :mod:`repro.drl.losses` -- Huber / MSE with analytic gradients;
* :mod:`repro.drl.optim` -- SGD and Adam;
* :mod:`repro.drl.replay` -- experience replay buffer (Algorithm 1's ``E``);
* :mod:`repro.drl.schedules` -- epsilon-greedy exploration schedules;
* :mod:`repro.drl.network` -- the Fig. 7 policy network (token embedding,
  two attention blocks, per-action linear heads) and an MLP ablation;
* :mod:`repro.drl.dqn` -- the (double) DQN agent with action masking.

Every layer's backward pass is verified against numerical differentiation in
the test suite.
"""

from repro.drl.layers import (
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from repro.drl.attention import MultiHeadAttention, migrate_unfused_qkv_state
from repro.drl.losses import huber_loss, mse_loss
from repro.drl.optim import Adam, Optimizer, SGD
from repro.drl.replay import ReplayBuffer, Transition
from repro.drl.schedules import ConstantEpsilon, LinearDecayEpsilon
from repro.drl.network import (
    AttentionQNetwork,
    DuelingAttentionQNetwork,
    MLPQNetwork,
    QNetwork,
)
from repro.drl.dqn import DQNAgent, DQNConfig

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "LayerNorm",
    "Sequential",
    "MultiHeadAttention",
    "migrate_unfused_qkv_state",
    "huber_loss",
    "mse_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "ReplayBuffer",
    "Transition",
    "ConstantEpsilon",
    "LinearDecayEpsilon",
    "QNetwork",
    "AttentionQNetwork",
    "DuelingAttentionQNetwork",
    "MLPQNetwork",
    "DQNAgent",
    "DQNConfig",
]
