"""Multi-head self-attention with manual backpropagation.

The Fig. 7 policy network uses two multi-head attention layers to let the
Q-function relate the arriving function's features to every warm container's
features (and containers to each other).  Input and output are token tensors
of shape ``(batch, tokens, model_dim)``.

Shapes inside the layer follow the standard decomposition: queries, keys and
values are ``(batch, heads, tokens, head_dim)`` with
``head_dim = model_dim / heads``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.drl.layers import Linear, Module


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class MultiHeadAttention(Module):
    """Self-attention: ``softmax(QK^T / sqrt(d)) V`` with an output projection."""

    def __init__(
        self,
        model_dim: int,
        n_heads: int,
        rng: np.random.Generator,
        name: str = "mha",
    ) -> None:
        if model_dim % n_heads != 0:
            raise ValueError(
                f"model_dim {model_dim} not divisible by n_heads {n_heads}"
            )
        self.model_dim = model_dim
        self.n_heads = n_heads
        self.head_dim = model_dim // n_heads
        self.w_q = Linear(model_dim, model_dim, rng, name=f"{name}.q")
        self.w_k = Linear(model_dim, model_dim, rng, name=f"{name}.k")
        self.w_v = Linear(model_dim, model_dim, rng, name=f"{name}.v")
        self.w_o = Linear(model_dim, model_dim, rng, name=f"{name}.o")
        self._cache: Optional[Tuple] = None

    # -- reshaping helpers -------------------------------------------------
    def _split(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) -> (B, H, T, dh)."""
        b, t, _ = x.shape
        return x.reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        """(B, H, T, dh) -> (B, T, D)."""
        b, h, t, dh = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)

    # -- forward / backward --------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        if x.ndim != 3 or x.shape[-1] != self.model_dim:
            raise ValueError(
                f"expected (batch, tokens, {self.model_dim}), got {x.shape}"
            )
        q = self._split(self.w_q.forward(x))
        k = self._split(self.w_k.forward(x))
        v = self._split(self.w_v.forward(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (B, H, T, T)
        attn = _softmax(scores, axis=-1)
        context = attn @ v                               # (B, H, T, dh)
        out = self.w_o.forward(self._merge(context))
        self._cache = (q, k, v, attn, scale)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._cache is None:
            raise RuntimeError("backward before forward")
        q, k, v, attn, scale = self._cache
        self._cache = None

        d_context = self._split(self.w_o.backward(grad))       # (B, H, T, dh)
        d_attn = d_context @ v.transpose(0, 1, 3, 2)            # (B, H, T, T)
        d_v = attn.transpose(0, 1, 3, 2) @ d_context            # (B, H, T, dh)
        # Softmax backward: rowwise Jacobian-vector product.
        d_scores = attn * (d_attn - (d_attn * attn).sum(axis=-1, keepdims=True))
        d_scores *= scale
        d_q = d_scores @ k                                       # (B, H, T, dh)
        d_k = d_scores.transpose(0, 1, 3, 2) @ q                 # (B, H, T, dh)

        dx = self.w_q.backward(self._merge(d_q))
        dx = dx + self.w_k.backward(self._merge(d_k))
        dx = dx + self.w_v.backward(self._merge(d_v))
        return dx


class AttentionBlock(Module):
    """Pre-norm residual attention block: ``x + MHA(LN(x))``.

    Residual connections keep gradients healthy through the two stacked
    attention layers of the policy network.
    """

    def __init__(
        self, model_dim: int, n_heads: int, rng: np.random.Generator,
        name: str = "block",
    ) -> None:
        from repro.drl.layers import LayerNorm  # local to avoid cycle noise

        self.norm = LayerNorm(model_dim, name=f"{name}.ln")
        self.attn = MultiHeadAttention(model_dim, n_heads, rng, name=f"{name}.mha")

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        return x + self.attn.forward(self.norm.forward(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        return grad + self.norm.backward(self.attn.backward(grad))
