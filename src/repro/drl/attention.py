"""Multi-head self-attention with manual backpropagation.

The Fig. 7 policy network uses two multi-head attention layers to let the
Q-function relate the arriving function's features to every warm container's
features (and containers to each other).  Input and output are token tensors
of shape ``(batch, tokens, model_dim)``.

Shapes inside the layer follow the standard decomposition: queries, keys and
values are ``(batch, heads, tokens, head_dim)`` with
``head_dim = model_dim / heads``.

The Q/K/V projections are **fused**: one ``(D, 3D)`` matmul produces all
three, replacing the historical separate ``w_q``/``w_k``/``w_v`` linears.
One big GEMM beats three small ones (better BLAS utilization, one pass over
``x``), and the fused activations reshape into per-head views without
copying.  :func:`migrate_unfused_qkv_state` converts checkpoints saved in
the old unfused layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.drl.layers import Linear, Module, Parameter, glorot_init


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class MultiHeadAttention(Module):
    """Self-attention: ``softmax(QK^T / sqrt(d)) V`` with an output projection."""

    def __init__(
        self,
        model_dim: int,
        n_heads: int,
        rng: np.random.Generator,
        name: str = "mha",
        dtype: np.dtype = np.float64,
    ) -> None:
        if model_dim % n_heads != 0:
            raise ValueError(
                f"model_dim {model_dim} not divisible by n_heads {n_heads}"
            )
        self.model_dim = model_dim
        self.n_heads = n_heads
        self.head_dim = model_dim // n_heads
        self.dtype = np.dtype(dtype)
        # Fused Q/K/V projection: three (D, D) Glorot blocks side by side,
        # so the per-projection fan statistics match the unfused layout.
        fused = np.concatenate(
            [glorot_init(rng, model_dim, model_dim) for _ in range(3)], axis=1
        )
        self.w_qkv = Parameter(fused, f"{name}.qkv.weight", dtype=dtype)
        self.b_qkv = Parameter(
            np.zeros(3 * model_dim), f"{name}.qkv.bias", dtype=dtype
        )
        self.w_o = Linear(model_dim, model_dim, rng, name=f"{name}.o",
                          dtype=dtype)
        # Python float so float32 activations are not promoted to float64.
        self._scale = float(1.0 / np.sqrt(self.head_dim))
        self._cache: Optional[Tuple] = None

    # -- reshaping helpers -------------------------------------------------
    def _split(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) -> (B, H, T, dh) -- a view, no copy."""
        b, t, _ = x.shape
        return x.reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        """(B, H, T, dh) -> (B, T, D) -- one copy (the reshape collapse)."""
        b, h, t, dh = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)

    # -- forward / backward --------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs (training mode only)."""
        if x.ndim != 3 or x.shape[-1] != self.model_dim:
            raise ValueError(
                f"expected (batch, tokens, {self.model_dim}), got {x.shape}"
            )
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        b, t, _ = x.shape
        qkv = x @ self.w_qkv.value + self.b_qkv.value       # (B, T, 3D)
        # (B, T, 3D) -> (3, B, H, T, dh): one transpose view, q/k/v slices.
        qkv = qkv.reshape(b, t, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = (q @ k.transpose(0, 1, 3, 2)) * self._scale  # (B, H, T, T)
        attn = _softmax(scores, axis=-1)
        context = attn @ v                                    # (B, H, T, dh)
        out = self.w_o.forward(self._merge(context))
        if self.training:
            self._cache = (x, q, k, v, attn)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x, q, k, v, attn = self._cache
        self._cache = None

        d_context = self._split(self.w_o.backward(grad))       # (B, H, T, dh)
        d_attn = d_context @ v.transpose(0, 1, 3, 2)            # (B, H, T, T)
        d_v = attn.transpose(0, 1, 3, 2) @ d_context            # (B, H, T, dh)
        # Softmax backward: rowwise Jacobian-vector product.
        d_scores = attn * (d_attn - (d_attn * attn).sum(axis=-1, keepdims=True))
        d_scores *= self._scale
        d_q = d_scores @ k                                       # (B, H, T, dh)
        d_k = d_scores.transpose(0, 1, 3, 2) @ q                 # (B, H, T, dh)

        b, t, _ = x.shape
        # Re-fuse the three gradients into (B, T, 3D) for one weight GEMM.
        d_qkv = np.empty((3, b, self.n_heads, t, self.head_dim),
                         dtype=self.dtype)
        d_qkv[0], d_qkv[1], d_qkv[2] = d_q, d_k, d_v
        d_qkv = d_qkv.transpose(1, 3, 0, 2, 4).reshape(
            b, t, 3 * self.model_dim
        )
        x2 = x.reshape(-1, self.model_dim)
        g2 = d_qkv.reshape(-1, 3 * self.model_dim)
        self.w_qkv.grad += x2.T @ g2
        self.b_qkv.grad += g2.sum(axis=0)
        return d_qkv @ self.w_qkv.value.T


class AttentionBlock(Module):
    """Pre-norm residual attention block: ``x + MHA(LN(x))``.

    Residual connections keep gradients healthy through the two stacked
    attention layers of the policy network.
    """

    def __init__(
        self, model_dim: int, n_heads: int, rng: np.random.Generator,
        name: str = "block", dtype: np.dtype = np.float64,
    ) -> None:
        from repro.drl.layers import LayerNorm  # local to avoid cycle noise

        self.norm = LayerNorm(model_dim, name=f"{name}.ln", dtype=dtype)
        self.attn = MultiHeadAttention(model_dim, n_heads, rng,
                                       name=f"{name}.mha", dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        return x + self.attn.forward(self.norm.forward(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        return grad + self.norm.backward(self.attn.backward(grad))


def migrate_unfused_qkv_state(
    state: Dict[str, np.ndarray], module: Module
) -> Dict[str, np.ndarray]:
    """Convert a pre-fusion state dict to the fused-QKV layout of ``module``.

    Historical checkpoints store each attention layer's Q/K/V projections as
    three separate ``(D, D)`` weights with ``(D,)`` biases, in parameter
    order ``qw, qb, kw, kb, vw, vb``.  This walks ``module``'s (fused)
    parameter list and, at every ``*.qkv.weight`` / ``*.qkv.bias`` pair,
    consumes six old tensors and concatenates them into the fused
    ``(D, 3D)`` weight and ``(3D,)`` bias.  Non-attention parameters pass
    through unchanged, so the helper is a no-op for MLP networks.
    """
    old = [np.asarray(state[str(i)]) for i in range(len(state))]
    new: List[np.ndarray] = []
    i = 0
    params = iter(module.parameters())
    for p in params:
        if p.name.endswith(".qkv.weight"):
            if i + 6 > len(old):
                raise ValueError("unfused state too short for QKV migration")
            qw, qb, kw, kb, vw, vb = old[i:i + 6]
            i += 6
            new.append(np.concatenate([qw, kw, vw], axis=1))
            new.append(np.concatenate([qb, kb, vb]))
            next(params)  # the paired *.qkv.bias, just emitted
        else:
            if i >= len(old):
                raise ValueError("unfused state too short")
            new.append(old[i])
            i += 1
    if i != len(old):
        raise ValueError(
            f"unfused state has {len(old)} tensors, consumed {i}"
        )
    return {str(j): tensor for j, tensor in enumerate(new)}
