"""Loss functions with analytic gradients.

Each loss returns ``(value, grad)`` where ``grad`` is the derivative with
respect to the predictions, already divided by the batch size so callers can
feed it straight into ``Module.backward``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error: ``mean((pred - target)^2)``."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Huber loss: quadratic near zero, linear beyond ``delta``.

    The standard choice for DQN targets -- robust to the large TD errors that
    bootstrapped targets produce early in training.
    """
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    if delta <= 0:
        raise ValueError("delta must be positive")
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    loss_terms = np.where(
        quadratic, 0.5 * diff**2, delta * (abs_diff - 0.5 * delta)
    )
    loss = float(np.mean(loss_terms))
    grad = np.where(quadratic, diff, delta * np.sign(diff)) / diff.size
    return loss, grad
