"""Exploration (epsilon) schedules for epsilon-greedy action selection."""

from __future__ import annotations

import abc


class EpsilonSchedule(abc.ABC):
    """Maps a global step counter to an exploration probability."""

    @abc.abstractmethod
    def value(self, step: int) -> float:
        """Epsilon at ``step`` (must lie in [0, 1])."""


class ConstantEpsilon(EpsilonSchedule):
    """Fixed exploration rate (``0.0`` for pure evaluation)."""

    def __init__(self, epsilon: float) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def value(self, step: int) -> float:
        """Epsilon at the given global step."""
        return self.epsilon


class LinearDecayEpsilon(EpsilonSchedule):
    """Linear decay from ``start`` to ``end`` over ``decay_steps``."""

    def __init__(
        self, start: float = 1.0, end: float = 0.05, decay_steps: int = 10_000
    ) -> None:
        for name, v in (("start", start), ("end", end)):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if decay_steps < 1:
            raise ValueError("decay_steps must be >= 1")
        self.start = start
        self.end = end
        self.decay_steps = decay_steps

    def value(self, step: int) -> float:
        """Epsilon at the given global step."""
        if step >= self.decay_steps:
            return self.end
        frac = step / self.decay_steps
        return self.start + frac * (self.end - self.start)
