"""Experience replay buffer (Algorithm 1's experience pool ``E``).

A fixed-capacity ring buffer over preallocated numpy arrays.  Transitions
store the *next state's action mask* alongside the next state so the DQN
target can respect masking (max over valid actions only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One (s, a, R, s', done) tuple with the next state's action mask.

    ``n_steps`` supports n-step returns: ``reward`` is then the discounted
    sum of the next ``n_steps`` rewards and ``next_state`` the state
    ``n_steps`` decisions later; the learner bootstraps with
    ``gamma ** n_steps``.
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    next_mask: np.ndarray
    done: bool
    n_steps: int = 1


class ReplayBuffer:
    """Uniform-sampling ring buffer of transitions.

    ``dtype`` sets the storage precision of states and rewards; matching it
    to the Q-network's compute dtype (float32 on the fast path) halves the
    buffer's memory footprint and avoids a cast on every sampled batch.
    """

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        dtype: np.dtype = np.float64,
    ) -> None:
        if capacity < 1 or state_dim < 1 or action_dim < 1:
            raise ValueError("capacity, state_dim and action_dim must be >= 1")
        self.capacity = capacity
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.dtype = np.dtype(dtype)
        self._states = np.zeros((capacity, state_dim), dtype=self.dtype)
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity, dtype=self.dtype)
        self._next_states = np.zeros((capacity, state_dim), dtype=self.dtype)
        self._next_masks = np.zeros((capacity, action_dim), dtype=bool)
        self._dones = np.zeros(capacity, dtype=bool)
        self._n_steps = np.ones(capacity, dtype=np.int64)
        self._size = 0
        self._head = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def add(self, transition: Transition) -> None:
        """Append a transition, overwriting the oldest when full."""
        state = np.asarray(transition.state, dtype=self.dtype)
        next_state = np.asarray(transition.next_state, dtype=self.dtype)
        next_mask = np.asarray(transition.next_mask, dtype=bool)
        if state.shape != (self.state_dim,) or next_state.shape != (self.state_dim,):
            raise ValueError("state dimensionality mismatch")
        if next_mask.shape != (self.action_dim,):
            raise ValueError("mask dimensionality mismatch")
        if not 0 <= transition.action < self.action_dim:
            raise ValueError(f"action {transition.action} out of range")
        if transition.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        i = self._head
        self._states[i] = state
        self._actions[i] = transition.action
        self._rewards[i] = transition.reward
        self._next_states[i] = next_state
        self._next_masks[i] = next_mask
        self._dones[i] = transition.done
        self._n_steps[i] = transition.n_steps
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        """Sample ``batch_size`` transitions uniformly with replacement."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        idx = rng.integers(0, self._size, size=batch_size)
        return {
            "states": self._states[idx],
            "actions": self._actions[idx],
            "rewards": self._rewards[idx],
            "next_states": self._next_states[idx],
            "next_masks": self._next_masks[idx],
            "dones": self._dones[idx],
            "n_steps": self._n_steps[idx],
        }
