"""Minimal layer framework with manual backpropagation.

Layers operate on the *last* axis of their input, so the same ``Linear``
works for flat ``(batch, features)`` and token ``(batch, tokens, features)``
tensors.  Each layer caches what its backward pass needs during forward and
releases it after backward.  float64 throughout: the networks are small, and
full precision keeps the numerical gradient checks tight.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self):
        return self.value.shape

    def zero_grad(self) -> None:
        """Zero every accumulated gradient."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Module:
    """Base class: ``forward`` caches, ``backward`` consumes the cache."""

    def parameters(self) -> List[Parameter]:
        """All trainable parameters (collected recursively)."""
        params: List[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Module):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        """Zero every accumulated gradient."""
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        """Forward pass; caches what backward() needs."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        """Backward pass; consumes the forward cache, accumulates grads."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- (de)serialization ---------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter values keyed by position."""
        return {str(i): p.value.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by state_dict()."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} tensors, module has {len(params)}"
            )
        for i, p in enumerate(params):
            tensor = state[str(i)]
            if tensor.shape != p.value.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: "
                    f"{tensor.shape} vs {p.value.shape}"
                )
            p.value[...] = tensor

    def copy_from(self, other: "Module") -> None:
        """Hard-copy parameters from a same-architecture module."""
        self.load_state_dict(other.state_dict())


def glorot_init(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine map over the last axis: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "linear",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_init(rng, in_features, out_features),
                                f"{name}.weight")
        self.bias: Optional[Parameter] = (
            Parameter(np.zeros(out_features), f"{name}.bias") if bias else None
        )
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        self._x = x
        y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._x is None:
            raise RuntimeError("backward before forward")
        x, self._x = self._x, None
        # Fold all leading axes into one batch axis for the weight gradient.
        x2 = x.reshape(-1, self.in_features)
        g2 = grad.reshape(-1, self.out_features)
        self.weight.grad += x2.T @ g2
        if self.bias is not None:
            self.bias.grad += g2.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._mask is None:
            raise RuntimeError("backward before forward")
        mask, self._mask = self._mask, None
        return np.where(mask, grad, 0.0)


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable gain/shift."""

    def __init__(self, dim: int, eps: float = 1e-5, name: str = "ln") -> None:
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), f"{name}.gamma")
        self.beta = Parameter(np.zeros(dim), f"{name}.beta")
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_hat, inv_std = self._cache
        self._cache = None
        # Reduce over every leading axis for the parameter gradients.
        reduce_axes = tuple(range(grad.ndim - 1))
        self.gamma.grad += (grad * x_hat).sum(axis=reduce_axes)
        self.beta.grad += grad.sum(axis=reduce_axes)
        g = grad * self.gamma.value
        n = self.dim
        # d/dx of layer norm (standard closed form).
        return inv_std * (
            g
            - g.mean(axis=-1, keepdims=True)
            - x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
        )


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules: List[Module] = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        for m in self.modules:
            x = m.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        for m in reversed(self.modules):
            grad = m.backward(grad)
        return grad

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
