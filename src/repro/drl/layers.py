"""Minimal layer framework with manual backpropagation.

Layers operate on the *last* axis of their input, so the same ``Linear``
works for flat ``(batch, features)`` and token ``(batch, tokens, features)``
tensors.  Each layer caches what its backward pass needs during forward and
releases it after backward.

Two performance knobs thread through every layer:

* **dtype** -- parameters and activations are stored/computed in a caller
  chosen precision.  The MLCR training/serving pipeline runs float32 (the
  networks are small and float32 halves memory traffic, roughly doubling
  matmul throughput on CPU); the layer-level default stays float64 so the
  numerical gradient checks in the test suite remain tight.
* **inference mode** -- ``module.train(False)`` (or the ``inference()``
  context manager) skips all activation caching: forwards that will never
  be backpropagated (greedy acting, target-network evaluation, validation
  rollouts) pay for arithmetic only.  Inference-mode forwards compute the
  exact same arithmetic and are bitwise-equal to training-mode forwards.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(
        self, value: np.ndarray, name: str = "", dtype: np.dtype = np.float64
    ) -> None:
        self.value = np.asarray(value, dtype=dtype)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self):
        return self.value.shape

    def zero_grad(self) -> None:
        """Zero every accumulated gradient."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Module:
    """Base class: ``forward`` caches, ``backward`` consumes the cache.

    ``training`` gates the caching: in inference mode (``train(False)`` or
    the ``inference()`` context manager) forwards skip the cache entirely.
    """

    #: Class-level default; ``train()`` overrides it per instance.
    training: bool = True

    def _submodules(self) -> Iterator["Module"]:
        """Direct child modules (attributes and list/tuple attributes)."""
        for attr in vars(self).values():
            if isinstance(attr, Module):
                yield attr
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        yield item

    def parameters(self) -> List[Parameter]:
        """All trainable parameters (collected recursively, then cached).

        The module tree is static after construction in this framework, so
        the first collection is memoized -- per-step callers (``zero_grad``
        in the training loop) avoid re-walking the tree.  Code that adds
        parameters after the first collection must call
        :meth:`invalidate_parameter_cache`.
        """
        cached = self.__dict__.get("_param_cache")
        if cached is not None:
            return cached
        params: List[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Module):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        self.__dict__["_param_cache"] = params
        return params

    def _all_modules(self) -> List["Module"]:
        """This module plus every descendant, flattened (and memoized).

        ``train()`` flips the mode on every act/eval boundary; walking the
        tree each time (isinstance checks over all attributes) costs more
        than a small forward pass, so the flat list is cached alongside the
        parameter list.
        """
        cached = self.__dict__.get("_module_cache")
        if cached is not None:
            return cached
        modules: List["Module"] = [self]
        for child in self._submodules():
            modules.extend(child._all_modules())
        self.__dict__["_module_cache"] = modules
        return modules

    def invalidate_parameter_cache(self) -> None:
        """Drop memoized parameter/module lists (recursively) after edits."""
        self.__dict__.pop("_param_cache", None)
        self.__dict__.pop("_module_cache", None)
        for child in self._submodules():
            child.invalidate_parameter_cache()

    def zero_grad(self) -> None:
        """Zero every accumulated gradient."""
        for p in self.parameters():
            p.zero_grad()

    # -- train / inference mode ---------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode (``True``: forwards cache for backward)."""
        for module in self._all_modules():
            module.training = mode
        return self

    @contextlib.contextmanager
    def inference(self):
        """Context manager: run forwards without activation caching."""
        prev = self.training
        self.train(False)
        try:
            yield self
        finally:
            self.train(prev)

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        """Forward pass; caches what backward() needs."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        """Backward pass; consumes the forward cache, accumulates grads."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- (de)serialization ---------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter values keyed by position."""
        return {str(i): p.value.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by state_dict()."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} tensors, module has {len(params)}"
            )
        for i, p in enumerate(params):
            tensor = state[str(i)]
            if tensor.shape != p.value.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: "
                    f"{tensor.shape} vs {p.value.shape}"
                )
            p.value[...] = tensor

    def copy_from(self, other: "Module") -> None:
        """Hard-copy parameters from a same-architecture module."""
        self.load_state_dict(other.state_dict())


def glorot_init(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine map over the last axis: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "linear",
        dtype: np.dtype = np.float64,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_init(rng, in_features, out_features),
                                f"{name}.weight", dtype=dtype)
        self.bias: Optional[Parameter] = (
            Parameter(np.zeros(out_features), f"{name}.bias", dtype=dtype)
            if bias else None
        )
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        if self.training:
            self._x = x
        y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._x is None:
            raise RuntimeError("backward before forward")
        x, self._x = self._x, None
        # Fold all leading axes into one batch axis for the weight gradient.
        x2 = x.reshape(-1, self.in_features)
        g2 = grad.reshape(-1, self.out_features)
        self.weight.grad += x2.T @ g2
        if self.bias is not None:
            self.bias.grad += g2.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        mask = x > 0
        if self.training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._mask is None:
            raise RuntimeError("backward before forward")
        mask, self._mask = self._mask, None
        return np.where(mask, grad, 0.0)


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable gain/shift."""

    def __init__(
        self,
        dim: int,
        eps: float = 1e-5,
        name: str = "ln",
        dtype: np.dtype = np.float64,
    ) -> None:
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), f"{name}.gamma", dtype=dtype)
        self.beta = Parameter(np.zeros(dim), f"{name}.beta", dtype=dtype)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if self.training:
            self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_hat, inv_std = self._cache
        self._cache = None
        # Reduce over every leading axis for the parameter gradients.
        reduce_axes = tuple(range(grad.ndim - 1))
        self.gamma.grad += (grad * x_hat).sum(axis=reduce_axes)
        self.beta.grad += grad.sum(axis=reduce_axes)
        g = grad * self.gamma.value
        # d/dx of layer norm (standard closed form).
        return inv_std * (
            g
            - g.mean(axis=-1, keepdims=True)
            - x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
        )


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules: List[Module] = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what backward() needs."""
        for m in self.modules:
            x = m.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backward pass; consumes the forward cache, accumulates grads."""
        for m in reversed(self.modules):
            grad = m.backward(grad)
        return grad

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
