"""Masked (double) DQN agent.

Implements Algorithm 1 plus the paper's two optimizations (Section IV-C):

* the attention-based policy network (supplied by the caller), and
* the *action mask*: invalid actions (busy / absent / no-match containers)
  are excluded both when acting and inside the bootstrapped target's ``max``.

Double DQN (action selected by the online network, evaluated by the target
network) and Huber loss are standard stabilizers for small-budget training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.drl.losses import huber_loss
from repro.drl.network import QNetwork
from repro.drl.optim import Adam
from repro.drl.replay import ReplayBuffer, Transition

NEG_INF = -1e18


def masked_argmax(q: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Row-wise argmax of ``q`` restricted to ``mask`` (boolean, same shape)."""
    if q.shape != mask.shape:
        raise ValueError("q and mask shapes differ")
    if not mask.any(axis=-1).all():
        raise ValueError("every row needs at least one valid action")
    return np.where(mask, q, NEG_INF).argmax(axis=-1)


@dataclass(frozen=True)
class DQNConfig:
    """Hyperparameters of the DQN agent."""

    gamma: float = 0.95
    lr: float = 1e-3
    batch_size: int = 32
    buffer_capacity: int = 20_000
    target_sync_every: int = 200
    grad_clip: float = 10.0
    double_dqn: bool = True
    huber_delta: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if self.batch_size < 1 or self.buffer_capacity < self.batch_size:
            raise ValueError("buffer must hold at least one batch")
        if self.target_sync_every < 1:
            raise ValueError("target_sync_every must be >= 1")


class DQNAgent:
    """Masked DQN over a caller-supplied Q-network architecture.

    Parameters
    ----------
    network_factory:
        Zero-argument callable building a fresh Q-network; called twice
        (online + target) so the two networks share architecture but not
        parameters.
    config:
        Hyperparameters.
    rng:
        Random generator driving exploration and replay sampling.
    """

    def __init__(
        self,
        network_factory: Callable[[], QNetwork],
        config: DQNConfig,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.rng = rng
        self.online = network_factory()
        self.target = network_factory()
        self.target.copy_from(self.online)
        # The target network only ever runs forward passes for TD targets:
        # keep it permanently in inference mode (no activation caching).
        self.target.train(False)
        self.buffer = ReplayBuffer(
            config.buffer_capacity,
            self.online.state_dim,
            self.online.action_dim,
            dtype=getattr(self.online, "dtype", np.float64),
        )
        self.optimizer = Adam(self.online.parameters(), lr=config.lr)
        self.train_steps = 0
        self.act_steps = 0

    # -- acting ------------------------------------------------------------
    @property
    def action_dim(self) -> int:
        return self.online.action_dim

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Online-network Q-values for a single state (no caching)."""
        with self.online.inference():
            return self.online.forward(state[None, :])[0]

    def act(self, state: np.ndarray, mask: np.ndarray, epsilon: float) -> int:
        """Epsilon-greedy masked action selection."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.action_dim,):
            raise ValueError(f"mask must have shape ({self.action_dim},)")
        if not mask.any():
            raise ValueError("at least one action must be valid")
        self.act_steps += 1
        if self.rng.random() < epsilon:
            valid = np.flatnonzero(mask)
            return int(self.rng.choice(valid))
        q = self.q_values(state)
        return int(masked_argmax(q[None, :], mask[None, :])[0])

    def act_batch(
        self,
        states: np.ndarray,
        masks: np.ndarray,
        epsilon: float = 0.0,
    ) -> np.ndarray:
        """Epsilon-greedy masked actions for a batch of independent states.

        One ``(E, state_dim)`` inference-mode forward replaces ``E``
        batch-1 forwards -- the fast path for synchronized greedy rollouts
        (validation and demonstration episodes).  Returns an ``(E,)`` array
        of action indices.
        """
        states = np.asarray(states)
        masks = np.asarray(masks, dtype=bool)
        if states.ndim != 2 or masks.shape != (len(states), self.action_dim):
            raise ValueError(
                f"expected states (E, {self.online.state_dim}) and masks "
                f"(E, {self.action_dim}), got {states.shape} / {masks.shape}"
            )
        if not masks.any(axis=-1).all():
            raise ValueError("every row needs at least one valid action")
        self.act_steps += len(states)
        with self.online.inference():
            q = self.online.forward(states)
        actions = masked_argmax(q, masks)
        if epsilon > 0.0:
            explore = self.rng.random(len(states)) < epsilon
            for row in np.flatnonzero(explore):
                actions[row] = int(self.rng.choice(np.flatnonzero(masks[row])))
        return actions

    # -- learning -----------------------------------------------------------
    def remember(self, transition: Transition) -> None:
        """Store a transition in the replay buffer."""
        self.buffer.add(transition)

    def can_train(self) -> bool:
        """Whether the buffer holds at least one batch."""
        return len(self.buffer) >= self.config.batch_size

    def train_step(self) -> Optional[float]:
        """One gradient step on a replay batch; returns the loss or None."""
        if not self.can_train():
            return None
        cfg = self.config
        batch = self.buffer.sample(cfg.batch_size, self.rng)
        targets = self._td_targets(batch)

        q_all = self.online.forward(batch["states"])          # (B, A)
        rows = np.arange(cfg.batch_size)
        q_taken = q_all[rows, batch["actions"]]
        loss, d_q_taken = huber_loss(q_taken, targets, cfg.huber_delta)

        # Prioritized replay support: importance weights scale the gradient
        # and the buffer learns the fresh TD errors.
        if "weights" in batch:
            d_q_taken = d_q_taken * batch["weights"]
        if hasattr(self.buffer, "update_priorities") and "indices" in batch:
            self.buffer.update_priorities(
                batch["indices"], q_taken - targets
            )

        grad = np.zeros_like(q_all)
        grad[rows, batch["actions"]] = d_q_taken
        self.online.zero_grad()
        self.online.backward(grad)
        self.optimizer.clip_grad_norm(cfg.grad_clip)
        self.optimizer.step()

        self.train_steps += 1
        if self.train_steps % cfg.target_sync_every == 0:
            self.sync_target()
        return loss

    def _td_targets(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        """Bootstrapped targets with masked (double-)DQN maximization."""
        cfg = self.config
        next_q_target = self.target.forward(batch["next_states"])
        masks = batch["next_masks"]
        if cfg.double_dqn:
            # Action selection only -- no backward pass follows, so the
            # online forward runs in inference mode (no caching).
            with self.online.inference():
                next_q_online = self.online.forward(batch["next_states"])
            best = masked_argmax(next_q_online, masks)
        else:
            best = masked_argmax(next_q_target, masks)
        rows = np.arange(len(best))
        bootstrap = next_q_target[rows, best]
        # n-step returns bootstrap with gamma^n (n = 1 for plain DQN).
        discount = cfg.gamma ** batch["n_steps"]
        return batch["rewards"] + discount * np.where(
            batch["dones"], 0.0, bootstrap
        )

    def sync_target(self) -> None:
        """Hard-copy online parameters into the target network."""
        self.target.copy_from(self.online)
