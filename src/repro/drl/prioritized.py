"""Prioritized experience replay (Schaul et al., 2016).

A drop-in alternative to the uniform :class:`~repro.drl.replay.ReplayBuffer`
that samples transitions proportionally to their TD error.  Backed by a
sum-tree so sampling and priority updates are O(log n).

High-error transitions -- the rare decisions where repacking a container had
delayed consequences -- get replayed more often, which is exactly the
credit-assignment bottleneck of the MLCR scheduling MDP.  Importance-sampling
weights correct the induced bias.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.drl.replay import ReplayBuffer, Transition


class SumTree:
    """A binary-indexed sum tree over ``capacity`` priorities."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # Full binary tree in an array: leaves at [capacity-1, 2*capacity-1).
        self._tree = np.zeros(2 * capacity - 1, dtype=np.float64)

    @property
    def total(self) -> float:
        return float(self._tree[0])

    def set(self, index: int, priority: float) -> None:
        """Set leaf ``index`` to ``priority`` and propagate the delta up."""
        if not 0 <= index < self.capacity:
            raise IndexError(index)
        if priority < 0:
            raise ValueError("priority must be >= 0")
        node = index + self.capacity - 1
        delta = priority - self._tree[node]
        while True:
            self._tree[node] += delta
            if node == 0:
                break
            node = (node - 1) // 2

    def get(self, index: int) -> float:
        """The priority stored at leaf ``index``."""
        return float(self._tree[index + self.capacity - 1])

    def find(self, mass: float) -> int:
        """Find the leaf where cumulative priority reaches ``mass``."""
        if self.total <= 0:
            raise ValueError("cannot sample from an empty tree")
        # Keep the mass strictly inside [0, total); a relative bound stays
        # valid even for denormal-scale totals.
        mass = min(max(mass, 0.0), self.total * (1.0 - 1e-12))
        node = 0
        while node < self.capacity - 1:  # internal node
            left = 2 * node + 1
            # Half-open intervals: mass strictly below the left subtree's
            # total goes left, otherwise right -- so zero-priority leaves
            # can never be selected.
            if mass < self._tree[left]:
                node = left
            else:
                mass -= self._tree[left]
                node = left + 1
        return node - (self.capacity - 1)


class PrioritizedReplayBuffer(ReplayBuffer):
    """TD-error-prioritized replay with importance-sampling weights.

    Parameters
    ----------
    alpha:
        Priority exponent (0 = uniform, 1 = fully proportional).
    beta:
        Importance-sampling correction exponent.
    epsilon:
        Floor added to priorities so no transition starves.
    """

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        alpha: float = 0.6,
        beta: float = 0.4,
        epsilon: float = 1e-3,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(capacity, state_dim, action_dim, dtype=dtype)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.epsilon = epsilon
        self._tree = SumTree(capacity)
        self._max_priority = 1.0

    def add(self, transition: Transition) -> None:
        """Append a transition, updating its sampling priority."""
        index = self._head  # the slot the parent class will fill
        super().add(transition)
        # New transitions get max priority so they are seen at least once.
        self._tree.set(index, self._max_priority**self.alpha)

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        """Priority-proportional sample; adds ``indices`` and ``weights``."""
        if len(self) == 0:
            raise ValueError("cannot sample from an empty buffer")
        total = self._tree.total
        masses = rng.uniform(0.0, total, size=batch_size)
        indices = np.array([self._tree.find(m) for m in masses],
                           dtype=np.int64)
        indices = np.minimum(indices, len(self) - 1)
        batch = {
            "states": self._states[indices],
            "actions": self._actions[indices],
            "rewards": self._rewards[indices],
            "next_states": self._next_states[indices],
            "next_masks": self._next_masks[indices],
            "dones": self._dones[indices],
            "n_steps": self._n_steps[indices],
            "indices": indices,
        }
        probs = np.array([self._tree.get(int(i)) for i in indices])
        probs = np.maximum(probs, 1e-12) / max(total, 1e-12)
        weights = (len(self) * probs) ** (-self.beta)
        batch["weights"] = weights / weights.max()
        return batch

    def update_priorities(
        self, indices: np.ndarray, td_errors: np.ndarray
    ) -> None:
        """Refresh priorities from the latest TD errors."""
        if len(indices) != len(td_errors):
            raise ValueError("indices and td_errors must align")
        for index, err in zip(indices, td_errors):
            priority = (abs(float(err)) + self.epsilon)
            self._max_priority = max(self._max_priority, priority)
            self._tree.set(int(index), priority**self.alpha)
