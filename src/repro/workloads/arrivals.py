"""Arrival processes for workload composition (FStartBench Metric 3).

Three arrival shapes from the paper plus the Poisson process used throughout:

* :class:`PoissonArrivals` -- exponential interarrivals at rate ``lam`` /s.
* :class:`UniformArrivals` -- exactly ``rate_per_minute`` invocations each
  minute, evenly spaced.
* :class:`PeakArrivals` -- alternating high/low one-minute periods (80/20
  invocations per minute in the paper), each spread evenly.

All processes are vectorized over numpy and driven by an explicit
``numpy.random.Generator`` for reproducibility.
"""

from __future__ import annotations

import abc

import numpy as np


class ArrivalProcess(abc.ABC):
    """Generates arrival-time arrays."""

    @abc.abstractmethod
    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Return a sorted array of arrival times in seconds."""


class PoissonArrivals(ArrivalProcess):
    """``n`` arrivals with exponential interarrival times at rate ``lam``."""

    def __init__(self, n: int, lam: float) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        if lam <= 0:
            raise ValueError("lam must be positive")
        self.n = n
        self.lam = lam

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Return a sorted array of arrival times in seconds."""
        gaps = rng.exponential(scale=1.0 / self.lam, size=self.n)
        return np.cumsum(gaps)


class UniformArrivals(ArrivalProcess):
    """Evenly spaced arrivals: ``rate_per_minute`` per minute for ``minutes``."""

    def __init__(self, rate_per_minute: int, minutes: float) -> None:
        if rate_per_minute <= 0 or minutes <= 0:
            raise ValueError("rate_per_minute and minutes must be positive")
        self.rate_per_minute = rate_per_minute
        self.minutes = minutes

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Return a sorted array of arrival times in seconds."""
        total = int(round(self.rate_per_minute * self.minutes))
        spacing = 60.0 / self.rate_per_minute
        return np.arange(total) * spacing


class PeakArrivals(ArrivalProcess):
    """Alternating high/low one-minute periods, evenly spread within each.

    The paper's Peak workload interchanges 80-invocation and 20-invocation
    minutes over a 6-minute window.
    """

    def __init__(
        self,
        high_per_minute: int = 80,
        low_per_minute: int = 20,
        minutes: int = 6,
        start_high: bool = True,
    ) -> None:
        if high_per_minute <= 0 or low_per_minute <= 0 or minutes <= 0:
            raise ValueError("rates and minutes must be positive")
        self.high_per_minute = high_per_minute
        self.low_per_minute = low_per_minute
        self.minutes = minutes
        self.start_high = start_high

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Return a sorted array of arrival times in seconds."""
        chunks = []
        for minute in range(self.minutes):
            is_high = (minute % 2 == 0) == self.start_high
            rate = self.high_per_minute if is_high else self.low_per_minute
            offsets = np.arange(rate) * (60.0 / rate)
            chunks.append(60.0 * minute + offsets)
        return np.concatenate(chunks)


class RandomRateArrivals(ArrivalProcess):
    """Poisson arrivals at 50/minute over a fixed window (paper's "Random").

    Interarrivals are exponential at the per-minute rate; arrivals beyond
    the window are truncated (and the count may fall slightly short, as with
    any finite Poisson window); the target count ``n`` is enforced by
    resampling the tail uniformly inside the window when needed.
    """

    def __init__(self, n: int, rate_per_minute: float, minutes: float) -> None:
        if n <= 0 or rate_per_minute <= 0 or minutes <= 0:
            raise ValueError("all parameters must be positive")
        self.n = n
        self.rate_per_minute = rate_per_minute
        self.minutes = minutes

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Return a sorted array of arrival times in seconds."""
        window = 60.0 * self.minutes
        gaps = rng.exponential(scale=60.0 / self.rate_per_minute, size=self.n)
        times = np.cumsum(gaps)
        overflow = times > window
        if overflow.any():
            times[overflow] = rng.uniform(0.0, window, size=int(overflow.sum()))
        return np.sort(times)
