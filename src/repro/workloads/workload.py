"""Workloads: timed streams of function invocations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.workloads.functions import FunctionSpec


@dataclass(frozen=True)
class Invocation:
    """One function invocation in a workload trace."""

    invocation_id: int
    spec: FunctionSpec
    arrival_time: float
    execution_time_s: float

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if self.execution_time_s <= 0:
            raise ValueError("execution_time_s must be positive")


@dataclass(frozen=True)
class Workload:
    """An immutable, arrival-ordered stream of invocations."""

    name: str
    invocations: tuple
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = [inv.arrival_time for inv in self.invocations]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("invocations must be sorted by arrival time")

    @classmethod
    def from_invocations(
        cls,
        name: str,
        invocations: Sequence[Invocation],
        metadata: Dict[str, float] | None = None,
    ) -> "Workload":
        ordered = tuple(sorted(invocations, key=lambda inv: (inv.arrival_time, inv.invocation_id)))
        return cls(name=name, invocations=ordered, metadata=dict(metadata or {}))

    # -- views -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.invocations)

    def __iter__(self) -> Iterator[Invocation]:
        return iter(self.invocations)

    def function_specs(self) -> List[FunctionSpec]:
        """Distinct function specs, in first-appearance order."""
        seen: Dict[str, FunctionSpec] = {}
        for inv in self.invocations:
            seen.setdefault(inv.spec.name, inv.spec)
        return list(seen.values())

    @property
    def duration_s(self) -> float:
        if not self.invocations:
            return 0.0
        return self.invocations[-1].arrival_time

    def arrival_times(self) -> np.ndarray:
        """Arrival times in arrival order, as an array."""
        return np.array([inv.arrival_time for inv in self.invocations])

    def interarrival_times(self) -> np.ndarray:
        """Gaps between consecutive arrivals (empty for < 2 invocations)."""
        times = self.arrival_times()
        if times.size < 2:
            return np.array([])
        return np.diff(times)

    def invocation_counts(self) -> Dict[str, int]:
        """Invocations per function name."""
        counts: Dict[str, int] = {}
        for inv in self.invocations:
            counts[inv.spec.name] = counts.get(inv.spec.name, 0) + 1
        return counts


def assemble(
    name: str,
    specs: Sequence[FunctionSpec],
    arrival_times: Sequence[np.ndarray],
    rng: np.random.Generator,
    metadata: Dict[str, float] | None = None,
) -> Workload:
    """Merge per-spec arrival-time arrays into one workload.

    ``arrival_times[i]`` holds the arrival times of ``specs[i]``.  Execution
    times are sampled per invocation from the spec's distribution.
    """
    if len(specs) != len(arrival_times):
        raise ValueError("specs and arrival_times must align")
    invocations: List[Invocation] = []
    next_id = 0
    for spec, times in zip(specs, arrival_times):
        for t in np.sort(np.asarray(times, dtype=np.float64)):
            invocations.append(
                Invocation(
                    invocation_id=next_id,
                    spec=spec,
                    arrival_time=float(t),
                    execution_time_s=spec.sample_exec_time(rng),
                )
            )
            next_id += 1
    # Re-number in arrival order so invocation_id matches the arrival index.
    ordered = sorted(invocations, key=lambda inv: (inv.arrival_time, inv.invocation_id))
    renumbered = [
        Invocation(
            invocation_id=i,
            spec=inv.spec,
            arrival_time=inv.arrival_time,
            execution_time_s=inv.execution_time_s,
        )
        for i, inv in enumerate(ordered)
    ]
    return Workload.from_invocations(name, renumbered, metadata)
