"""FStartBench: functions, arrival processes and workload sets.

Reproduces the paper's benchmark (Section V): the 13 functions of Table II,
Poisson/uniform/peak/random arrival processes, the seven workload sets
(HI-Sim, LO-Sim, LO-Var, HI-Var, Uniform, Peak, Random) plus the overall
400-invocation mix of Section VI-B, and a synthetic Azure-like trace
generator reproducing the cited production-workload statistics.
"""

from repro.workloads.functions import (
    FunctionSpec,
    fstartbench_functions,
    function_by_id,
    function_by_name,
)
from repro.workloads.workload import Invocation, Workload
from repro.workloads.arrivals import (
    ArrivalProcess,
    PeakArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from repro.workloads.fstartbench import (
    WORKLOAD_BUILDERS,
    build_workload,
    hi_sim_workload,
    hi_var_workload,
    lo_sim_workload,
    lo_var_workload,
    overall_workload,
    peak_workload,
    random_workload,
    uniform_workload,
)
from repro.workloads.azure import (
    AzureTraceConfig,
    AzureTraceGenerator,
    AzureTraceStream,
)
from repro.workloads.stream import (
    InvocationStream,
    StreamStatistics,
    WorkloadStream,
    merge_function_arrivals,
    statistics_from_counts,
    stream_from_workload,
)
from repro.workloads.composer import (
    ConstantEnvelope,
    DiurnalEnvelope,
    RampEnvelope,
    StepEnvelope,
    WorkloadComposer,
)
from repro.workloads.metrics import workload_similarity, workload_size_variance
from repro.workloads.serialization import load_workload, save_workload

__all__ = [
    "FunctionSpec",
    "fstartbench_functions",
    "function_by_id",
    "function_by_name",
    "Invocation",
    "Workload",
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "PeakArrivals",
    "WORKLOAD_BUILDERS",
    "build_workload",
    "lo_sim_workload",
    "hi_sim_workload",
    "lo_var_workload",
    "hi_var_workload",
    "uniform_workload",
    "peak_workload",
    "random_workload",
    "overall_workload",
    "AzureTraceConfig",
    "AzureTraceGenerator",
    "AzureTraceStream",
    "InvocationStream",
    "StreamStatistics",
    "WorkloadStream",
    "merge_function_arrivals",
    "statistics_from_counts",
    "stream_from_workload",
    "WorkloadComposer",
    "ConstantEnvelope",
    "DiurnalEnvelope",
    "RampEnvelope",
    "StepEnvelope",
    "workload_similarity",
    "workload_size_variance",
    "save_workload",
    "load_workload",
]
