"""Workload (trace) serialization.

FStartBench ships as *traces*: reproducible files a third party can replay
without our generators.  A trace bundles the function definitions (including
their three-level package stacks, resolved against the default catalog on
load) and the timed invocation stream, as a single JSON document.

JSON keeps traces diffable and toolable; numpy arrays are expanded to plain
lists (traces are small -- hundreds of invocations).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.containers.image import FunctionImage
from repro.packages.catalog import PackageCatalog, default_catalog
from repro.packages.package import Package, PackageSet
from repro.workloads.functions import FunctionSpec
from repro.workloads.workload import Invocation, Workload

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_spec(spec: FunctionSpec) -> Dict:
    return {
        "func_id": spec.func_id,
        "name": spec.name,
        "image_name": spec.image.name,
        "memory_mb": spec.image.memory_mb,
        "packages": sorted(p.key for p in spec.image.packages),
        "function_init_s": spec.function_init_s,
        "exec_time_mean_s": spec.exec_time_mean_s,
        "exec_time_cv": spec.exec_time_cv,
        "description": spec.description,
    }


def workload_to_dict(workload: Workload) -> Dict:
    """Encode a workload as a JSON-compatible dictionary."""
    specs = workload.function_specs()
    return {
        "format_version": FORMAT_VERSION,
        "name": workload.name,
        "metadata": dict(workload.metadata),
        "functions": [_encode_spec(s) for s in specs],
        "invocations": [
            {
                "id": inv.invocation_id,
                "function": inv.spec.name,
                "arrival": inv.arrival_time,
                "exec": inv.execution_time_s,
            }
            for inv in workload
        ],
    }


def save_workload(workload: Workload, path: Union[str, Path]) -> Path:
    """Write a workload trace to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(workload_to_dict(workload), indent=1))
    return path


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

class TraceFormatError(ValueError):
    """The trace file is malformed or from an unsupported version."""


def _decode_spec(data: Dict, catalog: PackageCatalog) -> FunctionSpec:
    packages: List[Package] = []
    for key in data["packages"]:
        if key not in catalog:
            raise TraceFormatError(f"unknown package {key!r} in trace")
        packages.append(catalog.by_key(key))
    image = FunctionImage(
        name=data["image_name"],
        packages=PackageSet(packages),
        memory_mb=data["memory_mb"],
    )
    return FunctionSpec(
        func_id=data["func_id"],
        name=data["name"],
        image=image,
        function_init_s=data["function_init_s"],
        exec_time_mean_s=data["exec_time_mean_s"],
        exec_time_cv=data["exec_time_cv"],
        description=data.get("description", ""),
    )


def workload_from_dict(
    data: Dict, catalog: PackageCatalog | None = None
) -> Workload:
    """Decode a workload from :func:`workload_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {data.get('format_version')!r}"
        )
    catalog = catalog or default_catalog()
    try:
        specs = {s["name"]: _decode_spec(s, catalog)
                 for s in data["functions"]}
        invocations = [
            Invocation(
                invocation_id=item["id"],
                spec=specs[item["function"]],
                arrival_time=item["arrival"],
                execution_time_s=item["exec"],
            )
            for item in data["invocations"]
        ]
    except KeyError as exc:
        raise TraceFormatError(f"missing trace field: {exc}") from exc
    return Workload.from_invocations(
        data["name"], invocations, data.get("metadata", {})
    )


def load_workload(
    path: Union[str, Path], catalog: PackageCatalog | None = None
) -> Workload:
    """Read a workload trace written by :func:`save_workload`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not a JSON trace: {exc}") from exc
    return workload_from_dict(data, catalog)
