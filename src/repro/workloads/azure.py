"""Synthetic Azure-like serverless trace generator.

The paper motivates MLCR with statistics from the Azure Functions production
trace (Shahrad et al., ATC'20), which is not redistributable here.  This
generator synthesizes traces reproducing the cited aggregates:

* ~19 % of functions are invoked exactly once,
* >40 % of functions are invoked no more than twice,
* invocation counts across functions are heavily skewed (Zipf),
* arrivals are bursty and hard to predict.

Function images are sampled from the default package catalog with popularity
weights from the synthetic Docker Hub registry, so the generated functions
exhibit the same "popular OS/language, diverse runtime" structure that makes
multi-level reuse worthwhile.

Synthesis is *streaming-first*: :meth:`AzureTraceGenerator.stream` builds an
:class:`AzureTraceStream` -- a lazy, restartable
:class:`~repro.workloads.stream.InvocationStream` that heap-merges
per-function arrival generators, each synthesizing its arrivals in bounded
numpy chunks (binomial splitting over time slices, so a chunk is an exact
sample of the per-function arrival law restricted to its slice).
:meth:`AzureTraceGenerator.generate` is simply ``stream(seed)``
materialized, so list and stream replay agree element-for-element; at
production scale (tens of thousands of functions x millions of
invocations) only the stream is affordable -- its memory is O(#functions),
never O(#invocations).

Burstiness is modeled with a Dirichlet(alpha) weighting over equal time
slices, drawn by stick-breaking (sequential beta-binomial splitting):
``burstiness=0`` degenerates to exact uniform weights (a homogeneous
process), while values near 1 drive ``alpha`` toward 0 and concentrate a
function's invocations into a few slices -- short, hard-to-predict bursts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple, Union

import numpy as np

from repro.containers.image import FunctionImage
from repro.packages.catalog import PackageCatalog, default_catalog
from repro.packages.package import Package, PackageLevel
from repro.workloads.functions import FunctionSpec
from repro.workloads.metrics import workload_similarity, workload_size_variance
from repro.workloads.stream import (
    InvocationStream,
    StreamStatistics,
    merge_function_arrivals,
    statistics_from_counts,
)
from repro.workloads.workload import Invocation, Workload

#: Upper bound on the arrival-chunk size of any single function; the
#: per-function chunk is scaled down proportionally to its share of the
#: trace (floored at :data:`MIN_ARRIVAL_CHUNK`), so the *sum* of live chunk
#: buffers across all merged functions stays O(#functions + chunk).
ARRIVAL_CHUNK = 4096

#: Floor of the per-function arrival chunk: small-count functions buffer at
#: most this many arrivals, making total merge memory linear in #functions.
MIN_ARRIVAL_CHUNK = 32

#: Equal time slices used for the Dirichlet burstiness weighting, capped so
#: the per-function slice loop stays cheap for huge counts.
MAX_BURST_SLICES = 256


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs of the synthetic trace.

    Parameters
    ----------
    n_functions:
        Number of distinct synthetic functions.
    n_invocations:
        Total invocations in the trace.
    duration_s:
        Trace window; arrivals land inside ``[0, duration_s)``.
    zipf_exponent:
        Skew of per-function invocation counts.  The default reproduces the
        "~19 % invoked once, >40 % invoked <= 2 times" statistics.
    single_invocation_fraction:
        Fraction of functions forced to exactly one invocation.
    burstiness:
        0 = homogeneous Poisson; larger values concentrate each function's
        invocations into short bursts (harder to predict).
    """

    n_functions: int = 50
    n_invocations: int = 500
    duration_s: float = 600.0
    zipf_exponent: float = 1.6
    single_invocation_fraction: float = 0.19
    burstiness: float = 0.5

    def __post_init__(self) -> None:
        if self.n_functions < 1 or self.n_invocations < self.n_functions:
            raise ValueError("need n_invocations >= n_functions >= 1")
        if not 0 <= self.single_invocation_fraction < 1:
            raise ValueError("single_invocation_fraction must be in [0, 1)")
        if not 0 <= self.burstiness <= 1:
            raise ValueError("burstiness must be in [0, 1]")


class AzureTraceStream(InvocationStream):
    """Lazy Azure-like trace: specs and counts up front, arrivals on demand.

    Construction samples the function population and per-function
    invocation counts (O(#functions) work and memory); every ``__iter__``
    then heap-merges freshly seeded per-function arrival generators, so
    repeated passes yield identical invocations.  ``metadata`` carries the
    cited trace statistics, computed directly from the counts.
    """

    name = "Azure-like"

    def __init__(self, generator: "AzureTraceGenerator", seed: int) -> None:
        super().__init__()
        self.seed = seed
        self.config = generator.config
        root = np.random.default_rng(seed)
        self.specs: List[FunctionSpec] = generator._sample_functions(root)
        self.counts: np.ndarray = generator._invocation_counts(root)
        self.n_invocations = int(self.counts.sum())
        self.metadata = dict(statistics_from_counts(self.counts.tolist()))
        self._generator = generator

    def __len__(self) -> int:
        return self.n_invocations

    def __iter__(self) -> Iterator[Invocation]:
        gen = self._generator
        total = max(1, self.n_invocations)
        sources = [
            gen._function_arrivals(
                spec, int(count),
                rng=np.random.default_rng((self.seed, index)),
                chunk=_proportional_chunk(int(count), total),
            )
            for index, (spec, count) in enumerate(zip(self.specs, self.counts))
        ]
        return merge_function_arrivals(self.specs, sources)


def _proportional_chunk(count: int, total: int) -> int:
    """Per-function chunk size: a share of :data:`ARRIVAL_CHUNK`
    proportional to the function's share of the trace, floored at
    :data:`MIN_ARRIVAL_CHUNK`."""
    share = math.ceil(ARRIVAL_CHUNK * count / total)
    return max(MIN_ARRIVAL_CHUNK, min(ARRIVAL_CHUNK, share))


class AzureTraceGenerator:
    """Generate Azure-like workloads over synthetic function populations."""

    def __init__(
        self,
        config: AzureTraceConfig | None = None,
        catalog: PackageCatalog | None = None,
    ) -> None:
        self.config = config or AzureTraceConfig()
        self.catalog = catalog or default_catalog()

    # -- function synthesis ------------------------------------------------
    def _sample_image(self, rng: np.random.Generator, idx: int) -> FunctionImage:
        """Sample a three-level image with popularity-skewed OS/language."""
        from repro.packages.catalog import (
            LANGUAGE_GROUPS,
            OS_GROUPS,
            language_group,
            os_group,
        )

        def zipf_pick(names: List[str], s: float = 1.2) -> str:
            ranks = np.arange(1, len(names) + 1, dtype=np.float64)
            w = ranks ** (-s)
            w /= w.sum()
            return names[int(rng.choice(len(names), p=w))]

        os_pkgs = os_group(self.catalog, zipf_pick(sorted(OS_GROUPS)))
        lang_pkgs = language_group(self.catalog, zipf_pick(sorted(LANGUAGE_GROUPS)))
        runtimes = self.catalog.at_level(PackageLevel.RUNTIME)
        n_rt = int(rng.integers(0, 4))
        rt_idx = rng.choice(len(runtimes), size=min(n_rt, len(runtimes)),
                            replace=False)
        rt_pkgs = [runtimes[int(i)] for i in rt_idx]
        return FunctionImage.from_packages(
            f"azure/fn-{idx:04d}", [*os_pkgs, *lang_pkgs, *rt_pkgs]
        )

    def _sample_functions(self, rng: np.random.Generator) -> List[FunctionSpec]:
        specs: List[FunctionSpec] = []
        for i in range(self.config.n_functions):
            image = self._sample_image(rng, i)
            specs.append(
                FunctionSpec(
                    func_id=100 + i,
                    name=image.name,
                    image=image,
                    function_init_s=float(rng.uniform(0.05, 1.5)),
                    exec_time_mean_s=float(rng.lognormal(mean=-1.0, sigma=1.0)
                                           + 0.02),
                    exec_time_cv=0.3,
                )
            )
        return specs

    # -- invocation-count distribution -----------------------------------------
    def _invocation_counts(self, rng: np.random.Generator) -> np.ndarray:
        """Zipf-skewed counts with the cited head/tail shape (O(#functions))."""
        cfg = self.config
        n_single = int(round(cfg.single_invocation_fraction * cfg.n_functions))
        n_rest = cfg.n_functions - n_single
        remaining = cfg.n_invocations - n_single
        ranks = np.arange(1, n_rest + 1, dtype=np.float64)
        weights = ranks ** (-cfg.zipf_exponent)
        weights /= weights.sum()
        # Clamp the tail to two invocations: functions invoked exactly once
        # are modeled by the explicit single_invocation_fraction instead, so
        # the measured "invoked once" statistic matches the Azure trace.
        counts = np.maximum(2, np.round(weights * remaining).astype(np.int64))
        # Adjust the head so counts sum exactly to the target.
        diff = remaining - int(counts.sum())
        counts[0] = max(1, counts[0] + diff)
        all_counts = np.concatenate([counts, np.ones(n_single, dtype=np.int64)])
        rng.shuffle(all_counts)
        return all_counts

    # -- arrivals -----------------------------------------------------------
    def _burst_alpha(self) -> float:
        """Dirichlet concentration for the configured burstiness.

        ``burstiness -> 0`` sends alpha to infinity (handled as exact
        uniform weights); ``burstiness -> 1`` sends alpha to ~0, piling a
        function's arrivals into very few slices.
        """
        b = self.config.burstiness
        return max(1e-3, 0.5 * (1.0 - b) / b) if b > 0 else float("inf")

    def _arrival_chunks(
        self, count: int, rng: np.random.Generator,
        chunk: int = ARRIVAL_CHUNK,
    ) -> Iterator[np.ndarray]:
        """Yield ``count`` sorted arrival times in bounded numpy chunks.

        The trace window is cut into equal slices; per-slice counts are
        drawn by stick-breaking (uniform: conditional binomial; bursty:
        beta-binomial, the Dirichlet-multinomial marginal), then each
        slice's arrivals are sorted uniforms within the slice -- split
        recursively when a slice exceeds ``chunk``.  Concatenating the
        chunks reproduces the exact joint law of sorting ``count`` draws
        from the (burst-weighted) arrival density, at O(chunk) memory.
        """
        cfg = self.config
        if count <= 0:
            return
        n_slices = min(MAX_BURST_SLICES, count)
        if cfg.burstiness == 0 or count == 1 or n_slices == 1:
            yield from _sorted_uniform_chunks(
                rng, count, 0.0, cfg.duration_s, chunk
            )
            return
        alpha = self._burst_alpha()
        width = cfg.duration_s / n_slices
        remaining = count
        for s in range(n_slices):
            if s == n_slices - 1:
                take = remaining
            else:
                frac = rng.beta(alpha, alpha * (n_slices - 1 - s))
                take = int(rng.binomial(remaining, frac))
            if take:
                yield from _sorted_uniform_chunks(
                    rng, take, s * width, (s + 1) * width, chunk
                )
            remaining -= take
            if not remaining:
                return

    def _function_arrivals(
        self, spec: FunctionSpec, count: int, rng: np.random.Generator,
        chunk: int = ARRIVAL_CHUNK,
    ) -> Iterator[Tuple[float, float]]:
        """One function's ``(arrival, exec_time)`` pairs, chunk by chunk."""
        for times in self._arrival_chunks(count, rng, chunk):
            execs = spec.sample_exec_times(times.size, rng)
            yield from zip(times.tolist(), execs.tolist())

    # -- main entry points --------------------------------------------------
    def stream(self, seed: int = 0) -> AzureTraceStream:
        """Build the lazy trace stream (O(#functions) memory)."""
        return AzureTraceStream(self, seed)

    def generate(self, seed: int = 0) -> Workload:
        """Generate one synthetic trace as a materialized :class:`Workload`.

        Defined as ``stream(seed)`` exhausted into a workload -- list and
        stream replay see identical invocations -- plus the workload-level
        similarity metrics (O(#functions^2); only computed here, never on
        the streaming path).
        """
        stream = self.stream(seed)
        wl = stream.materialize()
        meta: Dict[str, float] = {
            "similarity": workload_similarity(wl),
            "size_variance": workload_size_variance(wl),
            **stream.metadata,
        }
        return Workload(name=wl.name, invocations=wl.invocations, metadata=meta)

    # -- verification helpers ------------------------------------------------
    @staticmethod
    def trace_statistics(
        trace: Union[Workload, Iterable[Invocation]],
    ) -> Dict[str, float]:
        """The cited Azure statistics, measured in a single pass.

        Accepts a materialized :class:`Workload` *or* any invocation
        iterable (including an :class:`AzureTraceStream`); state is one
        counter per function, so streams of any length fit in memory.
        """
        return StreamStatistics().consume(trace).statistics()


def _sorted_uniform_chunks(
    rng: np.random.Generator, count: int, lo: float, hi: float, chunk: int,
) -> Iterator[np.ndarray]:
    """Sorted uniform draws on ``[lo, hi)`` in chunks of at most ``chunk``.

    Uses exact binomial splitting: the interval is cut into equal pieces
    and each piece's count is drawn conditionally (multinomial via
    sequential binomials), recursing while a piece still exceeds the chunk
    bound.  The concatenation is distributed exactly as sorting ``count``
    uniforms on ``[lo, hi)``.
    """
    if count <= 0:
        return
    if count <= chunk:
        yield np.sort(rng.uniform(lo, hi, size=count))
        return
    pieces = math.ceil(count / chunk)
    width = (hi - lo) / pieces
    remaining = count
    for p in range(pieces):
        if p == pieces - 1:
            take = remaining
        else:
            take = int(rng.binomial(remaining, 1.0 / (pieces - p)))
        yield from _sorted_uniform_chunks(
            rng, take, lo + p * width, lo + (p + 1) * width, chunk
        )
        remaining -= take
        if not remaining:
            return
