"""Synthetic Azure-like serverless trace generator.

The paper motivates MLCR with statistics from the Azure Functions production
trace (Shahrad et al., ATC'20), which is not redistributable here.  This
generator synthesizes traces reproducing the cited aggregates:

* ~19 % of functions are invoked exactly once,
* >40 % of functions are invoked no more than twice,
* invocation counts across functions are heavily skewed (Zipf),
* arrivals are bursty and hard to predict.

Function images are sampled from the default package catalog with popularity
weights from the synthetic Docker Hub registry, so the generated functions
exhibit the same "popular OS/language, diverse runtime" structure that makes
multi-level reuse worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.containers.image import FunctionImage
from repro.packages.catalog import PackageCatalog, default_catalog
from repro.packages.package import Package, PackageLevel
from repro.workloads.functions import FunctionSpec
from repro.workloads.metrics import workload_similarity, workload_size_variance
from repro.workloads.workload import Invocation, Workload


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs of the synthetic trace.

    Parameters
    ----------
    n_functions:
        Number of distinct synthetic functions.
    n_invocations:
        Total invocations in the trace.
    duration_s:
        Trace window; arrivals land inside ``[0, duration_s)``.
    zipf_exponent:
        Skew of per-function invocation counts.  The default reproduces the
        "~19 % invoked once, >40 % invoked <= 2 times" statistics.
    single_invocation_fraction:
        Fraction of functions forced to exactly one invocation.
    burstiness:
        0 = homogeneous Poisson; larger values concentrate each function's
        invocations into short bursts (harder to predict).
    """

    n_functions: int = 50
    n_invocations: int = 500
    duration_s: float = 600.0
    zipf_exponent: float = 1.6
    single_invocation_fraction: float = 0.19
    burstiness: float = 0.5

    def __post_init__(self) -> None:
        if self.n_functions < 1 or self.n_invocations < self.n_functions:
            raise ValueError("need n_invocations >= n_functions >= 1")
        if not 0 <= self.single_invocation_fraction < 1:
            raise ValueError("single_invocation_fraction must be in [0, 1)")
        if not 0 <= self.burstiness <= 1:
            raise ValueError("burstiness must be in [0, 1]")


class AzureTraceGenerator:
    """Generate Azure-like workloads over synthetic function populations."""

    def __init__(
        self,
        config: AzureTraceConfig | None = None,
        catalog: PackageCatalog | None = None,
    ) -> None:
        self.config = config or AzureTraceConfig()
        self.catalog = catalog or default_catalog()

    # -- function synthesis ------------------------------------------------
    def _sample_image(self, rng: np.random.Generator, idx: int) -> FunctionImage:
        """Sample a three-level image with popularity-skewed OS/language."""
        from repro.packages.catalog import (
            LANGUAGE_GROUPS,
            OS_GROUPS,
            language_group,
            os_group,
        )

        def zipf_pick(names: List[str], s: float = 1.2) -> str:
            ranks = np.arange(1, len(names) + 1, dtype=np.float64)
            w = ranks ** (-s)
            w /= w.sum()
            return names[int(rng.choice(len(names), p=w))]

        os_pkgs = os_group(self.catalog, zipf_pick(sorted(OS_GROUPS)))
        lang_pkgs = language_group(self.catalog, zipf_pick(sorted(LANGUAGE_GROUPS)))
        runtimes = self.catalog.at_level(PackageLevel.RUNTIME)
        n_rt = int(rng.integers(0, 4))
        rt_idx = rng.choice(len(runtimes), size=min(n_rt, len(runtimes)),
                            replace=False)
        rt_pkgs = [runtimes[int(i)] for i in rt_idx]
        return FunctionImage.from_packages(
            f"azure/fn-{idx:04d}", [*os_pkgs, *lang_pkgs, *rt_pkgs]
        )

    def _sample_functions(self, rng: np.random.Generator) -> List[FunctionSpec]:
        specs: List[FunctionSpec] = []
        for i in range(self.config.n_functions):
            image = self._sample_image(rng, i)
            specs.append(
                FunctionSpec(
                    func_id=100 + i,
                    name=image.name,
                    image=image,
                    function_init_s=float(rng.uniform(0.05, 1.5)),
                    exec_time_mean_s=float(rng.lognormal(mean=-1.0, sigma=1.0)
                                           + 0.02),
                    exec_time_cv=0.3,
                )
            )
        return specs

    # -- invocation-count distribution -----------------------------------------
    def _invocation_counts(self, rng: np.random.Generator) -> np.ndarray:
        """Zipf-skewed counts with the cited head/tail shape."""
        cfg = self.config
        n_single = int(round(cfg.single_invocation_fraction * cfg.n_functions))
        n_rest = cfg.n_functions - n_single
        remaining = cfg.n_invocations - n_single
        ranks = np.arange(1, n_rest + 1, dtype=np.float64)
        weights = ranks ** (-cfg.zipf_exponent)
        weights /= weights.sum()
        # Clamp the tail to two invocations: functions invoked exactly once
        # are modeled by the explicit single_invocation_fraction instead, so
        # the measured "invoked once" statistic matches the Azure trace.
        counts = np.maximum(2, np.round(weights * remaining).astype(np.int64))
        # Adjust the head so counts sum exactly to the target.
        diff = remaining - int(counts.sum())
        counts[0] = max(1, counts[0] + diff)
        all_counts = np.concatenate([counts, np.ones(n_single, dtype=np.int64)])
        rng.shuffle(all_counts)
        return all_counts

    # -- arrivals -----------------------------------------------------------
    def _arrivals_for(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        cfg = self.config
        if count == 1 or cfg.burstiness == 0:
            return np.sort(rng.uniform(0.0, cfg.duration_s, size=count))
        # Bursty: cluster invocations around a few burst centers.
        n_bursts = max(1, int(np.ceil(count * (1 - cfg.burstiness) / 4)) )
        centers = rng.uniform(0.0, cfg.duration_s, size=n_bursts)
        which = rng.integers(0, n_bursts, size=count)
        spread = cfg.duration_s * 0.01 * (1.0 - cfg.burstiness + 0.05)
        times = centers[which] + rng.normal(0.0, spread, size=count)
        return np.sort(np.clip(times, 0.0, cfg.duration_s - 1e-6))

    # -- main entry point --------------------------------------------------------
    def generate(self, seed: int = 0) -> Workload:
        """Generate one synthetic trace as a :class:`Workload`."""
        rng = np.random.default_rng(seed)
        specs = self._sample_functions(rng)
        counts = self._invocation_counts(rng)
        invocations: List[Invocation] = []
        inv_id = 0
        for spec, count in zip(specs, counts):
            for t in self._arrivals_for(int(count), rng):
                invocations.append(
                    Invocation(
                        invocation_id=inv_id,
                        spec=spec,
                        arrival_time=float(t),
                        execution_time_s=spec.sample_exec_time(rng),
                    )
                )
                inv_id += 1
        wl = Workload.from_invocations("Azure-like", invocations)
        meta: Dict[str, float] = {
            "similarity": workload_similarity(wl),
            "size_variance": workload_size_variance(wl),
            **self.trace_statistics(wl),
        }
        return Workload(name=wl.name, invocations=wl.invocations, metadata=meta)

    # -- verification helpers ------------------------------------------------
    @staticmethod
    def trace_statistics(workload: Workload) -> Dict[str, float]:
        """The cited Azure statistics, measured on a generated trace."""
        counts = np.array(list(workload.invocation_counts().values()))
        return {
            "frac_invoked_once": float(np.mean(counts == 1)),
            "frac_invoked_le2": float(np.mean(counts <= 2)),
            "max_invocations": float(counts.max()) if counts.size else 0.0,
        }
