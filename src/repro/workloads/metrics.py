"""Workload-level metrics (similarity and package-size variance)."""

from __future__ import annotations

from repro.packages.similarity import pairwise_mean_similarity, package_size_variance
from repro.workloads.workload import Workload


def workload_similarity(workload: Workload) -> float:
    """Mean pairwise Jaccard similarity across the workload's function types.

    The paper reports this per workload: 0.29 for LO-Sim, 0.52 for HI-Sim.
    Computed over distinct function types (not invocations) so arrival counts
    do not skew the metric.
    """
    sets = [spec.image.packages for spec in workload.function_specs()]
    return pairwise_mean_similarity(sets)


def workload_size_variance(workload: Workload) -> float:
    """Variance of package sizes over the workload's distinct packages."""
    sets = [spec.image.packages for spec in workload.function_specs()]
    return package_size_variance(sets)
