"""Workload composition DSL (extending FStartBench, paper future work #1).

The seven canonical workload sets are fixed recipes; this module lets users
compose *new* ones declaratively: pick function specs with mix weights, an
arrival-rate envelope over time (constant, diurnal sinusoid, linear ramp, or
piecewise steps), and a total invocation budget.  Arrivals are drawn from an
inhomogeneous Poisson process via thinning, so any non-negative envelope
works.

Example::

    composer = (
        WorkloadComposer("diurnal-ml")
        .add_function(function_by_id(13), weight=1.0)
        .add_function(function_by_id(5), weight=3.0)
        .with_envelope(DiurnalEnvelope(base_rate=0.5, amplitude=0.4,
                                       period_s=300.0))
        .with_invocations(400)
    )
    workload = composer.build(seed=0)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.functions import FunctionSpec
from repro.workloads.metrics import workload_similarity, workload_size_variance
from repro.workloads.workload import Invocation, Workload


class RateEnvelope(abc.ABC):
    """A non-negative arrival-rate function of time (invocations/second)."""

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (>= 0)."""

    @property
    @abc.abstractmethod
    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate` (for thinning)."""


@dataclass(frozen=True)
class ConstantEnvelope(RateEnvelope):
    """Homogeneous Poisson arrivals."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        return self.rate_per_s

    @property
    def peak_rate(self) -> float:
        """Upper bound on the rate (the constant itself)."""
        return self.rate_per_s


@dataclass(frozen=True)
class DiurnalEnvelope(RateEnvelope):
    """Sinusoidal day/night pattern: ``base * (1 + amplitude sin)``."""

    base_rate: float
    amplitude: float = 0.5
    period_s: float = 600.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.period_s <= 0:
            raise ValueError("base_rate and period_s must be positive")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        phase = 2.0 * np.pi * t / self.period_s + self.phase
        return self.base_rate * (1.0 + self.amplitude * np.sin(phase))

    @property
    def peak_rate(self) -> float:
        """Upper bound on the rate (crest of the sinusoid)."""
        return self.base_rate * (1.0 + self.amplitude)


@dataclass(frozen=True)
class RampEnvelope(RateEnvelope):
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``duration_s``."""

    start_rate: float
    end_rate: float
    duration_s: float

    def __post_init__(self) -> None:
        if min(self.start_rate, self.end_rate) < 0:
            raise ValueError("rates must be >= 0")
        if max(self.start_rate, self.end_rate) <= 0:
            raise ValueError("at least one rate must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (clamped past the end)."""
        frac = min(max(t / self.duration_s, 0.0), 1.0)
        return self.start_rate + frac * (self.end_rate - self.start_rate)

    @property
    def peak_rate(self) -> float:
        """Upper bound on the rate (the larger endpoint)."""
        return max(self.start_rate, self.end_rate)


@dataclass(frozen=True)
class StepEnvelope(RateEnvelope):
    """Piecewise-constant rates: ``[(until_s, rate), ...]`` sorted by time."""

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("need at least one step")
        times = [t for t, _ in self.steps]
        if times != sorted(times):
            raise ValueError("steps must be sorted by time")
        if any(r < 0 for _, r in self.steps):
            raise ValueError("rates must be >= 0")
        if all(r == 0 for _, r in self.steps):
            raise ValueError("at least one rate must be positive")

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (last step persists)."""
        for until, rate in self.steps:
            if t < until:
                return rate
        return self.steps[-1][1]

    @property
    def peak_rate(self) -> float:
        """Upper bound on the rate (maximum step level)."""
        return max(r for _, r in self.steps)


class WorkloadComposer:
    """Fluent builder for custom workloads."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("workload name must be non-empty")
        self.name = name
        self._functions: List[Tuple[FunctionSpec, float]] = []
        self._envelope: Optional[RateEnvelope] = None
        self._n_invocations: Optional[int] = None

    # -- configuration ------------------------------------------------------
    def add_function(self, spec: FunctionSpec,
                     weight: float = 1.0) -> "WorkloadComposer":
        """Add a function type with a sampling weight."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._functions.append((spec, weight))
        return self

    def add_functions(self, specs: Sequence[FunctionSpec],
                      weight: float = 1.0) -> "WorkloadComposer":
        """Add several function types sharing one weight."""
        for spec in specs:
            self.add_function(spec, weight)
        return self

    def with_envelope(self, envelope: RateEnvelope) -> "WorkloadComposer":
        """Set the arrival-rate envelope."""
        self._envelope = envelope
        return self

    def with_invocations(self, n: int) -> "WorkloadComposer":
        """Set the total invocation budget."""
        if n < 1:
            raise ValueError("need at least one invocation")
        self._n_invocations = n
        return self

    # -- building ----------------------------------------------------------
    def build(self, seed: int = 0) -> Workload:
        """Draw the workload (inhomogeneous Poisson thinning)."""
        if not self._functions:
            raise ValueError("no functions added")
        if self._envelope is None:
            raise ValueError("no arrival envelope set")
        if self._n_invocations is None:
            raise ValueError("no invocation budget set")
        rng = np.random.default_rng(seed)
        times = self._sample_arrivals(rng)
        specs, weights = zip(*self._functions)
        probs = np.asarray(weights, dtype=np.float64)
        probs /= probs.sum()
        choices = rng.choice(len(specs), size=len(times), p=probs)
        invocations = [
            Invocation(
                invocation_id=i,
                spec=specs[int(c)],
                arrival_time=float(t),
                execution_time_s=specs[int(c)].sample_exec_time(rng),
            )
            for i, (t, c) in enumerate(zip(times, choices))
        ]
        workload = Workload.from_invocations(self.name, invocations)
        meta = {
            "similarity": workload_similarity(workload),
            "size_variance": workload_size_variance(workload),
        }
        return Workload(name=self.name, invocations=workload.invocations,
                        metadata=meta)

    def _sample_arrivals(self, rng: np.random.Generator) -> np.ndarray:
        """Thinning (Lewis & Shedler): exact inhomogeneous Poisson draws."""
        envelope = self._envelope
        peak = envelope.peak_rate
        times: List[float] = []
        t = 0.0
        # Hard cap on candidate draws guards against degenerate envelopes.
        for _ in range(self._n_invocations * 1000):
            t += rng.exponential(1.0 / peak)
            if rng.random() * peak <= envelope.rate(t):
                times.append(t)
                if len(times) == self._n_invocations:
                    break
        else:  # pragma: no cover - requires a pathological envelope
            raise RuntimeError("arrival sampling did not converge")
        return np.asarray(times)
