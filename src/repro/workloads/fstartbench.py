"""The seven FStartBench workload sets plus the overall evaluation mix.

Workload composition follows Section V:

* **LO-Sim / HI-Sim** (Metric 1): 300 invocations from function types
  {1, 2, 5, 9, 13} / {1, 2, 3, 4, 11}; Poisson arrivals.
* **LO-Var / HI-Var** (Metric 2): 300 invocations; we assign the *measured*
  lower-variance type set to LO-Var (see note below).
* **Uniform / Peak / Random** (Metric 3): 300 invocations from types
  {1, 2, 5, 6, 13} within a 6-minute window; 50/min even, 80/20 alternating
  minutes, and 50/min Poisson respectively.
* **Overall** (Section VI-B): all 13 functions, 400 invocations total, each
  type arriving as a Poisson stream with a random rate in (0, 5] /s.

Note on LO-Var/HI-Var: the paper's text assigns type sets {1,2,5,9,13} to
LO-Var and {1,2,3,4,11} to HI-Var, which contradicts its own variance figures
given any realistic package sizes ({1,2,5,9,13} contains both Tensorflow and
tiny Flask/Express packages and therefore has *much higher* size variance).
We follow the metric rather than the (apparently transposed) text: LO-Var
uses the measured-low-variance set {1,2,3,4,11} and HI-Var the
measured-high-variance set {1,2,5,9,13}.  EXPERIMENTS.md records this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.workloads.arrivals import (
    PeakArrivals,
    PoissonArrivals,
    RandomRateArrivals,
    UniformArrivals,
)
from repro.workloads.functions import FunctionSpec, functions_by_ids
from repro.workloads.metrics import workload_similarity, workload_size_variance
from repro.workloads.workload import Workload, assemble

#: Content-address version of the workload generators: bump whenever any
#: builder below would emit a different invocation stream for the same
#: ``(name, seed)`` (new arrival model, changed type sets, changed counts).
#: Part of every experiment-cache key (:mod:`repro.experiments.cache`), so
#: bumping it invalidates all cached cells and sections at once.
WORKLOAD_GENERATOR_VERSION = 1

LO_SIM_TYPES = (1, 2, 5, 9, 13)
HI_SIM_TYPES = (1, 2, 3, 4, 11)
LO_VAR_TYPES = HI_SIM_TYPES   # measured-low package-size variance
HI_VAR_TYPES = LO_SIM_TYPES   # measured-high package-size variance
ARRIVAL_TYPES = (1, 2, 5, 6, 13)

_DEFAULT_N = 300
_DEFAULT_LAMBDA = 0.5  # per-type Poisson rate (invocations / second)


def _split_counts(total: int, k: int) -> List[int]:
    """Split ``total`` invocations as evenly as possible over ``k`` types."""
    base, extra = divmod(total, k)
    return [base + (1 if i < extra else 0) for i in range(k)]


def _poisson_mix(
    name: str,
    type_ids: Sequence[int],
    n: int,
    lam: float,
    seed: int,
) -> Workload:
    rng = np.random.default_rng(seed)
    specs = functions_by_ids(type_ids)
    counts = _split_counts(n, len(specs))
    times = [PoissonArrivals(c, lam).generate(rng) for c in counts]
    wl = assemble(name, specs, times, rng)
    return _with_metrics(wl)


def _with_metrics(wl: Workload) -> Workload:
    meta = dict(wl.metadata)
    meta["similarity"] = workload_similarity(wl)
    meta["size_variance"] = workload_size_variance(wl)
    return Workload(name=wl.name, invocations=wl.invocations, metadata=meta)


# -- Metric 1: function similarity -------------------------------------------

def lo_sim_workload(seed: int = 0, n: int = _DEFAULT_N,
                    lam: float = _DEFAULT_LAMBDA) -> Workload:
    """300 Poisson invocations from low-similarity types (paper: sim 0.29)."""
    return _poisson_mix("LO-Sim", LO_SIM_TYPES, n, lam, seed)


def hi_sim_workload(seed: int = 0, n: int = _DEFAULT_N,
                    lam: float = _DEFAULT_LAMBDA) -> Workload:
    """300 Poisson invocations from high-similarity types (paper: sim 0.52)."""
    return _poisson_mix("HI-Sim", HI_SIM_TYPES, n, lam, seed)


# -- Metric 2: package size variance -----------------------------------------

def lo_var_workload(seed: int = 0, n: int = _DEFAULT_N,
                    lam: float = _DEFAULT_LAMBDA) -> Workload:
    """300 Poisson invocations from the low-size-variance type set."""
    return _poisson_mix("LO-Var", LO_VAR_TYPES, n, lam, seed)


def hi_var_workload(seed: int = 0, n: int = _DEFAULT_N,
                    lam: float = _DEFAULT_LAMBDA) -> Workload:
    """300 Poisson invocations from the high-size-variance type set."""
    return _poisson_mix("HI-Var", HI_VAR_TYPES, n, lam, seed)


# -- Metric 3: arrival patterns -----------------------------------------------

def uniform_workload(seed: int = 0, n: int = _DEFAULT_N) -> Workload:
    """50 invocations/minute, evenly spaced, for 6 minutes."""
    rng = np.random.default_rng(seed)
    specs = functions_by_ids(ARRIVAL_TYPES)
    counts = _split_counts(n, len(specs))
    minutes = n / 50.0
    all_times = UniformArrivals(rate_per_minute=50, minutes=minutes).generate(rng)
    times = _deal(all_times, counts, rng)
    return _with_metrics(assemble("Uniform", specs, times, rng))


def peak_workload(seed: int = 0) -> Workload:
    """Alternating 80/20 invocations per minute over 6 minutes (n=300)."""
    rng = np.random.default_rng(seed)
    specs = functions_by_ids(ARRIVAL_TYPES)
    all_times = PeakArrivals(80, 20, minutes=6).generate(rng)
    counts = _split_counts(len(all_times), len(specs))
    times = _deal(all_times, counts, rng)
    return _with_metrics(assemble("Peak", specs, times, rng))


def random_workload(seed: int = 0, n: int = _DEFAULT_N) -> Workload:
    """50 invocations/minute with Poisson arrival times over 6 minutes."""
    rng = np.random.default_rng(seed)
    specs = functions_by_ids(ARRIVAL_TYPES)
    minutes = n / 50.0
    all_times = RandomRateArrivals(n, rate_per_minute=50,
                                   minutes=minutes).generate(rng)
    counts = _split_counts(n, len(specs))
    times = _deal(all_times, counts, rng)
    return _with_metrics(assemble("Random", specs, times, rng))


def _deal(
    all_times: np.ndarray, counts: Sequence[int], rng: np.random.Generator
) -> List[np.ndarray]:
    """Randomly deal a pooled arrival-time array out to the function types."""
    if sum(counts) != len(all_times):
        raise ValueError("counts must sum to the number of arrival times")
    order = rng.permutation(len(all_times))
    out: List[np.ndarray] = []
    start = 0
    for c in counts:
        idx = order[start : start + c]
        out.append(np.sort(all_times[idx]))
        start += c
    return out


# -- Overall evaluation mix (Section VI-B) ------------------------------------

def overall_workload(seed: int = 0, n: int = 400) -> Workload:
    """All 13 functions, ``n`` invocations total, random per-type rates.

    Each function type draws a random Poisson rate and contributes a number
    of invocations proportional to it (at least one, so all 13 types are
    always present); the per-type arrival streams are Poisson processes at
    the drawn rates.

    The paper draws per-type rates "from 0 to 5 invocations per second"; on
    our cost model's container-turnaround timescale that aggregate density
    would leave no reuse opportunities for any policy, so the range is
    scaled down by 10x (documented in EXPERIMENTS.md).
    """
    rng = np.random.default_rng(seed)
    specs = functions_by_ids(range(1, 14))
    if n < len(specs):
        raise ValueError(f"need at least {len(specs)} invocations")
    lambdas = rng.uniform(0.01, 0.5, size=len(specs))
    probs = lambdas / lambdas.sum()
    counts = rng.multinomial(n - len(specs), probs) + 1
    times = [
        PoissonArrivals(int(count), lam).generate(rng)
        for count, lam in zip(counts, lambdas)
    ]
    return _with_metrics(assemble("Overall", specs, times, rng))


WORKLOAD_BUILDERS: Dict[str, Callable[..., Workload]] = {
    "LO-Sim": lo_sim_workload,
    "HI-Sim": hi_sim_workload,
    "LO-Var": lo_var_workload,
    "HI-Var": hi_var_workload,
    "Uniform": uniform_workload,
    "Peak": peak_workload,
    "Random": random_workload,
    "Overall": overall_workload,
}


def build_workload(name: str, seed: int = 0) -> Workload:
    """Build one of the named FStartBench workloads."""
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOAD_BUILDERS)}"
        ) from None
    return builder(seed=seed)
