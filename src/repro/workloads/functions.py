"""The 13 FStartBench functions (paper Table II).

Each function is a :class:`FunctionSpec`: an image (three package levels from
the default catalog), a function-initialization time and an execution-time
distribution.  Timing profiles are synthetic but calibrated to the paper's
Section II observations: compiled stacks (Java) pay heavy initialization,
interpreted ones (Python/Node) are cheap, the ML function loads a large model,
and cold-start/execution ratios span roughly the reported 1.3x--166x range.

========  =======  ==========  ====================================  ==================
FuncID    OS       Language    Runtime                               Description
========  =======  ==========  ====================================  ==================
1         Alpine   Java        Springboot                            Hello
2         Alpine   Nodejs      Express                               Hello
3         Alpine   Go          Gin                                   Hello
4         Alpine   Python      Flask                                 Hello
5         Debian   Python      Flask                                 Hello
6         Debian   Python      Flask + Numpy                         Data analytics
7         Debian   Python      Flask + Numpy + Pandas                Data analytics
8         Debian   Python      Flask + NP + Pandas + Matplotlib      Data analytics
9         CentOS   C++         (COS SDK)                             Communication
10        Debian   Python      Flask                                 Simple arithmetic
11        Alpine   Nodejs      Express                               Web service
12        Alpine   Java        Springboot                            Image processing
13        Debian   Python      Flask + Tensorflow                    Machine learning
========  =======  ==========  ====================================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.containers.image import FunctionImage
from repro.packages.catalog import PackageCatalog, default_catalog


@dataclass(frozen=True)
class FunctionSpec:
    """A serverless function definition.

    Parameters
    ----------
    func_id:
        FStartBench function id (1--13); synthetic functions use ids > 100.
    name:
        Unique function name.
    image:
        The three-level package configuration.
    function_init_s:
        Function-initialization time paid at startup (code import, framework
        boot, model load).
    exec_time_mean_s:
        Mean execution time; per-invocation times are sampled lognormally
        around this.
    exec_time_cv:
        Coefficient of variation of the execution time.
    description:
        Table II description.
    """

    func_id: int
    name: str
    image: FunctionImage
    function_init_s: float
    exec_time_mean_s: float
    exec_time_cv: float = 0.2
    description: str = ""

    def __post_init__(self) -> None:
        if self.function_init_s < 0 or self.exec_time_mean_s <= 0:
            raise ValueError(f"{self.name}: invalid timing profile")
        if self.exec_time_cv < 0:
            raise ValueError(f"{self.name}: exec_time_cv must be >= 0")

    def sample_exec_time(self, rng: np.random.Generator) -> float:
        """Draw one execution time (lognormal, mean-preserving)."""
        if self.exec_time_cv == 0:
            return self.exec_time_mean_s
        sigma2 = np.log1p(self.exec_time_cv**2)
        mu = np.log(self.exec_time_mean_s) - sigma2 / 2
        return float(rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))

    def sample_exec_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` execution times at once (vectorized counterpart of
        :meth:`sample_exec_time`; same distribution, one RNG call)."""
        if self.exec_time_cv == 0:
            return np.full(n, self.exec_time_mean_s, dtype=np.float64)
        sigma2 = np.log1p(self.exec_time_cv**2)
        mu = np.log(self.exec_time_mean_s) - sigma2 / 2
        return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=n)


def _build_specs(catalog: PackageCatalog) -> List[FunctionSpec]:
    from repro.packages.catalog import language_group, os_group

    def pkg(name: str, version: str):
        return catalog.get(name, version)

    alpine = os_group(catalog, "alpine")
    debian = os_group(catalog, "debian")
    centos = os_group(catalog, "centos")
    java = language_group(catalog, "java")
    node = language_group(catalog, "nodejs")
    go = language_group(catalog, "go")
    python = language_group(catalog, "python")
    cpp = language_group(catalog, "cpp")
    springboot = pkg("springboot", "2.7")
    express = pkg("express", "4.18")
    gin = pkg("gin", "1.9")
    flask = pkg("flask", "2.3")
    np_ = pkg("numpy", "1.24")
    pandas = pkg("pandas", "2.0")
    mpl = pkg("matplotlib", "3.7")
    tf = pkg("tensorflow", "2.12")
    cos = pkg("libcos-sdk", "5.9")

    def image(name: str, packages) -> FunctionImage:
        flat = []
        for p in packages:
            flat.extend(p if isinstance(p, list) else [p])
        return FunctionImage.from_packages(f"fstart/{name}", flat)

    return [
        FunctionSpec(1, "hello-java", image("hello-java", [alpine, java, springboot]),
                     function_init_s=1.20, exec_time_mean_s=0.10,
                     description="Hello"),
        FunctionSpec(2, "hello-node", image("hello-node", [alpine, node, express]),
                     function_init_s=0.12, exec_time_mean_s=0.08,
                     description="Hello"),
        FunctionSpec(3, "hello-go", image("hello-go", [alpine, go, gin]),
                     function_init_s=0.05, exec_time_mean_s=0.05,
                     description="Hello"),
        FunctionSpec(4, "hello-python", image("hello-python", [alpine, python, flask]),
                     function_init_s=0.10, exec_time_mean_s=0.08,
                     description="Hello"),
        FunctionSpec(5, "hello-python-debian",
                     image("hello-python-debian", [debian, python, flask]),
                     function_init_s=0.10, exec_time_mean_s=0.08,
                     description="Hello"),
        FunctionSpec(6, "analytics-numpy",
                     image("analytics-numpy", [debian, python, flask, np_]),
                     function_init_s=0.25, exec_time_mean_s=0.60,
                     description="Data analytics"),
        FunctionSpec(7, "analytics-pandas",
                     image("analytics-pandas", [debian, python, flask, np_, pandas]),
                     function_init_s=0.45, exec_time_mean_s=0.90,
                     description="Data analytics"),
        FunctionSpec(8, "analytics-plot",
                     image("analytics-plot",
                           [debian, python, flask, np_, pandas, mpl]),
                     function_init_s=0.60, exec_time_mean_s=1.10,
                     description="Data analytics"),
        FunctionSpec(9, "comm-cpp", image("comm-cpp", [centos, cpp, cos]),
                     function_init_s=0.08, exec_time_mean_s=0.80,
                     description="Communication"),
        FunctionSpec(10, "alu", image("alu", [debian, python, flask]),
                     function_init_s=0.10, exec_time_mean_s=2.00,
                     description="Simple arithmetic"),
        FunctionSpec(11, "web-service", image("web-service", [alpine, node, express]),
                     function_init_s=0.15, exec_time_mean_s=0.25,
                     description="Web service"),
        FunctionSpec(12, "image-proc", image("image-proc", [alpine, java, springboot]),
                     function_init_s=1.35, exec_time_mean_s=1.50,
                     description="Image processing"),
        FunctionSpec(13, "ml-inference",
                     image("ml-inference", [debian, python, flask, tf]),
                     function_init_s=1.80, exec_time_mean_s=0.55,
                     description="Machine learning"),
    ]


_CACHE: Dict[int, List[FunctionSpec]] = {}


def fstartbench_functions(catalog: PackageCatalog | None = None) -> List[FunctionSpec]:
    """The 13 Table-II functions (cached for the default catalog)."""
    if catalog is None:
        specs = _CACHE.get(0)
        if specs is None:
            specs = _build_specs(default_catalog())
            _CACHE[0] = specs
        return list(specs)
    return _build_specs(catalog)


def function_by_id(func_id: int, catalog: PackageCatalog | None = None) -> FunctionSpec:
    """Look up one Table-II function by its FuncID (1-13)."""
    for spec in fstartbench_functions(catalog):
        if spec.func_id == func_id:
            return spec
    raise KeyError(f"no FStartBench function with id {func_id}")


def functions_by_ids(
    ids: Sequence[int], catalog: PackageCatalog | None = None
) -> List[FunctionSpec]:
    """Look up several Table-II functions, preserving order."""
    return [function_by_id(i, catalog) for i in ids]


def function_by_name(
    name: str, catalog: PackageCatalog | None = None
) -> FunctionSpec:
    """Look up one Table-II function by its name (e.g. ``"hello-python"``).

    The serving plane resolves request payloads and replayed arrival logs
    through this, so function names are a stable wire format.
    """
    for spec in fstartbench_functions(catalog):
        if spec.name == name:
            return spec
    raise KeyError(f"no FStartBench function named {name!r}")
