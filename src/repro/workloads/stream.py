"""Lazy invocation streams: arrival pipelines with O(#functions) memory.

A :class:`Workload` materializes every :class:`Invocation` up front, which
caps trace replay at a few hundred thousand invocations (O(N) objects plus
seconds of generation).  An :class:`InvocationStream` is the lazy
counterpart: an arrival-ordered *iterable* of invocations that synthesizes
events on demand, so replaying a million-invocation trace holds only

* one generator (plus one pending arrival chunk) per function, and
* the single invocation currently in flight.

The central primitive is :func:`merge_function_arrivals`: a heap merge of
per-function arrival generators.  Each generator yields
``(arrival_time, execution_time_s)`` pairs in non-decreasing time order;
the merge interleaves them into one globally ordered stream with the
deterministic tie-break ``(arrival_time, function_index)`` and assigns
invocation ids in merged arrival order -- exactly the ids
:func:`materialize` would produce, so streaming and materialized replay
are equivalent by construction (the ``streaming_vs_materialized``
differential oracle holds them to it).

:class:`StreamStatistics` is the online accumulator behind single-pass
``trace_statistics``: per-function invocation counts and the interarrival
moments, O(#functions) state however long the stream runs.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.workloads.functions import FunctionSpec
from repro.workloads.workload import Invocation, Workload

#: A per-function arrival generator item: ``(arrival_time, exec_time_s)``.
ArrivalPair = Tuple[float, float]


class InvocationStream:
    """Base class / protocol for lazy arrival-ordered invocation sources.

    Subclasses implement :meth:`__iter__` to yield :class:`Invocation`
    objects with non-decreasing ``arrival_time`` and sequential
    ``invocation_id`` (0, 1, 2, ...).  Iteration must be *restartable*:
    every ``__iter__`` call starts a fresh, identical pass (streams are
    deterministic functions of their construction arguments), which is what
    lets differential oracles replay the same stream twice.

    ``name`` labels the run (mirrors :attr:`Workload.name`); ``metadata``
    carries cheap stream-level statistics (never per-invocation data).
    """

    name: str = "<stream>"

    def __init__(self) -> None:
        self.metadata: Dict[str, float] = {}

    def __iter__(self) -> Iterator[Invocation]:
        raise NotImplementedError

    def materialize(self, metadata: Dict[str, float] | None = None) -> Workload:
        """Exhaust the stream into a :class:`Workload` (O(N) memory)."""
        return Workload(
            name=self.name,
            invocations=tuple(self),
            metadata=dict(metadata if metadata is not None else self.metadata),
        )


class WorkloadStream(InvocationStream):
    """A materialized workload viewed through the stream protocol.

    The adapter that lets every existing :class:`Workload` drive the
    streaming feed path (``ClusterSimulator.run_stream``); it holds a
    reference to the workload, not a copy.
    """

    def __init__(self, workload: Workload) -> None:
        super().__init__()
        self.workload = workload
        self.name = workload.name
        self.metadata = dict(workload.metadata)

    def __iter__(self) -> Iterator[Invocation]:
        return iter(self.workload)

    def __len__(self) -> int:
        return len(self.workload)


def stream_from_workload(workload: Workload) -> WorkloadStream:
    """Wrap a materialized workload as an :class:`InvocationStream`."""
    return WorkloadStream(workload)


def merge_function_arrivals(
    specs: Sequence[FunctionSpec],
    sources: Sequence[Iterator[ArrivalPair]],
) -> Iterator[Invocation]:
    """Heap-merge per-function arrival generators into one ordered stream.

    ``sources[i]`` yields ``specs[i]``'s ``(arrival_time, exec_time_s)``
    pairs in non-decreasing time order.  The merged stream is ordered by
    ``(arrival_time, function_index)`` -- the function index breaks time
    ties deterministically -- and invocation ids are assigned in merged
    order, matching what :meth:`Workload.from_invocations` produces from
    the same per-function arrivals.

    Memory is one heap entry (and one buffered pair) per *active* source;
    a source's own buffering is its business -- chunked generators keep it
    O(chunk).
    """
    if len(specs) != len(sources):
        raise ValueError("specs and sources must align")
    heap: List[Tuple[float, int, float, Iterator[ArrivalPair]]] = []
    for index, source in enumerate(sources):
        it = iter(source)
        first = next(it, None)
        if first is not None:
            heap.append((first[0], index, first[1], it))
    heapq.heapify(heap)
    invocation_id = 0
    while heap:
        time, index, exec_s, it = heap[0]
        yield Invocation(
            invocation_id=invocation_id,
            spec=specs[index],
            arrival_time=float(time),
            execution_time_s=float(exec_s),
        )
        invocation_id += 1
        following = next(it, None)
        if following is None:
            heapq.heappop(heap)
        elif following[0] < time:
            raise ValueError(
                f"function {index} yielded arrivals out of order "
                f"({following[0]} after {time})"
            )
        else:
            heapq.heapreplace(heap, (following[0], index, following[1], it))


class StreamStatistics:
    """Online accumulator for trace statistics (O(#functions) state).

    Feed invocations with :meth:`observe` (or a whole iterable with
    :meth:`consume`); read the same keys
    :meth:`AzureTraceGenerator.trace_statistics` reports, computed without
    ever materializing the trace.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.n_invocations = 0
        self.last_arrival = 0.0
        self._prev_arrival: float | None = None
        # Interarrival moments (for mean/variance without storing gaps).
        self._gap_n = 0
        self._gap_sum = 0.0
        self._gap_sumsq = 0.0

    def observe(self, invocation: Invocation) -> None:
        """Fold one invocation (must arrive in stream order)."""
        name = invocation.spec.name
        self.counts[name] = self.counts.get(name, 0) + 1
        self.n_invocations += 1
        arrival = invocation.arrival_time
        if self._prev_arrival is not None:
            gap = arrival - self._prev_arrival
            self._gap_n += 1
            self._gap_sum += gap
            self._gap_sumsq += gap * gap
        self._prev_arrival = arrival
        self.last_arrival = arrival

    def consume(self, stream: Iterable[Invocation]) -> "StreamStatistics":
        """Fold every invocation of ``stream``; returns ``self``."""
        for invocation in stream:
            self.observe(invocation)
        return self

    @property
    def mean_interarrival_s(self) -> float:
        """Mean gap between consecutive arrivals."""
        return self._gap_sum / self._gap_n if self._gap_n else 0.0

    @property
    def var_interarrival_s(self) -> float:
        """Population variance of the interarrival gaps."""
        if not self._gap_n:
            return 0.0
        mean = self.mean_interarrival_s
        return max(0.0, self._gap_sumsq / self._gap_n - mean * mean)

    def statistics(self) -> Dict[str, float]:
        """The cited Azure aggregates over what has been observed so far."""
        return statistics_from_counts(self.counts.values())


def statistics_from_counts(counts: Iterable[int]) -> Dict[str, float]:
    """Azure trace aggregates from per-function invocation counts."""
    n_functions = 0
    once = 0
    le2 = 0
    peak = 0
    for count in counts:
        n_functions += 1
        if count == 1:
            once += 1
        if count <= 2:
            le2 += 1
        if count > peak:
            peak = count
    if not n_functions:
        return {
            "frac_invoked_once": 0.0,
            "frac_invoked_le2": 0.0,
            "max_invocations": 0.0,
        }
    return {
        "frac_invoked_once": once / n_functions,
        "frac_invoked_le2": le2 / n_functions,
        "max_invocations": float(peak),
    }
