"""Container cleaner: secure repacking of warm containers.

When a warm container is selected for reuse by a (possibly different)
function, the cleaner (paper Section III) performs two steps:

1. unmount the private package volumes and the previous function's user-data
   volume from the warm container, and
2. mount the package volumes required by the new function from the volume
   store, plus the new function's own private user-data volume.

Because the OS level lives on the container's writable layer (not a volume),
an OS mismatch cannot be fixed by the cleaner -- such containers are simply
not reusable (Table I ``NO_MATCH``).

The cleaner is also the security boundary: it *guarantees* that no user-data
volume owned by function A is ever mounted while function B runs.  A
violation raises :class:`SecurityViolation`; the property-based tests assert
it never triggers under any schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.containers.container import Container
from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel, match_level
from repro.containers.volumes import Volume, VolumeKind, VolumeStore, volumes_for_image


class SecurityViolation(RuntimeError):
    """A user-data volume would be exposed to a foreign function."""


@dataclass(frozen=True)
class CleanResult:
    """Outcome of a repack: what was unmounted/mounted and the match level."""

    match: MatchLevel
    unmounted: List[Volume]
    mounted: List[Volume]

    @property
    def n_operations(self) -> int:
        return len(self.unmounted) + len(self.mounted)


class ContainerCleaner:
    """Repack warm containers for reuse via volume mount/unmount."""

    def __init__(self, store: VolumeStore) -> None:
        self._store = store
        self.repack_count = 0

    @property
    def store(self) -> VolumeStore:
        return self._store

    def initial_mount(self, container: Container, function_name: str) -> List[Volume]:
        """Mount the volume set for a freshly created (cold-start) container."""
        vols = volumes_for_image(
            self._store,
            container.image.language_packages,
            container.image.runtime_packages,
            function_name,
        )
        container.mounted_volumes = list(vols)
        self._store.record_mount(len(vols))
        return vols

    def repack(
        self,
        container: Container,
        new_image: FunctionImage,
        function_name: str,
    ) -> CleanResult:
        """Repack ``container`` so ``function_name`` can run ``new_image``.

        Volumes shared between the old and new configuration stay mounted
        (language/runtime volumes are content-addressed, so an identical
        level keeps its volume).  The previous user's data volume is always
        unmounted.

        Raises
        ------
        SecurityViolation
            If the container's current image does not OS-match the new image
            (the cleaner cannot replace the writable layer) -- callers must
            only repack reusable containers.
        """
        match = match_level(new_image, container.image)
        if match is MatchLevel.NO_MATCH:
            raise SecurityViolation(
                f"container {container.container_id} has a different OS level; "
                "repacking cannot change the writable layer"
            )
        needed = volumes_for_image(
            self._store,
            new_image.language_packages,
            new_image.runtime_packages,
            function_name,
        )
        needed_ids = {v.volume_id for v in needed}
        current = list(container.mounted_volumes)
        unmounted = [v for v in current if v.volume_id not in needed_ids]
        kept = [v for v in current if v.volume_id in needed_ids]
        kept_ids = {v.volume_id for v in kept}
        mounted = [v for v in needed if v.volume_id not in kept_ids]

        container.mounted_volumes = kept + mounted
        container.image = new_image
        self._store.record_unmount(len(unmounted))
        self._store.record_mount(len(mounted))
        self.repack_count += 1

        self._verify_isolation(container, function_name)
        return CleanResult(match=match, unmounted=unmounted, mounted=mounted)

    @staticmethod
    def _verify_isolation(container: Container, function_name: str) -> None:
        """Post-condition: only the new function's user data is mounted."""
        for vol in container.mounted_volumes:
            if (
                vol.kind is VolumeKind.USER_DATA
                and vol.owner_function != function_name
            ):
                raise SecurityViolation(
                    f"user-data volume of {vol.owner_function!r} still mounted "
                    f"while repacking for {function_name!r}"
                )
