"""Function image: a named, three-level package configuration.

A :class:`FunctionImage` is what the paper calls a function *configuration*
``{L1, L2, L3}``.  Both function invocations and warm containers carry one;
Table-I matching compares the two images level-by-level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.packages.package import Package, PackageLevel, PackageSet


@dataclass(frozen=True)
class FunctionImage:
    """An immutable function/container image.

    Parameters
    ----------
    name:
        Image name, e.g. ``"fstart/hello-python"``.
    packages:
        The level-partitioned package set.
    memory_mb:
        Resident memory footprint of a container running this image
        (includes anonymous memory beyond the package sizes).  Used for
        warm-pool capacity accounting.

    The interned per-level fingerprint tuple of :attr:`packages` is cached
    on the instance as :attr:`fingerprints` at construction; the Table-I
    matcher and the warm-pool match index key on it.
    """

    name: str
    packages: PackageSet
    memory_mb: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("image name must be non-empty")
        if self.memory_mb < 0:
            raise ValueError("memory_mb must be >= 0")
        if not self.packages.os_packages:
            raise ValueError(f"image {self.name!r} has no OS-level package")
        # Cached as a plain attribute (not a property) so the matcher's hot
        # path pays a single dict lookup per image.
        object.__setattr__(self, "fingerprints", self.packages.level_fingerprints)

    def __getstate__(self):
        """Pickle without the cached fingerprints (process-local ids)."""
        state = dict(self.__dict__)
        state.pop("fingerprints", None)
        return state

    def __setstate__(self, state) -> None:
        """Restore fields and re-derive fingerprints in this process."""
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "fingerprints", self.packages.level_fingerprints)

    @classmethod
    def from_packages(
        cls, name: str, packages: Iterable[Package], memory_overhead_mb: float = 32.0
    ) -> "FunctionImage":
        """Build an image whose memory footprint is derived from its packages.

        ``memory_mb = memory_overhead_mb + 0.5 * total package size`` -- a
        simple resident-set model: roughly half of a package's on-disk size
        is mapped when the function is warm.
        """
        ps = PackageSet(packages)
        return cls(
            name=name,
            packages=ps,
            memory_mb=memory_overhead_mb + 0.5 * ps.total_size_mb,
        )

    # -- convenience accessors ------------------------------------------------
    def level_set(self, level: PackageLevel) -> FrozenSet[Package]:
        """The (frozen) package set at ``level``."""
        return self.packages.level_set(level)

    @property
    def os_packages(self) -> FrozenSet[Package]:
        return self.packages.os_packages

    @property
    def language_packages(self) -> FrozenSet[Package]:
        return self.packages.language_packages

    @property
    def runtime_packages(self) -> FrozenSet[Package]:
        return self.packages.runtime_packages

    @property
    def total_size_mb(self) -> float:
        return self.packages.total_size_mb

    def same_configuration(self, other: "FunctionImage") -> bool:
        """True when every level matches (a full, Table-I ``L3`` match)."""
        return self.packages == other.packages

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name} (L1={len(self.os_packages)}, "
            f"L2={len(self.language_packages)}, L3={len(self.runtime_packages)}, "
            f"{self.memory_mb:.0f}MB)"
        )
