"""Simulated container lifecycle.

A container is created for a function invocation, runs it, and afterwards may
be kept alive ("warm") in the pool.  Multi-level reuse lets a *different*
function claim it, after which the container cleaner repacks it (its image
becomes the new function's image).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.containers.image import FunctionImage
from repro.containers.volumes import Volume


class ContainerState(enum.Enum):
    """Container lifecycle states (paper: idle / busy / waiting)."""

    STARTING = "starting"  # startup phases executing
    BUSY = "busy"          # function executing
    IDLE = "idle"          # warm, in the pool, reusable
    EVICTED = "evicted"    # removed from the pool, gone


@dataclass
class Container:
    """A mutable simulated container.

    Attributes
    ----------
    container_id:
        Unique id assigned by the simulator.
    image:
        Current image (replaced when the cleaner repacks the container for a
        different function).
    state:
        Lifecycle state.
    created_at, last_used_at, busy_until:
        Simulation timestamps (seconds).
    current_function:
        Name of the function occupying or last occupying the container.
    mounted_volumes:
        Volumes currently mounted (managed by the cleaner).
    reuse_count:
        How many times the container was claimed from the warm pool.
    """

    container_id: int
    image: FunctionImage
    state: ContainerState = ContainerState.STARTING
    created_at: float = 0.0
    last_used_at: float = 0.0
    busy_until: float = 0.0
    current_function: Optional[str] = None
    mounted_volumes: List[Volume] = field(default_factory=list)
    reuse_count: int = 0

    @property
    def memory_mb(self) -> float:
        """Warm-pool memory footprint of the container."""
        return self.image.memory_mb

    @property
    def is_idle(self) -> bool:
        return self.state is ContainerState.IDLE

    @property
    def is_busy(self) -> bool:
        return self.state in (ContainerState.BUSY, ContainerState.STARTING)

    def idle_duration(self, now: float) -> float:
        """Seconds the container has sat idle; 0 when not idle."""
        if self.state is not ContainerState.IDLE:
            return 0.0
        return max(0.0, now - self.last_used_at)

    # -- state transitions -----------------------------------------------------
    def begin_startup(self, function_name: str, now: float, ready_at: float) -> None:
        """Enter STARTING for ``function_name``; ready (busy) at ``ready_at``."""
        self._require(ContainerState.STARTING, ContainerState.IDLE)
        self.state = ContainerState.STARTING
        self.current_function = function_name
        self.last_used_at = now
        self.busy_until = ready_at

    def begin_execution(self, now: float, finish_at: float) -> None:
        """Startup finished; the function now executes until ``finish_at``."""
        self._require(ContainerState.STARTING)
        self.state = ContainerState.BUSY
        self.busy_until = finish_at

    def finish_execution(self, now: float) -> None:
        """Execution done; the container becomes idle (kept warm)."""
        self._require(ContainerState.BUSY)
        self.state = ContainerState.IDLE
        self.last_used_at = now

    def evict(self) -> None:
        """Remove the container permanently."""
        self._require(ContainerState.IDLE)
        self.state = ContainerState.EVICTED

    def claim(self) -> None:
        """Claim an idle container for reuse (cleaner runs next)."""
        self._require(ContainerState.IDLE)
        self.state = ContainerState.STARTING
        self.reuse_count += 1

    def _require(self, *states: ContainerState) -> None:
        if self.state not in states:
            raise RuntimeError(
                f"container {self.container_id}: invalid transition from "
                f"{self.state.value} (expected one of "
                f"{[s.value for s in states]})"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Container#{self.container_id}[{self.state.value}, "
            f"{self.image.name}, {self.memory_mb:.0f}MB]"
        )
