"""Table-I multi-level matching between a function and a warm container.

The matcher compares the three package levels *as wholes*, in order, and
stops at the first mismatch (the paper's pruning: if the OS differs, the
language/runtime comparisons are skipped because reusing such a container
would save almost nothing).

===========================================  =======================
Expression                                   Match level
===========================================  =======================
``F.L1 != C.L1``                             ``NO_MATCH`` (cold start)
``F.L1 == C.L1, F.L2 != C.L2``               ``L1``
``L1, L2 equal, F.L3 != C.L3``               ``L2``
all three equal                              ``L3`` (full match)
===========================================  =======================
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Tuple

from repro.containers.image import FunctionImage
from repro.packages.package import PackageLevel


class MatchLevel(enum.IntEnum):
    """How deeply a warm container matches a function invocation.

    Ordered: a numerically larger match level always implies a cheaper
    startup (more phases skipped).
    """

    NO_MATCH = 0
    L1 = 1
    L2 = 2
    L3 = 3

    @property
    def is_reusable(self) -> bool:
        """Whether the container may be reused at all."""
        return self is not MatchLevel.NO_MATCH


def match_level(function_image: FunctionImage, container_image: FunctionImage) -> MatchLevel:
    """Compute the Table-I match level with level-by-level pruning."""
    if function_image.level_set(PackageLevel.OS) != container_image.level_set(
        PackageLevel.OS
    ):
        return MatchLevel.NO_MATCH
    if function_image.level_set(PackageLevel.LANGUAGE) != container_image.level_set(
        PackageLevel.LANGUAGE
    ):
        return MatchLevel.L1
    if function_image.level_set(PackageLevel.RUNTIME) != container_image.level_set(
        PackageLevel.RUNTIME
    ):
        return MatchLevel.L2
    return MatchLevel.L3


def best_match(
    function_image: FunctionImage,
    candidates: Iterable[Tuple[object, FunctionImage]],
) -> Tuple[Optional[object], MatchLevel]:
    """Find the candidate with the deepest match level.

    Parameters
    ----------
    function_image:
        The invoked function's image.
    candidates:
        Iterable of ``(handle, image)`` pairs; ``handle`` is opaque (e.g. a
        container id) and returned for the winner.

    Returns
    -------
    ``(handle, level)`` of the deepest match, or ``(None, NO_MATCH)`` when no
    candidate is reusable.  Ties keep the *first* candidate encountered, so
    callers control tie-breaking by ordering (e.g. most-recently-used first).
    """
    best_handle: Optional[object] = None
    best_level = MatchLevel.NO_MATCH
    for handle, image in candidates:
        level = match_level(function_image, image)
        if level > best_level:
            best_handle, best_level = handle, level
            if level is MatchLevel.L3:
                break  # cannot do better than a full match
    return best_handle, best_level
