"""Table-I multi-level matching between a function and a warm container.

The matcher compares the three package levels *as wholes*, in order, and
stops at the first mismatch (the paper's pruning: if the OS differs, the
language/runtime comparisons are skipped because reusing such a container
would save almost nothing).

===========================================  =======================
Expression                                   Match level
===========================================  =======================
``F.L1 != C.L1``                             ``NO_MATCH`` (cold start)
``F.L1 == C.L1, F.L2 != C.L2``               ``L1``
``L1, L2 equal, F.L3 != C.L3``               ``L2``
all three equal                              ``L3`` (full match)
===========================================  =======================

The hot-path implementation (:func:`match_level`) compares the images'
interned per-level *fingerprints* (``FunctionImage.fingerprints``) -- three
integer comparisons instead of three frozenset comparisons.  Interning makes
this exact, not probabilistic: equal fingerprints are assigned iff the level
sets are equal.  The original frozenset implementation is kept as
:func:`match_level_sets` and can be cross-checked against the fingerprint
path on every call by setting ``REPRO_MATCH_CROSS_CHECK=1`` in the
environment (or flipping :data:`CROSS_CHECK` at runtime).
"""

from __future__ import annotations

import enum
import os
from typing import Iterable, Optional, Tuple

from repro.containers.image import FunctionImage
from repro.packages.package import PackageLevel


class MatchLevel(enum.IntEnum):
    """How deeply a warm container matches a function invocation.

    Ordered: a numerically larger match level always implies a cheaper
    startup (more phases skipped).
    """

    NO_MATCH = 0
    L1 = 1
    L2 = 2
    L3 = 3

    @property
    def is_reusable(self) -> bool:
        """Whether the container may be reused at all."""
        return self is not MatchLevel.NO_MATCH


#: True when ``REPRO_MATCH_CROSS_CHECK=1`` was set at import: every
#: :func:`match_level` call then re-derives the level via the frozenset
#: reference path and asserts agreement (debugging aid; read-only after
#: import -- the binding of ``match_level`` is chosen once).
CROSS_CHECK: bool = os.environ.get("REPRO_MATCH_CROSS_CHECK", "") not in ("", "0")


def match_level_sets(
    function_image: FunctionImage, container_image: FunctionImage
) -> MatchLevel:
    """Reference Table-I matcher: level-by-level frozenset comparison.

    Semantically identical to :func:`match_level`; kept as the
    cross-checked fallback the fingerprint fast path is validated against
    (property tests and :data:`CROSS_CHECK`).
    """
    if function_image.level_set(PackageLevel.OS) != container_image.level_set(
        PackageLevel.OS
    ):
        return MatchLevel.NO_MATCH
    if function_image.level_set(PackageLevel.LANGUAGE) != container_image.level_set(
        PackageLevel.LANGUAGE
    ):
        return MatchLevel.L1
    if function_image.level_set(PackageLevel.RUNTIME) != container_image.level_set(
        PackageLevel.RUNTIME
    ):
        return MatchLevel.L2
    return MatchLevel.L3


def match_level(
    function_image: FunctionImage,
    container_image: FunctionImage,
    _NO=MatchLevel.NO_MATCH,
    _L1=MatchLevel.L1,
    _L2=MatchLevel.L2,
    _L3=MatchLevel.L3,
) -> MatchLevel:
    """Compute the Table-I match level with level-by-level pruning.

    Compares the images' interned per-level fingerprints -- at most one
    pointer-identity check (full match: equal configurations share the
    same interned tuple object) and two integer comparisons, exact by
    construction of the intern table.  (The trailing defaults pre-bind the
    enum members; they are implementation detail, not part of the call
    signature.)
    """
    fa = function_image.fingerprints
    fb = container_image.fingerprints
    if fa is fb:
        return _L3
    if fa[0] != fb[0]:
        return _NO
    if fa[1] != fb[1]:
        return _L1
    # Tuples are interned, so distinct objects with equal L1 and L2
    # fingerprints necessarily differ at L3.
    return _L2


_match_level_fast = match_level


def match_level_checked(
    function_image: FunctionImage, container_image: FunctionImage
) -> MatchLevel:
    """Fingerprint matcher cross-checked against the frozenset fallback.

    Bound as ``match_level`` when ``REPRO_MATCH_CROSS_CHECK=1``; raises
    ``AssertionError`` on any disagreement between the two paths.
    """
    level = _match_level_fast(function_image, container_image)
    reference = match_level_sets(function_image, container_image)
    assert level is reference, (
        f"fingerprint matcher disagrees with frozenset matcher: "
        f"{level!r} != {reference!r} for "
        f"{function_image.name!r} vs {container_image.name!r}"
    )
    return level


if CROSS_CHECK:  # pragma: no cover - exercised via the env toggle
    match_level = match_level_checked


def best_match(
    function_image: FunctionImage,
    candidates: Iterable[Tuple[object, FunctionImage]],
) -> Tuple[Optional[object], MatchLevel]:
    """Find the candidate with the deepest match level.

    Parameters
    ----------
    function_image:
        The invoked function's image.
    candidates:
        Iterable of ``(handle, image)`` pairs; ``handle`` is opaque (e.g. a
        container id) and returned for the winner.

    Returns
    -------
    ``(handle, level)`` of the deepest match, or ``(None, NO_MATCH)`` when no
    candidate is reusable.  Ties keep the *first* candidate encountered, so
    callers control tie-breaking by ordering (e.g. most-recently-used first).
    """
    best_handle: Optional[object] = None
    best_level = MatchLevel.NO_MATCH
    for handle, image in candidates:
        level = match_level(function_image, image)
        if level > best_level:
            best_handle, best_level = handle, level
            if level is MatchLevel.L3:
                break  # cannot do better than a full match
    return best_handle, best_level
