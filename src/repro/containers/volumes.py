"""Volume model for the container cleaner.

The paper's cleaner (Section III) protects user data during inter-function
container sharing by persisting it in *volumes* that are unmounted before a
container is handed to a different function.  Volumes come in three kinds:
language-package volumes, runtime-package volumes and user-data volumes; OS
packages live on the container's writable layer and are not volumes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.packages.package import Package, PackageLevel


class VolumeKind(enum.Enum):
    """The three volume groups of the container cleaner."""

    LANGUAGE = "language"
    RUNTIME = "runtime"
    USER_DATA = "user_data"


@dataclass(frozen=True)
class Volume:
    """A mountable volume.

    Package volumes carry the packages they materialize; user-data volumes
    carry the owning function's name instead (their contents are opaque).
    """

    volume_id: int
    kind: VolumeKind
    packages: FrozenSet[Package] = frozenset()
    owner_function: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is VolumeKind.USER_DATA:
            if self.owner_function is None:
                raise ValueError("user-data volumes must declare an owner")
            if self.packages:
                raise ValueError("user-data volumes carry no packages")
        else:
            if self.owner_function is not None:
                raise ValueError("package volumes have no owner")
            expected = (
                PackageLevel.LANGUAGE
                if self.kind is VolumeKind.LANGUAGE
                else PackageLevel.RUNTIME
            )
            for pkg in self.packages:
                if pkg.level is not expected:
                    raise ValueError(
                        f"volume kind {self.kind.value} cannot hold "
                        f"{pkg.level.label} package {pkg.key}"
                    )


class VolumeStore:
    """The "function database" of prepared package volumes.

    The cleaner mounts required package volumes from this store when
    repacking a warm container.  Volumes are deduplicated by content: asking
    twice for the same package set returns the same volume object.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._package_volumes: Dict[tuple, Volume] = {}
        self._user_volumes: Dict[str, Volume] = {}
        self.mount_count = 0
        self.unmount_count = 0

    def package_volume(
        self, kind: VolumeKind, packages: Iterable[Package]
    ) -> Volume:
        """Get-or-create the package volume for ``packages`` of ``kind``."""
        if kind is VolumeKind.USER_DATA:
            raise ValueError("use user_data_volume() for user-data volumes")
        frozen = frozenset(packages)
        cache_key = (kind, frozen)
        vol = self._package_volumes.get(cache_key)
        if vol is None:
            vol = Volume(next(self._ids), kind, packages=frozen)
            self._package_volumes[cache_key] = vol
        return vol

    def user_data_volume(self, function_name: str) -> Volume:
        """Get-or-create the private user-data volume of a function."""
        vol = self._user_volumes.get(function_name)
        if vol is None:
            vol = Volume(
                next(self._ids), VolumeKind.USER_DATA, owner_function=function_name
            )
            self._user_volumes[function_name] = vol
        return vol

    def record_mount(self, n: int = 1) -> None:
        """Count volume mount operation(s)."""
        self.mount_count += n

    def record_unmount(self, n: int = 1) -> None:
        """Count volume unmount operation(s)."""
        self.unmount_count += n


def volumes_for_image(
    store: VolumeStore,
    language_packages: Iterable[Package],
    runtime_packages: Iterable[Package],
    function_name: str,
) -> List[Volume]:
    """The full volume set a container needs to run ``function_name``."""
    vols: List[Volume] = []
    lang = frozenset(language_packages)
    rt = frozenset(runtime_packages)
    if lang:
        vols.append(store.package_volume(VolumeKind.LANGUAGE, lang))
    if rt:
        vols.append(store.package_volume(VolumeKind.RUNTIME, rt))
    vols.append(store.user_data_volume(function_name))
    return vols
