"""Container substrate.

Simulated containers with three-level package images, the Table-I matcher,
the startup cost model (with per-phase breakdown used by Fig. 1), and the
container cleaner that repacks a warm container for a new function via volume
mount/unmount (Section III, "Container cleaner").
"""

from repro.containers.image import FunctionImage
from repro.containers.container import Container, ContainerState
from repro.containers.matching import (
    MatchLevel,
    best_match,
    match_level,
    match_level_sets,
)
from repro.containers.costmodel import (
    CostModelParams,
    StartupBreakdown,
    StartupCostModel,
    StartupPhase,
)
from repro.containers.volumes import Volume, VolumeKind, VolumeStore
from repro.containers.cleaner import CleanResult, ContainerCleaner, SecurityViolation

__all__ = [
    "FunctionImage",
    "Container",
    "ContainerState",
    "MatchLevel",
    "match_level",
    "match_level_sets",
    "best_match",
    "CostModelParams",
    "StartupBreakdown",
    "StartupCostModel",
    "StartupPhase",
    "Volume",
    "VolumeKind",
    "VolumeStore",
    "CleanResult",
    "ContainerCleaner",
    "SecurityViolation",
]
