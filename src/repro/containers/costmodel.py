"""Startup cost model with per-phase breakdown.

The paper decomposes a function start into phases (Fig. 1): creating and
launching the sandbox, pulling code, installing packages, initializing the
language runtime and initializing the function.  Multi-level reuse skips the
phases below the matched level:

==========  ==================================================================
Match       Phases paid
==========  ==================================================================
NO_MATCH    CREATE + PULL(L1..L3) + INSTALL(L1..L3) + RUNTIME_INIT + FUNC_INIT
L1          CLEAN + PULL(L2,L3) + INSTALL(L2,L3) + RUNTIME_INIT + FUNC_INIT
L2          CLEAN + PULL(L3) + INSTALL(L3) + warm RUNTIME_INIT + FUNC_INIT
L3          CLEAN + warm FUNC_INIT
==========  ==================================================================

Default parameters are calibrated to the paper's measurements on Tencent SCF:
code pulling is 47--89 % of a cold start, runtime initialization is ~6 % for
interpreted languages and up to ~45 % for compiled ones, a full warm start is
up to ~14x faster than a cold start, and cold starts are 1.3--166x the
function execution time.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping

from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel
from repro.packages.package import Package, PackageLevel


#: Content-address version of the cost model: bump whenever breakdown math
#: or the default parameters change in a way that alters computed latencies
#: for identical inputs.  Part of every experiment-cache key
#: (:mod:`repro.experiments.cache`); the default parameter values are
#: additionally fingerprinted there, so this only needs a bump for *logic*
#: changes.
COST_MODEL_VERSION = 1


class StartupPhase(enum.Enum):
    """The phases of a function start."""

    CREATE = "create"
    PULL = "pull"
    INSTALL = "install"
    RUNTIME_INIT = "runtime_init"
    FUNCTION_INIT = "function_init"
    CLEAN = "clean"


# Runtime (language) initialization time in seconds.  Interpreted languages
# are cheap; compiled stacks like the JVM are expensive (Section II-A).
_DEFAULT_RUNTIME_INIT_S: Dict[str, float] = {
    "python": 0.15,
    "pip": 0.02,
    "nodejs": 0.20,
    "npm": 0.03,
    "golang": 0.05,   # static binary: negligible runtime bring-up
    "openjdk": 1.80,  # JVM start + class loading
    "maven": 0.05,
    "gcc-toolchain": 0.05,
}


@dataclass(frozen=True)
class CostModelParams:
    """Tunable parameters of the startup cost model.

    Parameters
    ----------
    create_s:
        Time to create and launch a fresh sandbox (container).
    bandwidth_mb_per_s:
        Network bandwidth for pulling package bytes.
    per_package_pull_s:
        Fixed per-package request latency added to the transfer time.
    clean_s:
        Container-cleaner repack time (volume unmount + mount) when reusing
        a warm container.
    runtime_init_s:
        Language-package name -> runtime initialization seconds.
    default_runtime_init_s:
        Fallback for language packages missing from ``runtime_init_s``.
    warm_runtime_factor:
        Fraction of runtime init paid at an L2 match (the interpreter binary
        is present but the process restarts for a different application).
    warm_function_factor:
        Fraction of function init paid at a full (L3) match.
    """

    create_s: float = 0.30
    bandwidth_mb_per_s: float = 200.0
    per_package_pull_s: float = 0.03
    clean_s: float = 0.05
    runtime_init_s: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_RUNTIME_INIT_S)
    )
    default_runtime_init_s: float = 0.25
    warm_runtime_factor: float = 0.25
    warm_function_factor: float = 0.20

    def __post_init__(self) -> None:
        if self.bandwidth_mb_per_s <= 0:
            raise ValueError("bandwidth_mb_per_s must be positive")
        for name, value in (
            ("create_s", self.create_s),
            ("per_package_pull_s", self.per_package_pull_s),
            ("clean_s", self.clean_s),
            ("default_runtime_init_s", self.default_runtime_init_s),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0")
        for name, value in (
            ("warm_runtime_factor", self.warm_runtime_factor),
            ("warm_function_factor", self.warm_function_factor),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class StartupBreakdown:
    """Per-phase startup latency in seconds (the Fig. 1 stacked bars)."""

    create_s: float = 0.0
    pull_s: float = 0.0
    install_s: float = 0.0
    runtime_init_s: float = 0.0
    function_init_s: float = 0.0
    clean_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.create_s
            + self.pull_s
            + self.install_s
            + self.runtime_init_s
            + self.function_init_s
            + self.clean_s
        )

    def as_dict(self) -> Dict[StartupPhase, float]:
        """Per-phase seconds keyed by StartupPhase."""
        return {
            StartupPhase.CREATE: self.create_s,
            StartupPhase.PULL: self.pull_s,
            StartupPhase.INSTALL: self.install_s,
            StartupPhase.RUNTIME_INIT: self.runtime_init_s,
            StartupPhase.FUNCTION_INIT: self.function_init_s,
            StartupPhase.CLEAN: self.clean_s,
        }


class StartupCostModel:
    """Compute startup latencies for every Table-I match level."""

    def __init__(self, params: CostModelParams | None = None) -> None:
        self.params = params or CostModelParams()

    # -- phase helpers -------------------------------------------------------
    def pull_time_s(self, packages: FrozenSet[Package]) -> float:
        """Network transfer plus per-package request latency.

        Package sets iterate in hash-randomized order, so all phase sums
        use ``math.fsum`` (exactly rounded, hence order-independent) to
        keep latencies bit-reproducible across processes -- golden traces
        depend on this.
        """
        size = math.fsum(p.size_mb for p in packages)
        return size / self.params.bandwidth_mb_per_s + (
            self.params.per_package_pull_s * len(packages)
        )

    @staticmethod
    def install_time_s(packages: FrozenSet[Package]) -> float:
        """Total extra install time of ``packages`` (order-independent)."""
        return math.fsum(p.install_cost_s for p in packages)

    def runtime_init_time_s(self, image: FunctionImage) -> float:
        """Sum of language-runtime init times for the image's L2 packages."""
        return math.fsum(
            self.params.runtime_init_s.get(p.name, self.params.default_runtime_init_s)
            for p in image.language_packages
        )

    # -- main entry point ------------------------------------------------------
    def breakdown(
        self,
        image: FunctionImage,
        match: MatchLevel,
        function_init_s: float,
    ) -> StartupBreakdown:
        """Startup breakdown for starting ``image`` at the given match level.

        ``function_init_s`` is the function's own initialization time (code
        import, model load, ...), supplied by the function spec.
        """
        if function_init_s < 0:
            raise ValueError("function_init_s must be >= 0")
        p = self.params
        if match is MatchLevel.NO_MATCH:
            levels = (PackageLevel.OS, PackageLevel.LANGUAGE, PackageLevel.RUNTIME)
            pkgs = frozenset().union(*(image.level_set(lv) for lv in levels))
            return StartupBreakdown(
                create_s=p.create_s,
                pull_s=self.pull_time_s(pkgs),
                install_s=self.install_time_s(pkgs),
                runtime_init_s=self.runtime_init_time_s(image),
                function_init_s=function_init_s,
            )
        if match is MatchLevel.L1:
            pkgs = image.language_packages | image.runtime_packages
            return StartupBreakdown(
                clean_s=p.clean_s,
                pull_s=self.pull_time_s(pkgs),
                install_s=self.install_time_s(pkgs),
                runtime_init_s=self.runtime_init_time_s(image),
                function_init_s=function_init_s,
            )
        if match is MatchLevel.L2:
            pkgs = image.runtime_packages
            return StartupBreakdown(
                clean_s=p.clean_s,
                pull_s=self.pull_time_s(pkgs),
                install_s=self.install_time_s(pkgs),
                runtime_init_s=p.warm_runtime_factor * self.runtime_init_time_s(image),
                function_init_s=function_init_s,
            )
        # Full match: only repacking and a warm function init remain.
        return StartupBreakdown(
            clean_s=p.clean_s,
            function_init_s=p.warm_function_factor * function_init_s,
        )

    def latency_s(
        self, image: FunctionImage, match: MatchLevel, function_init_s: float
    ) -> float:
        """Total startup latency (convenience wrapper over :meth:`breakdown`)."""
        return self.breakdown(image, match, function_init_s).total_s

    # -- W-style delta costing (Fig. 1's "pull missing packages") -------------
    def delta_breakdown(
        self,
        function_image: FunctionImage,
        container_image: FunctionImage,
        function_init_s: float,
    ) -> StartupBreakdown:
        """Startup cost reusing ``container_image`` with per-package deltas.

        This is the paper's "W" reuse mode from Fig. 1: adopt the warm
        container and pull/install only the *missing* packages, regardless
        of whole-level equality.  Requires an OS-level match (the writable
        layer cannot be swapped); raises ``ValueError`` otherwise.

        Compared to :meth:`breakdown`, which prices the three Table-I match
        levels, this prices arbitrary package overlap -- the cost model
        behind level-free sharing baselines.
        """
        if function_init_s < 0:
            raise ValueError("function_init_s must be >= 0")
        if function_image.os_packages != container_image.os_packages:
            raise ValueError("delta reuse requires an OS-level match")
        p = self.params
        missing = frozenset(
            (function_image.language_packages | function_image.runtime_packages)
            - (container_image.language_packages
               | container_image.runtime_packages)
        )
        lang_ready = (
            function_image.language_packages <= container_image.language_packages
        )
        runtime_init = self.runtime_init_time_s(function_image)
        if lang_ready:
            runtime_init *= p.warm_runtime_factor
        fully_warm = not missing and lang_ready
        init = function_init_s * (p.warm_function_factor if fully_warm else 1.0)
        return StartupBreakdown(
            clean_s=p.clean_s,
            pull_s=self.pull_time_s(missing) if missing else 0.0,
            install_s=self.install_time_s(missing),
            runtime_init_s=0.0 if fully_warm else runtime_init,
            function_init_s=init,
        )
