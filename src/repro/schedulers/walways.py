"""W-style always-adopt scheduler (the Fig. 1 "W" reuse mode).

Adopts any same-OS warm container and pulls only missing packages (delta
costing), always choosing the candidate whose delta cost is lowest.  It is
the level-free counterpart of Greedy-Match: no Table-I pruning, maximal
adoption.  Not part of the paper's comparison set (the paper uses "W" only
in the motivating microbenchmark), provided as an extension baseline.

Note the cluster simulator prices warm reuse by Table-I match level; this
scheduler therefore *selects* by delta cost but still pays level-based cost
in the simulator -- its value is in the Fig. 1 analysis and in stress-testing
the matcher with adversarial adoption behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.eviction import LRUEviction
from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class AlwaysAdoptScheduler(Scheduler):
    """Adopt the same-OS container with the smallest delta startup cost."""

    name = "W-AlwaysAdopt"

    @staticmethod
    def make_eviction_policy() -> LRUEviction:
        return LRUEviction()

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        spec = ctx.invocation.spec
        best_id: Optional[int] = None
        best_cost = float("inf")
        for container in ctx.idle_containers:
            if container.image.os_packages != spec.image.os_packages:
                continue
            cost = ctx.cost_model.delta_breakdown(
                spec.image, container.image, spec.function_init_s
            ).total_s
            if cost < best_cost:
                best_cost = cost
                best_id = container.container_id
        if best_id is not None and best_cost < ctx.estimated_latency(None):
            return Decision.warm(best_id)
        return Decision.cold()
