"""Clairvoyant bounded-horizon scheduler (ablation upper bound).

Not part of the paper's comparison set.  This scheduler is told the full
workload in advance (:meth:`observe_workload`) and, at each decision, weighs
the immediate saving of grabbing a container against the best saving any of
the next ``horizon`` invocations could extract from the *same* container --
a direct operationalization of the paper's Fig. 2 insight.  It gives a cheap
estimate of how much headroom exists beyond Greedy-Match, which bounds what
the DRL scheduler can hope to learn.
"""

from __future__ import annotations

from typing import List, Optional

from repro.containers.matching import match_level
from repro.schedulers.base import Decision, Scheduler, SchedulingContext
from repro.workloads.workload import Invocation, Workload


class LookaheadScheduler(Scheduler):
    """Greedy matching tempered by clairvoyant opportunity costs."""

    name = "Lookahead"

    def __init__(self, horizon: int = 8) -> None:
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        self.horizon = horizon
        self._future: List[Invocation] = []

    def observe_workload(self, workload: Workload) -> None:
        """Give the scheduler clairvoyant access to the arrival stream."""
        self._future = list(workload.invocations)

    def reset(self) -> None:
        """Clear per-run state."""
        self._future = []

    # -- decision logic -------------------------------------------------------
    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        upcoming = self._upcoming(ctx.invocation)
        cold_latency = ctx.estimated_latency(None)
        best: Optional[Decision] = None
        best_score = 0.0  # score of cold start: zero net saving
        for container, _level in ctx.reusable_containers():
            my_latency = ctx.estimated_latency(container)
            my_saving = cold_latency - my_latency
            # Taking the container keeps it busy through startup + execution;
            # future invocations arriving within that window lose it
            # entirely, later ones only lose the repack delta.
            busy_until = (
                ctx.now + my_latency + ctx.invocation.execution_time_s
            )
            loss = self._opportunity_loss(container, upcoming, ctx, busy_until)
            score = my_saving - loss
            if score > best_score:
                best_score = score
                best = Decision.warm(container.container_id)
        return best or Decision.cold()

    def _upcoming(self, current: Invocation) -> List[Invocation]:
        """The next ``horizon`` invocations after ``current``."""
        idx = None
        for i, inv in enumerate(self._future):
            if inv.invocation_id == current.invocation_id:
                idx = i
                break
        if idx is None:
            return []
        return self._future[idx + 1 : idx + 1 + self.horizon]

    def _opportunity_loss(
        self,
        container,
        upcoming: List[Invocation],
        ctx: SchedulingContext,
        busy_until: float,
    ) -> float:
        """Worst saving a near-future invocation forfeits if we take it now.

        An invocation arriving while the container is busy loses the entire
        as-is saving; one arriving after it is free again loses only the
        difference between reusing the original stack and reusing the
        repacked (current invocation's) stack.
        """
        my_image = ctx.invocation.spec.image
        worst = 0.0
        for inv in upcoming:
            as_is = self._saving(inv, container.image, ctx)
            if as_is <= 0:
                continue
            if inv.arrival_time < busy_until:
                loss = as_is
            else:
                loss = max(0.0, as_is - self._saving(inv, my_image, ctx))
            worst = max(worst, loss)
        return worst

    @staticmethod
    def _saving(
        inv: Invocation, container_image, ctx: SchedulingContext
    ) -> float:
        """Startup saving ``inv`` would get from a container of that image."""
        from repro.containers.matching import MatchLevel

        match = match_level(inv.spec.image, container_image)
        if not match.is_reusable:
            return 0.0
        cold = ctx.cost_model.latency_s(
            inv.spec.image, MatchLevel.NO_MATCH, inv.spec.function_init_s
        )
        warm = ctx.cost_model.latency_s(
            inv.spec.image, match, inv.spec.function_init_s
        )
        return cold - warm
