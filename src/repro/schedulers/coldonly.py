"""Always-cold scheduler: a sanity-check lower bound on warm reuse."""

from __future__ import annotations

from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class ColdOnlyScheduler(Scheduler):
    """Cold-start every invocation (no reuse at all).

    Not part of the paper's comparison set, but useful as the worst-case
    reference against which warm-start savings are normalized in tests.
    """

    name = "ColdOnly"

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        return Decision.cold()
