"""Model-predictive pre-warm scheduler (Taming Cold Starts, arXiv:2508.07640).

Reactive half: exact-match keep-alive reuse, byte-identical to
:class:`~repro.schedulers.keepalive.KeepAliveScheduler` (the
``mpc_forecast_off_vs_keepalive`` differential oracle pins this).

Proactive half: a sliding per-function EWMA over inter-arrival gaps
forecasts each function's next arrival; every decision re-solves a
receding-horizon plan -- functions predicted to arrive within
``horizon_s`` that have no idle exact-match container get a
:class:`~repro.schedulers.base.PrewarmRequest` attached to the decision,
at most ``prewarm_budget`` per decision and at most one outstanding
pre-warm per predicted arrival.  The driver executes the requests through
:meth:`ContainerLifecycle.prewarm`; telemetry's pre-warm block (issued /
reused / wasted) measures the forecaster's hit rate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.eviction import EvictionPolicy, RejectNewcomerEviction
from repro.containers.image import FunctionImage
from repro.schedulers.base import (
    Decision,
    PrewarmRequest,
    Scheduler,
    SchedulingContext,
)


class ArrivalForecaster:
    """Per-function EWMA over inter-arrival gaps.

    ``observe(fn, t)`` folds one arrival in; ``predict_next(fn)`` returns
    the forecast next-arrival time (last arrival plus the smoothed gap),
    or ``None`` before two arrivals have been seen.  The prediction is
    shift-equivariant: shifting every observed arrival time by a constant
    shifts every prediction by the same constant (gaps are differences).
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._last: Dict[str, float] = {}
        self._ewma_gap: Dict[str, float] = {}

    def observe(self, function_name: str, arrival_time: float) -> None:
        """Fold one arrival of ``function_name`` at ``arrival_time``."""
        last = self._last.get(function_name)
        if last is not None:
            gap = arrival_time - last
            prev = self._ewma_gap.get(function_name)
            if prev is None:
                self._ewma_gap[function_name] = gap
            else:
                self._ewma_gap[function_name] = (
                    self.alpha * gap + (1.0 - self.alpha) * prev
                )
        self._last[function_name] = arrival_time

    def predict_next(self, function_name: str) -> Optional[float]:
        """Forecast next-arrival time; None before two observations."""
        gap = self._ewma_gap.get(function_name)
        if gap is None:
            return None
        return self._last[function_name] + gap

    def reset(self) -> None:
        """Forget every observation."""
        self._last.clear()
        self._ewma_gap.clear()


class MPCScheduler(Scheduler):
    """Receding-horizon pre-warming on top of keep-alive reuse.

    Parameters
    ----------
    horizon_s:
        Look-ahead window: only arrivals forecast within the next
        ``horizon_s`` seconds trigger a pre-warm.
    prewarm_budget:
        Maximum pre-warm requests attached to one decision (the planning
        step's action budget).
    alpha:
        EWMA smoothing factor for the inter-arrival forecaster.
    ttl_s:
        Keep-alive TTL handed to the eviction policy (same default as the
        keep-alive baseline).
    forecast:
        ``False`` disables the proactive half entirely; the scheduler is
        then byte-identical to the keep-alive baseline.
    """

    name = "MPC-Prewarm"

    def __init__(
        self,
        horizon_s: float = 30.0,
        prewarm_budget: int = 2,
        alpha: float = 0.3,
        ttl_s: float = 600.0,
        forecast: bool = True,
    ) -> None:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if prewarm_budget < 0:
            raise ValueError("prewarm_budget must be >= 0")
        self.horizon_s = horizon_s
        self.prewarm_budget = prewarm_budget
        self.ttl_s = ttl_s
        self.forecast = forecast
        self.forecaster = ArrivalForecaster(alpha=alpha)
        # Registered function images, in first-seen (insertion) order --
        # the deterministic iteration order of the planning loop.
        self._images: Dict[str, FunctionImage] = {}
        # Predicted arrival each function was last pre-warmed for: at most
        # one outstanding pre-warm per forecast point.
        self._prewarmed_for: Dict[str, float] = {}

    def reset(self) -> None:
        """Forget forecasts, registered images and outstanding pre-warms."""
        self.forecaster.reset()
        self._images.clear()
        self._prewarmed_for.clear()

    def make_eviction_policy(self) -> EvictionPolicy:
        """Keep-alive semantics for the reactive half."""
        return RejectNewcomerEviction(ttl_s=self.ttl_s)

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Keep-alive exact-match reuse plus the receding-horizon plan."""
        spec = ctx.invocation.spec
        self._images[spec.name] = spec.image
        self.forecaster.observe(spec.name, ctx.invocation.arrival_time)
        exact = ctx.exact_matches()
        decision = (
            Decision.warm(exact[0].container_id) if exact else Decision.cold()
        )
        if not self.forecast or self.prewarm_budget == 0:
            return decision
        plan = self._plan(ctx, decision)
        if plan:
            return decision.with_actions(plan)
        return decision

    # -- planning ------------------------------------------------------------
    def _plan(self, ctx: SchedulingContext, decision: Decision) -> list:
        """Pre-warm requests for functions forecast inside the horizon."""
        now = ctx.now
        deadline = now + self.horizon_s
        plan = []
        for fn, image in self._images.items():
            if len(plan) >= self.prewarm_budget:
                break
            if fn == ctx.invocation.spec.name:
                # The container this very decision starts (or claims) will
                # serve the function's next arrival if keep-alive holds it.
                continue
            predicted = self.forecaster.predict_next(fn)
            if predicted is None or not (now < predicted <= deadline):
                continue
            if self._prewarmed_for.get(fn) == predicted:
                continue
            if self._has_idle_exact(ctx, image, decision):
                continue
            plan.append(PrewarmRequest(image=image, function_name=fn))
            self._prewarmed_for[fn] = predicted
        return plan

    @staticmethod
    def _has_idle_exact(
        ctx: SchedulingContext, image: FunctionImage, decision: Decision
    ) -> bool:
        """Whether an idle exact match for ``image`` will remain pooled
        (excluding the container this decision is about to claim)."""
        if ctx.pool is not None:
            candidates = ctx.pool.exact_matches(image)
        else:
            fingerprints = image.fingerprints
            candidates = [
                c for c in ctx.idle_containers
                if c.image.fingerprints == fingerprints
            ]
        return any(
            c.container_id != decision.container_id for c in candidates
        )
