"""Scheduler serving an offline-fitted tabular Q-policy.

:class:`OfflineQScheduler` looks up the arriving function's Q-row in an
:class:`~repro.drl.offline.OfflineQPolicy` (fitted by
:func:`~repro.drl.offline.fit_from_traces` from golden-trace /
serve-recording JSONL), masks out actions with no idle candidate at that
match level, and picks the arg-max action with the same
:func:`~repro.drl.dqn.masked_argmax` used by the PR-3 DQN stack.  For
functions the data never covered -- or before any policy is attached --
it falls back to the greedy deepest-match rule, so the registry's no-arg
construction is always valid.

When built without an explicit policy, :meth:`observe_workload`
bootstraps one from the workload itself: a greedy reference rollout on an
unbounded pool is recorded in memory and fitted, so experiment-grid cells
genuinely train from traces (deterministically -- same workload, same
rollout, same policy) without any filesystem coupling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.eviction import LRUEviction
from repro.containers.matching import MatchLevel
from repro.drl.dqn import masked_argmax
from repro.drl.offline import OfflineQPolicy
from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class OfflineQScheduler(Scheduler):
    """Serve decisions from a trace-fitted tabular Q-function.

    Parameters
    ----------
    policy:
        A fitted :class:`~repro.drl.offline.OfflineQPolicy`.  ``None``
        (the registry default) starts untrained: decisions fall back to
        greedy deepest-match until :meth:`observe_workload` bootstraps a
        policy from a reference rollout.
    """

    name = "Offline-Q"

    def __init__(self, policy: Optional[OfflineQPolicy] = None) -> None:
        self.policy = policy
        # An explicitly-supplied policy is pinned: observe_workload will
        # not overwrite it (serving a trained checkpoint must not retrain).
        self._policy_pinned = policy is not None

    def reset(self) -> None:
        """Drop any bootstrapped policy (pinned checkpoints survive)."""
        if not self._policy_pinned:
            self.policy = None

    @staticmethod
    def make_eviction_policy() -> LRUEviction:
        """LRU, like the other multi-level-reuse policies."""
        return LRUEviction()

    def observe_workload(self, workload) -> None:
        """Bootstrap a policy from a greedy reference rollout (offline).

        No-op when a policy was supplied at construction.  The rollout
        runs the greedy baseline over ``workload`` on an unbounded pool;
        its decision lines become the offline dataset.
        """
        if self._policy_pinned:
            return
        # Deferred imports: schedulers must stay importable without
        # dragging the full cluster stack in at package-import time.
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from repro.drl.offline import fit_from_traces, trace_lines_from_result
        from repro.schedulers.greedy import GreedyMatchScheduler

        reference = GreedyMatchScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=float("inf")),
            reference.make_eviction_policy(),
        )
        result = sim.run(workload, reference)
        self.policy = fit_from_traces([trace_lines_from_result(result)])

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Masked arg-max over the function's Q-row; greedy fallback."""
        if self.policy is None:
            return self._fallback(ctx)
        qvals = self.policy.action_values(ctx.invocation.spec.name)
        if qvals is None:
            return self._fallback(ctx)
        counts = ctx.match_counts()
        available = np.array([
            True,  # cold start is always available
            counts[MatchLevel.L1] > 0,
            counts[MatchLevel.L2] > 0,
            counts[MatchLevel.L3] > 0,
        ])
        mask = available & ~np.isnan(qvals)
        if not mask.any():
            return self._fallback(ctx)
        q = np.where(np.isnan(qvals), -np.inf, qvals)
        action = int(masked_argmax(q[None, :], mask[None, :])[0])
        if action == 0:
            return Decision.cold()
        level = MatchLevel(action)
        for container, match in ctx.reusable_containers():
            if match is level:
                return Decision.warm(container.container_id)
        # Unreachable while match_counts and reusable_containers agree;
        # degrade safely rather than raise inside a decision.
        return self._fallback(ctx)  # pragma: no cover

    @staticmethod
    def _fallback(ctx: SchedulingContext) -> Decision:
        """Greedy deepest-match rule (untrained / unseen-function path)."""
        container, level = ctx.best_candidate()
        if level.is_reusable:
            return Decision.warm(container.container_id)
        return Decision.cold()
