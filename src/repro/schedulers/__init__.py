"""Container-reuse schedulers: the paper's comparison set.

* :class:`ColdOnlyScheduler` -- always cold start (lower-bound sanity check).
* :class:`KeepAliveScheduler` -- exact-configuration reuse, 10-minute TTL,
  reject-when-full (the public-cloud default).
* :class:`LRUScheduler` -- exact-configuration reuse with LRU eviction.
* :class:`FaasCacheScheduler` -- exact-configuration reuse with greedy-dual
  eviction priorities (Fuerst & Sharma).
* :class:`GreedyMatchScheduler` -- multi-level (Table I) matching, picking
  the deepest-matching container greedily; LRU eviction.
* :class:`LookaheadScheduler` -- a clairvoyant bounded-horizon searcher used
  as an ablation upper bound (not in the paper's comparison set).
* :class:`MPCScheduler` -- keep-alive reuse plus receding-horizon proactive
  pre-warming from an EWMA arrival forecaster (Taming Cold Starts).
* :class:`PagurusLendingScheduler` -- greedy reuse plus Pagurus-style
  lending: long-idle containers are re-specialized toward other functions.
* :class:`OfflineQScheduler` -- serves a tabular Q-policy fitted offline
  from golden-trace / serve-recording JSONL (:mod:`repro.drl.offline`).
* MLCR itself lives in :mod:`repro.core` (DRL-based) and plugs into the same
  :class:`Scheduler` interface.
"""

from repro.schedulers.base import (
    Decision,
    LendRequest,
    PrewarmRequest,
    Scheduler,
    SchedulingContext,
)
from repro.schedulers.coldonly import ColdOnlyScheduler
from repro.schedulers.keepalive import KeepAliveScheduler
from repro.schedulers.lru import LRUScheduler
from repro.schedulers.faascache import FaasCacheScheduler
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.schedulers.lending import PagurusLendingScheduler
from repro.schedulers.lookahead import LookaheadScheduler
from repro.schedulers.mpc import ArrivalForecaster, MPCScheduler
from repro.schedulers.offline import OfflineQScheduler
from repro.schedulers.walways import AlwaysAdoptScheduler
from repro.schedulers.zygote import ZygoteScheduler, build_zygote_images

__all__ = [
    "Scheduler",
    "SchedulingContext",
    "Decision",
    "PrewarmRequest",
    "LendRequest",
    "ColdOnlyScheduler",
    "KeepAliveScheduler",
    "LRUScheduler",
    "FaasCacheScheduler",
    "GreedyMatchScheduler",
    "LookaheadScheduler",
    "ArrivalForecaster",
    "MPCScheduler",
    "PagurusLendingScheduler",
    "OfflineQScheduler",
    "AlwaysAdoptScheduler",
    "ZygoteScheduler",
    "build_zygote_images",
]
