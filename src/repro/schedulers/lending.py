"""Pagurus-style inter-function container lending (arXiv:2108.11240).

Reactive half: deepest-match greedy reuse, byte-identical to
:class:`~repro.schedulers.greedy.GreedyMatchScheduler` (the
``lend_budget_zero_vs_greedy`` differential oracle pins this).

Proactive half: when an arrival misses an exact match, an idle "helper"
container that has sat unused past ``help_threshold_s`` is re-specialized
toward the arriving function's package set via a
:class:`~repro.schedulers.base.LendRequest` -- the lifecycle repacks it in
place through the fingerprint-prefix match machinery (sharing every
Table-I-compatible layer), so the function's next arrival finds an exact
match.  ``lend_budget`` bounds the total lends per run; budget 0 disables
lending entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.eviction import LRUEviction
from repro.containers.container import Container
from repro.containers.matching import MatchLevel
from repro.schedulers.base import (
    Decision,
    LendRequest,
    Scheduler,
    SchedulingContext,
)


class PagurusLendingScheduler(Scheduler):
    """Greedy multi-level reuse plus idle-container lending.

    Parameters
    ----------
    lend_budget:
        Maximum lends issued per run (``reset()`` restores the budget).
        0 turns the policy into the plain greedy baseline.
    help_threshold_s:
        An idle container only becomes a lending donor once it has been
        idle at least this long (Pagurus' "unlikely to be needed soon"
        heuristic).  The default is short because the FStartBench
        workloads are arrival-dense: a few idle seconds already signal a
        container its own function is unlikely to reclaim immediately.
    """

    name = "Pagurus-Lend"

    def __init__(
        self, lend_budget: int = 64, help_threshold_s: float = 2.0
    ) -> None:
        if lend_budget < 0:
            raise ValueError("lend_budget must be >= 0")
        if help_threshold_s < 0:
            raise ValueError("help_threshold_s must be >= 0")
        self.lend_budget = lend_budget
        self.help_threshold_s = help_threshold_s
        self._lends_used = 0

    def reset(self) -> None:
        """Restore the full lending budget for a fresh run."""
        self._lends_used = 0

    @staticmethod
    def make_eviction_policy() -> LRUEviction:
        """LRU, matching the greedy baseline's pairing."""
        return LRUEviction()

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Greedy deepest-match reuse, plus a lend toward this function
        when the hit was inexact and a donor is available."""
        container, level = ctx.best_candidate()
        decision = (
            Decision.warm(container.container_id)
            if level.is_reusable
            else Decision.cold()
        )
        if (
            self._lends_used >= self.lend_budget
            or level is MatchLevel.L3
        ):
            # Exact hit: nothing to improve for this function right now.
            return decision
        donor = self._pick_donor(ctx, decision)
        if donor is None:
            return decision
        self._lends_used += 1
        spec = ctx.invocation.spec
        return decision.with_actions((
            LendRequest(
                container_id=donor.container_id,
                image=spec.image,
                function_name=spec.name,
            ),
        ))

    def _pick_donor(
        self, ctx: SchedulingContext, decision: Decision
    ) -> Optional[Container]:
        """Deepest-matching idle helper past the threshold, longest-idle
        tie-break; excludes the container this decision claims."""
        best: Optional[Container] = None
        best_level = MatchLevel.NO_MATCH
        for candidate in ctx.idle_containers:  # LRU (longest-idle) first
            if candidate.container_id == decision.container_id:
                continue
            if candidate.idle_duration(ctx.now) < self.help_threshold_s:
                continue
            level = ctx.match_of(candidate)
            if not level.is_reusable:
                continue
            if level > best_level:
                best, best_level = candidate, level
        return best
