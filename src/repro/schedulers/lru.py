"""LRU baseline: exact-configuration reuse with LRU eviction."""

from __future__ import annotations

from repro.cluster.eviction import LRUEviction
from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class LRUScheduler(Scheduler):
    """Reuse a warm container only on a full configuration match.

    Finished containers are kept in the pool; when the pool is full the
    least-recently-used idle container is evicted to make space (the paper's
    *LRU* comparison).
    """

    name = "LRU"

    @staticmethod
    def make_eviction_policy() -> LRUEviction:
        return LRUEviction()

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        exact = ctx.exact_matches()
        if exact:
            return Decision.warm(exact[0].container_id)
        return Decision.cold()
