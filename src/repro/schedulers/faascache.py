"""FaasCache baseline: exact-configuration reuse + greedy-dual eviction.

FaasCache (Fuerst & Sharma, ASPLOS'21) treats keep-alive as caching: the
scheduling side is identical to LRU (reuse only full matches) but eviction
uses a greedy-dual priority combining invocation frequency, observed startup
cost and memory footprint.
"""

from __future__ import annotations

from repro.cluster.eviction import FaasCacheEviction
from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class FaasCacheScheduler(Scheduler):
    """Exact-match reuse paired with :class:`FaasCacheEviction`."""

    name = "FaasCache"

    @staticmethod
    def make_eviction_policy() -> FaasCacheEviction:
        return FaasCacheEviction()

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        exact = ctx.exact_matches()
        if exact:
            return Decision.warm(exact[0].container_id)
        return Decision.cold()
