"""Greedy-Match: multi-level matching with a best-effort greedy pick.

The paper's strongest non-DRL comparison: like MLCR it may reuse containers
across different functions at any Table-I level, but it always grabs the
deepest-matching container available *right now* -- which can strand future
invocations (the Fig. 2 pathology MLCR's DRL scheduler learns to avoid).
Eviction is LRU, as in MLCR.
"""

from __future__ import annotations

from repro.cluster.eviction import LRUEviction
from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class GreedyMatchScheduler(Scheduler):
    """Pick the deepest-matching idle container; cold-start otherwise."""

    name = "Greedy-Match"

    @staticmethod
    def make_eviction_policy() -> LRUEviction:
        return LRUEviction()

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``.

        Resolved through the pool match index (O(1) dict lookups) when the
        context carries one; identical tie-breaking to the scan path.
        """
        container, level = ctx.best_candidate()
        if level.is_reusable:
            return Decision.warm(container.container_id)
        return Decision.cold()
