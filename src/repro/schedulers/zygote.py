"""Zygote-container baseline (Li et al., USENIX ATC'22 -- related work).

"Help Rather Than Recycle" proposes *zygote* containers that hold the
package union of several functions; a function can warm-start on a zygote
that contains **all** of its packages, and the zygote is preserved (not
repacked) so it keeps serving the whole family.

This module provides:

* :func:`build_zygote_images` -- derive one zygote image per
  (OS, language) family from a set of function specs, with the union of
  that family's runtime packages;
* :class:`ZygoteScheduler` -- reuse a covering container
  (``preserve_image=True``), fall back to exact-match reuse, else cold
  start.

Run it with ``SimulationConfig(delta_pricing=True)`` and a pre-warmed
zygote pool (``ClusterSimulator.prewarm``); the extension benchmark
``benchmarks/bench_ext_zygote.py`` does exactly that.

Compared to MLCR (the paper's Section VII discussion): zygotes need every
package present to help, pay memory for the union permanently, and require
choosing the families up front, whereas MLCR reuses *partial* matches and
adapts online.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.cluster.eviction import LRUEviction
from repro.containers.image import FunctionImage
from repro.schedulers.base import Decision, Scheduler, SchedulingContext
from repro.workloads.functions import FunctionSpec


def build_zygote_images(
    specs: Iterable[FunctionSpec], memory_overhead_mb: float = 48.0
) -> List[FunctionImage]:
    """One zygote per (OS-level, language-level) family: runtime union."""
    families: Dict[Tuple, List[FunctionSpec]] = {}
    for spec in specs:
        key = (spec.image.os_packages, spec.image.language_packages)
        families.setdefault(key, []).append(spec)
    zygotes: List[FunctionImage] = []
    for i, ((os_pkgs, lang_pkgs), members) in enumerate(
        sorted(families.items(), key=lambda kv: kv[1][0].name)
    ):
        runtime_union = frozenset().union(
            *(m.image.runtime_packages for m in members)
        )
        packages = list(os_pkgs | lang_pkgs | runtime_union)
        zygotes.append(
            FunctionImage.from_packages(
                f"zygote/family-{i:02d}", packages,
                memory_overhead_mb=memory_overhead_mb,
            )
        )
    return zygotes


class ZygoteScheduler(Scheduler):
    """Warm-start on covering (superset) containers, preserved in place."""

    name = "Zygote"

    @staticmethod
    def make_eviction_policy() -> LRUEviction:
        return LRUEviction()

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        needed = frozenset(ctx.invocation.spec.image.packages)
        os_level = ctx.invocation.spec.image.os_packages
        covering: List[Tuple[float, int]] = []
        exact: List[int] = []
        for container in ctx.idle_containers:
            if container.image.os_packages != os_level:
                continue
            have = frozenset(container.image.packages)
            if container.image.same_configuration(ctx.invocation.spec.image):
                exact.append(container.container_id)
            elif needed <= have:
                # Prefer the smallest covering zygote (least memory pinned).
                covering.append((container.memory_mb, container.container_id))
        if covering:
            covering.sort()
            return Decision.warm(covering[0][1], preserve_image=True)
        if exact:
            return Decision.warm(exact[-1])  # most recently used
        return Decision.cold()
