"""KeepAlive: the public-cloud default warm-start mechanism.

Finished containers are kept warm for a fixed TTL (10 minutes in the paper).
Reuse only happens when a warm container has *exactly* the invoked function's
configuration (an L3 full match).  When the pool is full, keep-warm requests
of newly finished containers are simply rejected.
"""

from __future__ import annotations

from repro.cluster.eviction import RejectNewcomerEviction
from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class KeepAliveScheduler(Scheduler):
    """Exact-match reuse with TTL keep-alive and reject-when-full."""

    name = "KeepAlive"

    def __init__(self, ttl_s: float = 600.0) -> None:
        self.ttl_s = ttl_s

    def make_eviction_policy(self) -> RejectNewcomerEviction:
        """The eviction policy this scheduler is designed to pair with."""
        return RejectNewcomerEviction(ttl_s=self.ttl_s)

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        exact = ctx.exact_matches()
        if exact:
            # Most-recently-used exact match (exact_matches is MRU-first).
            return Decision.warm(exact[0].container_id)
        return Decision.cold()
