"""Scheduler interface shared by all policies (including MLCR).

The simulator calls :meth:`Scheduler.decide` once per arriving invocation
with a :class:`SchedulingContext` -- a read-only view of the warm pool plus
the cost model -- and receives a :class:`~repro.cluster.simulator.Decision`:
either reuse a specific idle container or cold-start a new one.

Proactive policies (MPC pre-warming, Pagurus lending) additionally attach
:class:`PrewarmRequest` / :class:`LendRequest` actions to their decisions;
the driver executes them through
:class:`~repro.cluster.lifecycle.ContainerLifecycle` immediately after
applying the decision itself, so batch, streaming, incremental and online
serving drives stay decision-identical.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.containers.container import Container
from repro.containers.costmodel import StartupCostModel
from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel, match_level
from repro.workloads.workload import Invocation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster -> base)
    from repro.cluster.pool import PoolSet


@dataclass(frozen=True)
class PrewarmRequest:
    """Proactive action: create an idle container for ``function_name``.

    Executed by :meth:`ContainerLifecycle.prewarm` right after the decision
    carrying it is applied; the new container joins the warm pool through
    the eviction policy like any finishing container.
    """

    image: FunctionImage
    function_name: str


@dataclass(frozen=True)
class LendRequest:
    """Proactive action: re-specialize idle ``container_id`` toward
    ``function_name``'s image (Pagurus-style helping).

    Executed by :meth:`ContainerLifecycle.lend`; a no-op when the donor is
    gone, incompatible, or the repack would overflow its pool shard.
    """

    container_id: int
    image: FunctionImage
    function_name: str


ProactiveAction = Union[PrewarmRequest, LendRequest]


@dataclass(frozen=True)
class Decision:
    """A scheduling decision: reuse ``container_id`` or cold-start (None).

    ``preserve_image`` requests zygote-style reuse: the container serves the
    function but keeps its own (superset) image instead of being repacked to
    the function's image, so it can keep serving the whole function family.
    Only meaningful for warm decisions.

    ``actions`` carries any proactive requests (pre-warms, lends) the
    policy wants executed alongside this decision; empty for the reactive
    baselines.
    """

    container_id: Optional[int] = None
    preserve_image: bool = False
    actions: Tuple[ProactiveAction, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.preserve_image and self.container_id is None:
            raise ValueError("preserve_image requires a warm decision")

    @property
    def is_cold(self) -> bool:
        return self.container_id is None

    @classmethod
    def cold(cls) -> "Decision":
        return cls(container_id=None)

    @classmethod
    def warm(cls, container_id: int, preserve_image: bool = False) -> "Decision":
        return cls(container_id=container_id, preserve_image=preserve_image)

    def with_actions(
        self, actions: Tuple[ProactiveAction, ...]
    ) -> "Decision":
        """Copy of this decision carrying ``actions`` (frozen dataclass)."""
        return Decision(
            container_id=self.container_id,
            preserve_image=self.preserve_image,
            actions=tuple(actions),
        )


@dataclass(frozen=True)
class SchedulingContext:
    """Read-only view handed to schedulers at each decision point.

    Attributes
    ----------
    now:
        Current simulation time.
    invocation:
        The arriving invocation to place.
    idle_containers:
        Idle warm containers, least-recently-used first.
    cost_model:
        The cluster's startup cost model (for latency estimation).
    pool_capacity_mb, pool_used_mb:
        Warm-pool capacity state.
    pool:
        The live warm pool (when provided by the simulator); its match
        index turns :meth:`best_candidate`, :meth:`match_counts` and
        :meth:`exact_matches` into dictionary lookups.  ``None`` in
        hand-built contexts -- every helper falls back to scanning
        ``idle_containers``.
    worker_loads:
        Hosted container count per worker (busy and idle alike), indexed
        by worker id.  Empty in hand-built contexts.
    queue_depths:
        Startups waiting for a worker concurrency slot, per worker.  All
        zeros unless the simulator enforces a ``worker_concurrency``
        limit; empty in hand-built contexts.
    """

    now: float
    invocation: Invocation
    idle_containers: Tuple[Container, ...]
    cost_model: StartupCostModel
    pool_capacity_mb: float
    pool_used_mb: float
    pool: Optional["PoolSet"] = None
    worker_loads: Tuple[int, ...] = ()
    queue_depths: Tuple[int, ...] = ()

    # -- helpers every scheduler needs -------------------------------------
    def match_of(self, container: Container) -> MatchLevel:
        """Table-I match level between the invocation and ``container``."""
        return match_level(self.invocation.spec.image, container.image)

    def estimated_latency(self, container: Optional[Container]) -> float:
        """Estimated startup latency reusing ``container`` (None = cold)."""
        match = MatchLevel.NO_MATCH if container is None else self.match_of(container)
        return self.cost_model.latency_s(
            self.invocation.spec.image, match, self.invocation.spec.function_init_s
        )

    def reusable_containers(self) -> List[Tuple[Container, MatchLevel]]:
        """Idle containers with a non-trivial match, deepest-match first.

        Ties on match level keep most-recently-used first so schedulers that
        take the head get LRU-friendly behaviour.
        """
        scored = [
            (c, self.match_of(c))
            for c in self.idle_containers
        ]
        reusable = [(c, m) for c, m in scored if m.is_reusable]
        # idle_containers is LRU-first; reverse for MRU-first tie-breaking.
        reusable.reverse()
        reusable.sort(key=lambda cm: -int(cm[1]))
        return reusable

    def best_candidate(self) -> Tuple[Optional[Container], MatchLevel]:
        """Deepest-matching idle container, MRU tie-break.

        Uses the warm pool's match index (dict lookups) when :attr:`pool`
        is set; otherwise scans ``idle_containers``.  Returns
        ``(None, NO_MATCH)`` when nothing is reusable.
        """
        if self.pool is not None:
            return self.pool.best_match(self.invocation.spec.image)
        reusable = self.reusable_containers()
        if reusable:
            return reusable[0]
        return None, MatchLevel.NO_MATCH

    def exact_matches(self) -> List[Container]:
        """Idle containers whose configuration fully matches (L3)."""
        if self.pool is not None:
            return self.pool.exact_matches(self.invocation.spec.image)
        return [c for c, m in self.reusable_containers() if m is MatchLevel.L3]

    def match_counts(self) -> Dict[MatchLevel, int]:
        """Idle-container counts per Table-I match level.

        Served from the pool match index when available (per-depth counts
        without recomputation); scan fallback otherwise.
        """
        if self.pool is not None:
            depth = self.pool.match_depth_counts(self.invocation.spec.image)
            return {lvl: depth[int(lvl)] for lvl in MatchLevel}
        counts: Dict[MatchLevel, int] = {lvl: 0 for lvl in MatchLevel}
        for c in self.idle_containers:
            counts[self.match_of(c)] += 1
        return counts


class Scheduler(abc.ABC):
    """Base class for container-reuse scheduling policies."""

    #: Human-readable policy name used in reports and figures.
    name: str = "scheduler"

    @abc.abstractmethod
    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""

    def reset(self) -> None:
        """Clear per-run state; called by experiment harnesses between runs."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
