"""In-process profiling for the CLI (``--profile``).

Hot-path regressions in the simulator or the experiment grid should be
diagnosable without external tooling: ``repro simulate --profile`` and
``python -m repro.experiments.runall --profile`` run their workload under
:mod:`cProfile` and print the top cumulative-time entries before the
normal output.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from typing import Callable, TextIO, TypeVar

T = TypeVar("T")

#: How many entries ``--profile`` prints, sorted by cumulative time.
PROFILE_TOP_N = 25


def profile_call(
    fn: Callable[[], T],
    top: int = PROFILE_TOP_N,
    stream: TextIO = None,
) -> T:
    """Run ``fn`` under cProfile, print the top-``top`` cumulative entries.

    Returns ``fn``'s result; the profile table goes to ``stream``
    (default stdout) so it lands next to the command's regular output.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    (stream or sys.stdout).write(buffer.getvalue())
    return result
