"""Bounded serving-session statistics behind the ``/stats`` endpoint.

All state is O(1) in the number of requests: exact counters plus
per-worker :class:`~repro.cluster.sketches.QuantileSketch` shards for the
simulated startup latencies and one sketch for wall-clock request
latencies.  The per-worker shards are folded with
:meth:`QuantileSketch.merge` at snapshot time -- merging is exact (bucket
counts add), so the merged percentiles carry the same relative-error bound
as a single sketch over all requests would.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.sketches import QuantileSketch
from repro.cluster.telemetry import InvocationRecord

__all__ = ["ServeStats"]


def _sketch_block(sketch: QuantileSketch) -> Dict[str, float]:
    """Scalar JSON block (count/mean/p50/p95/p99/max) for one sketch."""
    return {
        "count": float(sketch.count),
        "mean_s": sketch.mean,
        "p50_s": sketch.quantile(0.5),
        "p95_s": sketch.quantile(0.95),
        "p99_s": sketch.quantile(0.99),
        "max_s": sketch.max,
    }


class ServeStats:
    """Counters and latency sketches for one serving session.

    Parameters
    ----------
    n_workers:
        Cluster worker count; one startup-latency sketch shard is kept per
        worker and merged on demand.
    relative_accuracy:
        Relative-error bound of every sketch (default 1%).
    """

    def __init__(self, n_workers: int, relative_accuracy: float = 0.01) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.relative_accuracy = relative_accuracy
        self.requests = 0
        self.cold_starts = 0
        self.warm_hits = 0
        self.rejected = 0
        self.errors = 0
        self.janitor_ticks = 0
        self.scale_to_zero_events = 0
        self._worker_sketches: List[QuantileSketch] = [
            QuantileSketch(relative_accuracy) for _ in range(n_workers)
        ]
        self._wall_sketch = QuantileSketch(relative_accuracy)
        self._had_live = False

    # -- ingestion -----------------------------------------------------------
    def on_decision(self, record: InvocationRecord) -> None:
        """Account one scheduling decision into its worker's shard."""
        self.requests += 1
        if record.cold_start:
            self.cold_starts += 1
        else:
            self.warm_hits += 1
        self._worker_sketches[record.worker_id].insert(
            record.startup_latency_s
        )

    def on_wall_latency(self, seconds: float) -> None:
        """Record one request's wall-clock handling latency."""
        self._wall_sketch.insert(seconds if seconds > 0.0 else 0.0)

    def on_reject(self) -> None:
        """Count one admission rejection (HTTP 429)."""
        self.rejected += 1

    def on_error(self) -> None:
        """Count one failed request (bad payload, unknown function, ...)."""
        self.errors += 1

    def on_tick(self, live_containers: int) -> None:
        """Account one janitor tick; detects scale-to-zero transitions.

        A scale-to-zero event is the pool going from "had live containers"
        to "none alive" -- i.e. the keep-alive TTL reclaimed the last idle
        container during a quiet period.
        """
        self.janitor_ticks += 1
        if live_containers > 0:
            self._had_live = True
        elif self._had_live:
            self.scale_to_zero_events += 1
            self._had_live = False

    # -- views ---------------------------------------------------------------
    @property
    def warm_hit_rate(self) -> float:
        """Fraction of requests served from the warm pool (0 when empty)."""
        return self.warm_hits / self.requests if self.requests else 0.0

    def merged_startup_sketch(self) -> QuantileSketch:
        """Fold the per-worker shards into one session-wide sketch."""
        merged = QuantileSketch(self.relative_accuracy)
        for shard in self._worker_sketches:
            merged.merge(shard)
        return merged

    def snapshot(self, engine: Optional[object] = None) -> Dict[str, object]:
        """JSON-serializable ``/stats`` payload.

        ``engine`` (a :class:`~repro.serve.engine.ServeEngine`) adds the
        live cluster view -- in-flight requests, live/pooled containers,
        active scheduler -- and the simulator telemetry's own counters.
        """
        payload: Dict[str, object] = {
            "requests": self.requests,
            "cold_starts": self.cold_starts,
            "warm_hits": self.warm_hits,
            "warm_hit_rate": self.warm_hit_rate,
            "rejected": self.rejected,
            "errors": self.errors,
            "janitor_ticks": self.janitor_ticks,
            "scale_to_zero_events": self.scale_to_zero_events,
            "startup_latency": _sketch_block(self.merged_startup_sketch()),
            "wall_latency": _sketch_block(self._wall_sketch),
            "per_worker_decisions": [
                s.count for s in self._worker_sketches
            ],
        }
        if engine is not None:
            payload["scheduler"] = engine.scheduler_key
            payload["scheduler_swaps"] = engine.swaps
            payload["inflight"] = engine.sim_inflight
            payload["live_containers"] = engine.live_containers
            payload["pooled_containers"] = engine.pooled_containers
            payload["keepalive_ttl_s"] = engine.keepalive_ttl_s
            telemetry = engine.sim.telemetry
            payload["telemetry"] = {
                "evictions": telemetry.evictions,
                "keep_alive_rejections": telemetry.keep_alive_rejections,
                "ttl_expirations": telemetry.ttl_expirations,
                "peak_warm_memory_mb": telemetry.peak_warm_memory_mb,
                "peak_live_memory_mb": telemetry.peak_live_memory_mb,
            }
        return payload
