"""Serving-session recording and deterministic replay.

Every served decision is appended to a JSONL log: one header line carrying
everything needed to rebuild the cluster (scheduler key, capacities,
worker topology, keep-alive TTL), then one line per decision (function,
stamped arrival time, execution time and the full decision outcome) and
one line per scheduler hot-swap.  Lines are flushed as written, so a
session interrupted at any point still replays up to its last decision.

Replay (:func:`replay_recording`) rebuilds a fresh
:class:`~repro.serve.engine.ServeEngine` from the header and re-submits
the recorded arrivals with their recorded stamps.  Because the engine's
state transitions all happen in the simulator's virtual time, the replayed
decisions must match the served ones byte for byte; the first field that
differs is reported as a :class:`ServeDivergence`.  The ``serve_replay``
differential oracle runs exactly this check.

Limitations: recordings assume the default
:class:`~repro.containers.costmodel.StartupCostModel` and fault-free
dynamics (fault sampling draws RNG state the log does not carry);
:meth:`DecisionRecorder.write_header` rejects fault-enabled configs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "DecisionRecorder",
    "ReplayReport",
    "ServeDivergence",
    "read_recording",
    "replay_recording",
]

#: Recording format version (bumped on any incompatible line change).
RECORDING_VERSION = 1

#: Decision fields compared by replay, in reporting order.
_COMPARED_FIELDS = ("inv", "cold", "cid", "m", "lat", "q", "w")


class DecisionRecorder:
    """Append-only JSONL log of one serving session.

    With ``path=None`` the recording is kept in memory (tests, the replay
    oracle); with a path, lines are written and flushed immediately.  The
    header is written by the owning engine at construction time via
    :meth:`write_header`.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._fh: Optional[IO[str]] = (
            self.path.open("w", encoding="utf-8")
            if self.path is not None
            else None
        )
        self._memory: List[str] = []
        self.n_decisions = 0
        self.n_swaps = 0

    # -- writing -------------------------------------------------------------
    def write_header(self, engine) -> None:
        """Write the session header derived from ``engine``'s cluster config."""
        config = engine.sim.config
        if config.faults.enabled:
            raise ValueError(
                "serving recordings do not carry fault-model RNG state; "
                "disable faults for recorded sessions"
            )
        self._write({
            "version": RECORDING_VERSION,
            "kind": "serve",
            "scheduler": engine.scheduler_key,
            "pool_capacity_mb": config.pool_capacity_mb,
            "n_workers": config.n_workers,
            "worker_concurrency": config.worker_concurrency,
            "worker_capacity_mb": config.worker_capacity_mb,
            "per_worker_pools": config.per_worker_pools,
            "delta_pricing": config.delta_pricing,
            "keepalive_ttl_s": engine.keepalive_ttl_s,
        })

    def on_decision(self, record, exec_time_s: float) -> None:
        """Append one served decision (an ``InvocationRecord``) to the log."""
        self._write({
            "inv": record.invocation_id,
            "fn": record.function_name,
            "t": record.arrival_time,
            "exec": exec_time_s,
            "cold": record.cold_start,
            "cid": record.container_id,
            "m": int(record.match),
            "lat": record.startup_latency_s,
            "q": record.queue_delay_s,
            "w": record.worker_id,
        })
        self.n_decisions += 1

    def on_swap(self, key: str, t: float) -> None:
        """Append one scheduler hot-swap marker."""
        self._write({"swap": key, "t": t})
        self.n_swaps += 1

    def close(self) -> None:
        """Close the backing file, if any (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -------------------------------------------------------------
    def lines(self) -> List[str]:
        """The recorded JSONL lines (from memory or the backing file)."""
        if self.path is not None:
            return self.path.read_text(encoding="utf-8").splitlines()
        return list(self._memory)

    def _write(self, obj: Dict[str, object]) -> None:
        """Serialize and append one line, flushing write-through."""
        line = json.dumps(obj, separators=(",", ":"))
        if self._fh is not None:
            self._fh.write(line + "\n")
            self._fh.flush()
        else:
            self._memory.append(line)


@dataclass(frozen=True)
class ServeDivergence:
    """First field where a replayed decision differed from the recording."""

    index: int
    field: str
    recorded: object
    replayed: object

    def __str__(self) -> str:
        return (
            f"decision {self.index}: field {self.field!r} recorded "
            f"{self.recorded!r} but replayed {self.replayed!r}"
        )


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one recorded serving session."""

    n_decisions: int
    n_swaps: int
    divergence: Optional[ServeDivergence]

    @property
    def ok(self) -> bool:
        """Whether every replayed decision matched the recording."""
        return self.divergence is None


def read_recording(
    source: Union[str, Path, Iterable[str]],
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Parse a recording into ``(header, entries)``.

    ``source`` is a path or an iterable of JSONL lines (e.g.
    :meth:`DecisionRecorder.lines`).  Raises ``ValueError`` on an empty
    log or an unsupported header.
    """
    if isinstance(source, (str, Path)):
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = [line for line in source if line.strip()]
    if not lines:
        raise ValueError("empty serving recording")
    header = json.loads(lines[0])
    if header.get("kind") != "serve":
        raise ValueError(f"not a serving recording: {header!r}")
    if header.get("version") != RECORDING_VERSION:
        raise ValueError(
            f"unsupported recording version {header.get('version')!r}"
        )
    return header, [json.loads(line) for line in lines[1:]]


def replay_recording(
    source: Union[str, Path, Iterable[str]], verify: bool = False
) -> ReplayReport:
    """Re-drive a recorded session through a fresh engine and compare.

    Rebuilds the cluster and scheduler from the header, submits every
    recorded arrival with its recorded stamp and execution time, applies
    scheduler swaps at their recorded positions, and compares each decision
    field-by-field.  ``verify=True`` additionally runs the invariant
    monitors throughout the replay.  Stops at the first divergence.
    """
    from repro.cluster.simulator import SimulationConfig
    from repro.serve.engine import ServeEngine

    header, entries = read_recording(source)
    config = SimulationConfig(
        pool_capacity_mb=header["pool_capacity_mb"],
        n_workers=header["n_workers"],
        worker_concurrency=header["worker_concurrency"],
        worker_capacity_mb=header["worker_capacity_mb"],
        per_worker_pools=header["per_worker_pools"],
        delta_pricing=header["delta_pricing"],
        verify=verify,
    )
    engine = ServeEngine(
        config,
        scheduler=header["scheduler"],
        keepalive_ttl_s=header["keepalive_ttl_s"],
    )
    n_decisions = 0
    n_swaps = 0
    divergence: Optional[ServeDivergence] = None
    for entry in entries:
        if "swap" in entry:
            engine.swap_scheduler(entry["swap"])
            n_swaps += 1
            continue
        outcome = engine.submit(
            entry["fn"], exec_time_s=entry["exec"], now=entry["t"]
        )
        record = outcome.record
        replayed = {
            "inv": record.invocation_id,
            "cold": record.cold_start,
            "cid": record.container_id,
            "m": int(record.match),
            "lat": record.startup_latency_s,
            "q": record.queue_delay_s,
            "w": record.worker_id,
        }
        for field in _COMPARED_FIELDS:
            if replayed[field] != entry[field]:
                divergence = ServeDivergence(
                    index=n_decisions,
                    field=field,
                    recorded=entry[field],
                    replayed=replayed[field],
                )
                break
        n_decisions += 1
        if divergence is not None:
            break
    engine.drain()
    return ReplayReport(
        n_decisions=n_decisions, n_swaps=n_swaps, divergence=divergence
    )
