"""The asyncio HTTP serving plane (``repro serve``).

Wires the pieces together: a stdlib ``asyncio.start_server`` accept loop,
the :mod:`~repro.serve.router` HTTP plumbing, the
:class:`~repro.serve.admission.AdmissionController` bounding in-flight
requests, the :class:`~repro.serve.janitor.Janitor` driving keep-alive
sweeps, and the :class:`~repro.serve.engine.ServeEngine` making every
scheduling decision through the deterministic simulator core.

Endpoints (all JSON, ``Connection: close``):

* ``POST /invoke`` -- body ``{"function": <name|id>, "exec_s": <float?>}``;
  schedules the invocation, holds the connection for the simulated service
  time scaled by ``time_scale`` (0 = respond immediately), and returns the
  decision outcome.  429 when admission is full, 503 while draining.
* ``GET /stats`` -- the session's :class:`~repro.serve.stats.ServeStats`
  snapshot (counters, merged latency sketches, live cluster view).
* ``GET /healthz`` -- runs the live invariant monitors
  (:meth:`~repro.serve.engine.ServeEngine.health`); 500 with the first
  violation if any invariant is broken.
* ``POST /scheduler`` -- body ``{"scheduler": <key>}``; hot-swaps the
  decision policy.

Graceful shutdown (:meth:`ServePlane.stop`): stop accepting, let every
in-flight request finish, run a final janitor sweep, then drain the engine
so the simulator runs out its event queue and the recording closes.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional, Tuple

from repro.cluster.simulator import SimulationResult
from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.engine import ServeClosed, ServeEngine
from repro.serve.janitor import Janitor
from repro.serve.router import (
    HttpError,
    Request,
    Router,
    json_response,
    read_request,
)
from repro.serve.stats import ServeStats

__all__ = ["ServePlane"]


class ServePlane:
    """One HTTP serving session over a :class:`ServeEngine`.

    Parameters
    ----------
    engine:
        The scheduling engine (owns the simulator, scheduler and recorder).
    host / port:
        Bind address; port 0 (the default) picks a free port, exposed via
        :attr:`port` after :meth:`start`.
    time_scale:
        Wall seconds each request holds its connection per simulated
        service second.  0 responds immediately (pure decision latency);
        1 would hold requests in real time.
    janitor_interval_s:
        Wall interval between keep-alive sweeps.
    max_inflight:
        Admission bound on concurrently held request slots; defaults to
        ``n_workers * worker_concurrency`` when the cluster enforces a
        concurrency limit, otherwise unbounded.
    max_queue:
        Requests allowed to wait for an admission slot before new arrivals
        are rejected with 429.
    """

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        time_scale: float = 0.0,
        janitor_interval_s: float = 0.05,
        max_inflight: Optional[int] = None,
        max_queue: int = 1024,
    ) -> None:
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.engine = engine
        self.host = host
        self._requested_port = port
        self.time_scale = time_scale
        config = engine.sim.config
        if max_inflight is None and config.worker_concurrency is not None:
            max_inflight = config.n_workers * config.worker_concurrency
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_queue=max_queue
        )
        self.stats = ServeStats(n_workers=config.n_workers)
        self.janitor = Janitor(
            engine, stats=self.stats, interval_s=janitor_interval_s
        )
        self.router = Router()
        self.router.add("POST", "/invoke", self._invoke)
        self.router.add("GET", "/stats", self._get_stats)
        self.router.add("GET", "/healthz", self._healthz)
        self.router.add("POST", "/scheduler", self._swap_scheduler)
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._active_conns = 0
        self._conns_idle = asyncio.Event()
        self._conns_idle.set()
        self.result: Optional[SimulationResult] = None

    # -- lifecycle -----------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listening socket and start the janitor."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.janitor.start()

    async def stop(self) -> SimulationResult:
        """Gracefully shut down; returns the session's simulation result.

        Ordering: refuse new work (503), stop accepting connections, wait
        for every in-flight request and open connection to finish, stop the
        janitor (final sweep), then drain the engine.
        """
        if self._server is None:
            raise RuntimeError("server not started")
        self._draining = True
        self._server.close()
        # Python 3.12's wait_closed also waits for handler completion;
        # the explicit waits below make the ordering version-independent.
        await self._server.wait_closed()
        await self.admission.drained()
        await self._conns_idle.wait()
        await self.janitor.stop()
        self.result = self.engine.drain()
        return self.result

    # -- endpoint handlers ---------------------------------------------------
    async def _invoke(self, request: Request) -> Tuple[int, Dict[str, object]]:
        """``POST /invoke``: schedule one invocation and hold for service."""
        if self._draining:
            raise HttpError(503, "server is draining")
        payload = request.json()
        function = payload.get("function")
        if not isinstance(function, (str, int)):
            raise HttpError(400, "body must carry 'function' (name or id)")
        exec_s = payload.get("exec_s")
        if exec_s is not None and not isinstance(exec_s, (int, float)):
            raise HttpError(400, "'exec_s' must be a number")
        started = time.monotonic()
        try:
            async with self.admission.slot():
                try:
                    outcome = self.engine.submit(function, exec_time_s=exec_s)
                except KeyError as exc:
                    raise HttpError(404, str(exc)) from None
                except ValueError as exc:
                    raise HttpError(400, str(exc)) from None
                except ServeClosed as exc:
                    raise HttpError(503, str(exc)) from None
                self.stats.on_decision(outcome.record)
                hold_s = outcome.service_time_s * self.time_scale
                if hold_s > 0:
                    await asyncio.sleep(hold_s)
        except AdmissionRejected as exc:
            self.stats.on_reject()
            raise HttpError(429, str(exc)) from None
        self.stats.on_wall_latency(time.monotonic() - started)
        return 200, outcome.to_json()

    async def _get_stats(self, request: Request) -> Tuple[int, Dict[str, object]]:
        """``GET /stats``: the bounded session statistics snapshot."""
        payload = self.stats.snapshot(self.engine)
        payload["admission"] = {
            "inflight": self.admission.inflight,
            "peak_inflight": self.admission.peak_inflight,
            "max_inflight": self.admission.max_inflight,
            "accepted": self.admission.accepted,
            "rejected": self.admission.rejected,
        }
        return 200, payload

    async def _healthz(self, request: Request) -> Tuple[int, Dict[str, object]]:
        """``GET /healthz``: live invariant-monitor checkpoint."""
        report = self.engine.health()
        return (200 if report["healthy"] else 500), report

    async def _swap_scheduler(
        self, request: Request
    ) -> Tuple[int, Dict[str, object]]:
        """``POST /scheduler``: hot-swap the decision policy."""
        payload = request.json()
        key = payload.get("scheduler")
        if not isinstance(key, str):
            raise HttpError(400, "body must carry 'scheduler' (registry key)")
        try:
            previous = self.engine.swap_scheduler(key)
        except KeyError as exc:
            raise HttpError(400, str(exc)) from None
        return 200, {"scheduler": key, "previous": previous}

    # -- connection plumbing -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one request on one connection (``Connection: close``)."""
        self._active_conns += 1
        self._conns_idle.clear()
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                status, payload = await self.router.dispatch(request)
            except HttpError as exc:
                if exc.status >= 500 or exc.status == 404:
                    self.stats.on_error()
                status, payload = exc.status, {"error": exc.message}
            except Exception as exc:  # unexpected: surface as 500
                self.stats.on_error()
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            writer.write(json_response(status, payload))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._active_conns -= 1
            if self._active_conns == 0:
                self._conns_idle.set()
