"""Minimal stdlib HTTP/1.1 plumbing for the serving plane.

The container image carries no HTTP framework, so the serving plane
speaks just enough HTTP/1.1 over raw asyncio streams for its four JSON
endpoints: request-line + headers + ``Content-Length`` body in,
``Connection: close`` JSON responses out.  Deliberately not a general
server -- no chunked encoding, no keep-alive, no TLS -- which keeps the
parser a few dozen auditable lines.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple

__all__ = ["HttpError", "Request", "Router", "json_response", "read_request"]

#: Upper bound on header block and body sizes (64 KiB each) -- requests are
#: small JSON payloads; anything bigger is malformed or hostile.
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the HTTP status to return."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, object]:
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one HTTP/1.1 request from ``reader``.

    Returns ``None`` if the peer closed the connection before sending a
    request line; raises :class:`HttpError` on malformed or oversized
    input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise HttpError(400, f"unacceptable Content-Length: {length}")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return Request(method=method, path=path, headers=headers, body=body)


def json_response(status: int, payload: Dict[str, object]) -> bytes:
    """Serialize one ``Connection: close`` JSON response."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


#: An endpoint handler: request in, ``(status, payload)`` out.
Handler = Callable[[Request], Awaitable[Tuple[int, Dict[str, object]]]]


class Router:
    """Exact-match ``(method, path)`` dispatch table."""

    def __init__(self) -> None:
        self._routes: Dict[Tuple[str, str], Handler] = {}

    def add(self, method: str, path: str, handler: Handler) -> None:
        """Register ``handler`` for ``method path``."""
        self._routes[(method.upper(), path)] = handler

    async def dispatch(self, request: Request) -> Tuple[int, Dict[str, object]]:
        """Route one request; 404 on unknown path, 405 on wrong method."""
        handler = self._routes.get((request.method.upper(), request.path))
        if handler is not None:
            return await handler(request)
        if any(path == request.path for _, path in self._routes):
            raise HttpError(405, f"method {request.method} not allowed")
        raise HttpError(404, f"no such endpoint: {request.path}")
