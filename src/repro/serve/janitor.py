"""Keep-alive janitor: periodic pumping for scale-to-zero.

Offline, the simulator only runs TTL sweeps when an event pops -- between
arrivals nothing moves, which is exactly right for virtual time.  A live
server, however, must reclaim idle containers *during* quiet periods: the
:class:`Janitor` ticks on a wall-clock interval and calls
:meth:`~repro.serve.engine.ServeEngine.pump`, which applies every due
completion and runs a TTL sweep at the current wall reading.  When the
keep-alive TTL passes with no traffic, the last idle container is
destroyed and the warm pool scales to zero.

Pumping is decision-neutral (see :mod:`repro.serve.engine`): the tick
interval tunes *reclamation latency* only, never scheduling outcomes.
"""

from __future__ import annotations

import asyncio
from typing import Optional

__all__ = ["Janitor"]


class Janitor:
    """Periodic background task driving an engine's pump.

    Parameters
    ----------
    engine:
        The :class:`~repro.serve.engine.ServeEngine` to pump.
    stats:
        Optional :class:`~repro.serve.stats.ServeStats` receiving one
        ``on_tick`` per sweep (scale-to-zero detection).
    interval_s:
        Wall seconds between ticks.
    """

    def __init__(self, engine, stats=None, interval_s: float = 0.05) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.engine = engine
        self.stats = stats
        self.interval_s = interval_s
        self.events_pumped = 0
        self._task: Optional[asyncio.Task] = None

    def tick(self, now: Optional[float] = None) -> int:
        """Run one sweep synchronously; returns events processed.

        ``now`` overrides the engine's wall reading (tests drive virtual
        janitor time through this).
        """
        handled = self.engine.pump(now)
        self.events_pumped += handled
        if self.stats is not None:
            self.stats.on_tick(self.engine.live_containers)
        return handled

    def start(self) -> None:
        """Start the periodic task on the running event loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the periodic task and run one final sweep."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if not self.engine.closed:
            self.tick()

    async def _run(self) -> None:
        """The periodic loop body."""
        while True:
            await asyncio.sleep(self.interval_s)
            if self.engine.closed:
                return
            self.tick()
