"""Online serving plane over the deterministic simulator core.

``repro serve`` turns the discrete-event simulator into a live service: a
stdlib-asyncio HTTP server accepts invocation requests, stamps them with
wall-clock arrival times, and schedules each one against a real warm pool
through the same MLCR matching, scheduler ABC, lifecycle and placement
layers the offline experiments exercise.  Because every state transition
still runs in the simulator's virtual time (the wall clock only *stamps*
arrivals), a recorded session replays byte-identically offline -- the
``serve_replay`` differential oracle asserts exactly that.

Layout:

* :mod:`~repro.serve.engine` -- the wall-time/virtual-time bridge and
  scheduling entry point (also used headlessly by replay and benchmarks);
* :mod:`~repro.serve.server` -- the asyncio HTTP plane (endpoints,
  graceful shutdown);
* :mod:`~repro.serve.router` / :mod:`~repro.serve.client` -- minimal
  stdlib HTTP plumbing;
* :mod:`~repro.serve.admission` -- bounded in-flight admission (429s);
* :mod:`~repro.serve.janitor` -- periodic keep-alive sweeps
  (scale-to-zero);
* :mod:`~repro.serve.stats` -- O(1) session statistics with mergeable
  per-worker quantile sketches (``/stats``);
* :mod:`~repro.serve.recorder` -- JSONL session recording and
  deterministic replay.
"""

from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.client import http_json
from repro.serve.engine import ServeClosed, ServeEngine, ServeOutcome
from repro.serve.janitor import Janitor
from repro.serve.recorder import (
    DecisionRecorder,
    ReplayReport,
    ServeDivergence,
    read_recording,
    replay_recording,
)
from repro.serve.router import HttpError, Request, Router
from repro.serve.server import ServePlane
from repro.serve.stats import ServeStats

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "DecisionRecorder",
    "HttpError",
    "Janitor",
    "ReplayReport",
    "Request",
    "Router",
    "ServeClosed",
    "ServeDivergence",
    "ServeEngine",
    "ServeOutcome",
    "ServePlane",
    "ServeStats",
    "http_json",
    "replay_recording",
    "read_recording",
]
