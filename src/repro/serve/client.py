"""Tiny asyncio HTTP client for the serving plane's JSON endpoints.

Counterpart of :mod:`repro.serve.router`: one request per connection,
``Content-Length`` bodies, JSON in and out.  Used by the tests, the
online-adaptation example and the serve-latency benchmark so none of them
needs an HTTP library the container does not carry.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

__all__ = ["http_json"]


async def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, object]] = None,
    timeout_s: float = 30.0,
) -> Tuple[int, Dict[str, object]]:
    """Send one JSON request; returns ``(status, decoded_body)``.

    Opens a fresh connection (the server speaks ``Connection: close``),
    writes the request with an optional JSON body, and decodes the JSON
    response.  Raises ``asyncio.TimeoutError`` if the exchange exceeds
    ``timeout_s``.
    """

    async def _exchange() -> Tuple[int, Dict[str, object]]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = (
                json.dumps(payload, separators=(",", ":")).encode("utf-8")
                if payload is not None
                else b""
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        status_line = head_blob.split(b"\r\n", 1)[0].decode("latin-1")
        status = int(status_line.split(" ")[1])
        decoded = json.loads(body_blob) if body_blob else {}
        return status, decoded

    return await asyncio.wait_for(_exchange(), timeout=timeout_s)
