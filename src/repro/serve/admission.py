"""HTTP-plane admission control: bounded in-flight requests.

The simulator's :class:`~repro.cluster.placement.PlacementEngine` already
queues startups beyond each worker's ``worker_concurrency`` *inside* the
simulated cluster.  The :class:`AdmissionController` bounds the HTTP plane
itself: at most ``max_inflight`` requests may hold a slot concurrently
(naturally ``n_workers * worker_concurrency``, mirroring the cluster's
aggregate capacity), a small FIFO overflow of ``max_queue`` waiters may
wait for a slot, and anything beyond that is rejected immediately
(HTTP 429) instead of piling up unboundedly in the event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import AsyncIterator, Optional

__all__ = ["AdmissionController", "AdmissionRejected"]


class AdmissionRejected(RuntimeError):
    """The request was turned away: in-flight and overflow slots are full."""


class AdmissionController:
    """Counting semaphore with an immediate-reject overflow bound.

    Parameters
    ----------
    max_inflight:
        Maximum requests concurrently holding a slot; ``None`` disables
        admission control (every request is accepted immediately).
    max_queue:
        Requests allowed to *wait* for a slot when all are taken; beyond
        this, :meth:`acquire` raises :class:`AdmissionRejected` without
        yielding.  Default 0: full means reject.
    """

    def __init__(
        self, max_inflight: Optional[int] = None, max_queue: int = 0
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.peak_inflight = 0
        self.accepted = 0
        self.rejected = 0
        self._waiting = 0
        self._sem = (
            asyncio.Semaphore(max_inflight)
            if max_inflight is not None
            else None
        )
        self._idle = asyncio.Event()
        self._idle.set()

    async def acquire(self) -> None:
        """Take a slot, waiting in the bounded overflow queue if needed.

        Raises :class:`AdmissionRejected` *synchronously* (before any
        await) when both the slots and the overflow queue are full, so
        rejected requests cost one exception, not a queue entry.
        """
        if self._sem is None:
            self._admit()
            return
        if self.inflight >= self.max_inflight and self._waiting >= self.max_queue:
            self.rejected += 1
            raise AdmissionRejected(
                f"{self.inflight} in flight and {self._waiting} waiting; "
                "try again later"
            )
        self._waiting += 1
        try:
            await self._sem.acquire()
        finally:
            self._waiting -= 1
        self._admit()

    def release(self) -> None:
        """Return a slot; wakes one waiter (FIFO) if any."""
        self.inflight -= 1
        if self.inflight == 0:
            self._idle.set()
        if self._sem is not None:
            self._sem.release()

    @contextlib.asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """``async with`` wrapper pairing :meth:`acquire` and :meth:`release`."""
        await self.acquire()
        try:
            yield
        finally:
            self.release()

    async def drained(self) -> None:
        """Block until no request holds a slot (used by graceful shutdown)."""
        await self._idle.wait()

    def _admit(self) -> None:
        """Book one admitted request."""
        self.inflight += 1
        self.accepted += 1
        self._idle.clear()
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
