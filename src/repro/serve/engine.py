"""Online serving engine: wall-clock requests over the deterministic core.

The :class:`ServeEngine` is the bridge between real time and the simulator's
virtual time.  It owns a :class:`~repro.cluster.simulator.ClusterSimulator`
(whose event loop keeps its deterministic
:class:`~repro.cluster.eventloop.VirtualClock`) and a wall
:class:`~repro.cluster.eventloop.TimeSource` used for exactly one thing:
*stamping* arrival times.  Every state transition -- completions, TTL
sweeps, keep-alives -- still happens at exact event times inside the
simulator, in the same ``(time, priority, seq)`` order the offline modes
use.  That is the replayability contract: record the stamped arrivals (plus
execution times and scheduler swaps) and a fresh simulator re-driven from
the log makes byte-identical decisions, which the ``serve_replay``
differential oracle asserts.

Three properties make the contract hold:

* **Monotone stamping** -- :meth:`ServeEngine._stamp` clamps every wall
  reading to be no earlier than the last stamp *and* no earlier than the
  event loop's clock, so the arrival sequence is always a valid (sorted)
  stream even if the wall source misbehaves.
* **Atomic decisions** -- :meth:`ServeEngine.submit` runs
  offer -> next_decision_point -> decide -> apply_decision with no await
  points, so concurrent HTTP handlers on one asyncio loop serialize their
  arrivals exactly in stamping order.
* **Decision-neutral pumping** -- the janitor's :meth:`ServeEngine.pump`
  only processes *due* completions and runs TTL sweeps.  Both are monotone:
  a container expired at pump time is also expired at every later event pop
  (which sweeps before handling), so pumping between requests changes
  *when* state transitions are applied, never *what* the next decision
  sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.cluster.eventloop import TimeSource, WallClock
from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.cluster.telemetry import InvocationRecord
from repro.experiments.parallel import build_scheduler
from repro.schedulers.base import Scheduler
from repro.workloads.functions import (
    FunctionSpec,
    function_by_id,
    function_by_name,
)
from repro.workloads.workload import Invocation

__all__ = ["ServeClosed", "ServeEngine", "ServeOutcome"]


class ServeClosed(RuntimeError):
    """The engine has drained; no further requests are accepted."""


@dataclass(frozen=True)
class ServeOutcome:
    """The scheduling outcome of one served request.

    Wraps the simulator's :class:`~repro.cluster.telemetry.InvocationRecord`
    together with the execution time that was scheduled and the scheduler
    key that made the decision (the engine's scheduler can be hot-swapped
    between requests, so the key is captured per outcome).
    """

    record: InvocationRecord
    scheduler: str
    exec_time_s: float

    @property
    def service_time_s(self) -> float:
        """Startup latency plus execution time (the request's service time)."""
        return self.record.startup_latency_s + self.exec_time_s

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable response payload for the HTTP plane."""
        r = self.record
        return {
            "invocation_id": r.invocation_id,
            "function": r.function_name,
            "arrival_t": r.arrival_time,
            "cold_start": r.cold_start,
            "match": r.match.name,
            "container_id": r.container_id,
            "worker_id": r.worker_id,
            "startup_latency_s": r.startup_latency_s,
            "queue_delay_s": r.queue_delay_s,
            "exec_time_s": self.exec_time_s,
            "service_time_s": self.service_time_s,
            "scheduler": self.scheduler,
        }


class ServeEngine:
    """Schedules online requests through the deterministic simulator core.

    Parameters
    ----------
    config:
        Cluster configuration, exactly as for offline simulation.  Use
        ``bounded_telemetry=True`` for long-running servers (O(1) metric
        state) and ``verify=True`` to run the invariant monitors live
        (surfaced through :meth:`health` / the ``/healthz`` endpoint).
    scheduler:
        Registry key into
        :data:`repro.experiments.parallel.SCHEDULER_FACTORIES` (keys are a
        stable wire format, so recordings can rebuild the scheduler), or a
        ready :class:`~repro.schedulers.base.Scheduler` instance -- the
        path that puts a trained MLCR policy (optionally serving from a
        distilled surrogate) behind ``/invoke``.  Instances cannot be
        combined with a recorder: replay rebuilds schedulers from registry
        keys, which an ad-hoc instance does not have.
    wall:
        The wall :class:`~repro.cluster.eventloop.TimeSource` used to stamp
        arrivals; defaults to a fresh
        :class:`~repro.cluster.eventloop.WallClock` (server start = t0).
        Tests and the replay oracle inject scripted clocks here.
    keepalive_ttl_s:
        Scale-to-zero keep-alive TTL: overrides the eviction policy's
        ``ttl_s`` so idle warm containers are destroyed (by the janitor's
        sweeps) once idle longer than this.  ``None`` keeps the policy's
        own TTL (which for plain LRU means no expiry, i.e. no
        scale-to-zero).
    recorder:
        Optional :class:`~repro.serve.recorder.DecisionRecorder`; every
        decision and scheduler swap is appended to it so the session can be
        replayed and verified offline.
    """

    def __init__(
        self,
        config: SimulationConfig,
        scheduler: Union[str, "Scheduler"] = "lru",
        *,
        wall: Optional[TimeSource] = None,
        keepalive_ttl_s: Optional[float] = None,
        recorder=None,
    ) -> None:
        if isinstance(scheduler, str):
            self.scheduler_key = scheduler
            self.scheduler = build_scheduler(scheduler)
        else:
            if recorder is not None:
                raise ValueError(
                    "a scheduler instance cannot be recorded: replay "
                    "rebuilds schedulers from registry keys; pass a key "
                    "or drop the recorder"
                )
            self.scheduler = scheduler
            self.scheduler_key = getattr(scheduler, "name", "custom")
        eviction = (
            self.scheduler.make_eviction_policy()
            if hasattr(self.scheduler, "make_eviction_policy")
            else None
        )
        self.sim = ClusterSimulator(config, eviction)
        if keepalive_ttl_s is not None:
            if keepalive_ttl_s <= 0:
                raise ValueError("keepalive_ttl_s must be positive")
            # Instance attribute shadows the policy class's ttl_s.
            self.sim.eviction.ttl_s = keepalive_ttl_s
        self.keepalive_ttl_s = self.sim.eviction.ttl_s
        self.wall: TimeSource = wall if wall is not None else WallClock()
        self.recorder = recorder
        self.submitted = 0
        self.swaps = 0
        self._next_invocation_id = 0
        self._last_t = 0.0
        self._closed = False
        self.sim._workload_name = "serve"
        if recorder is not None:
            recorder.write_header(self)

    # -- request path --------------------------------------------------------
    def submit(
        self,
        function: Union[str, int, FunctionSpec],
        exec_time_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> ServeOutcome:
        """Stamp, schedule and apply one request; returns its outcome.

        ``function`` is a Table-II function name, FuncID or spec;
        ``exec_time_s`` defaults to the spec's mean execution time (a
        deterministic default, so the recorded log fully determines the
        replay).  ``now`` overrides the wall reading for tests and replay;
        either way the stamp is clamped monotone.  The whole call is
        synchronous and never yields, which is what serializes concurrent
        asyncio handlers into a valid arrival stream.
        """
        if self._closed:
            raise ServeClosed("engine drained; no further requests accepted")
        spec = self._resolve(function)
        t = self._stamp(self.wall.now if now is None else now)
        exec_s = (
            float(exec_time_s) if exec_time_s is not None
            else spec.exec_time_mean_s
        )
        invocation = Invocation(
            invocation_id=self._next_invocation_id,
            spec=spec,
            arrival_time=t,
            execution_time_s=exec_s,
        )
        self._next_invocation_id += 1
        self.sim.offer(invocation)
        ctx = self.sim.next_decision_point()
        decision = self.scheduler.decide(ctx)
        record = self.sim.apply_decision(decision)
        self.submitted += 1
        if self.recorder is not None:
            self.recorder.on_decision(record, exec_s)
        return ServeOutcome(
            record=record, scheduler=self.scheduler_key, exec_time_s=exec_s
        )

    def pump(self, now: Optional[float] = None) -> int:
        """Process due completions and TTL-sweep up to the wall reading.

        The janitor's tick: applies every completion whose scheduled time
        has passed and expires idle containers, which is what makes
        scale-to-zero happen during quiet periods.  Returns the number of
        events processed; a no-op on a drained engine.
        """
        if self._closed:
            return 0
        t = self._stamp(self.wall.now if now is None else now)
        return self.sim.pump_until(t)

    def swap_scheduler(self, key: str) -> str:
        """Hot-swap the decision policy; returns the previous key.

        The eviction policy (and the warm pool it manages) is part of the
        cluster, not the scheduler, so it is intentionally *not* swapped --
        only the cold/warm decision logic changes.  The swap is recorded so
        replay switches policies at the same point in the request sequence.
        """
        scheduler = build_scheduler(key)  # raises KeyError on unknown keys
        old = self.scheduler_key
        self.scheduler = scheduler
        self.scheduler_key = key
        self.swaps += 1
        if self.recorder is not None:
            self.recorder.on_swap(key, self._last_t)
        return old

    def drain(self) -> SimulationResult:
        """Finish the session: run out all in-flight events and close.

        After drain the engine rejects further submits (:class:`ServeClosed`)
        and the recorder (if any) is closed.  Returns the simulator's
        :class:`~repro.cluster.simulator.SimulationResult`, whose telemetry
        summary covers the whole serving session.
        """
        if self._closed:
            raise ServeClosed("engine already drained")
        self._closed = True
        self.sim._fold_scheduler_counters(self.scheduler)
        result = self.sim.finish(scheduler_name=self.scheduler_key)
        if self.recorder is not None:
            self.recorder.close()
        return result

    # -- introspection -------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`drain` has run."""
        return self._closed

    @property
    def sim_inflight(self) -> int:
        """Requests still starting or executing inside the simulator.

        Every submitted request holds exactly one outstanding event
        (``STARTUP_COMPLETE`` then ``EXECUTION_COMPLETE``) until it
        finishes, so the event-queue length is the in-flight count.
        """
        return len(self.sim.loop)

    @property
    def live_containers(self) -> int:
        """Containers currently alive (pooled, starting or executing)."""
        return (
            self.sim.lifecycle.created_count
            - self.sim.lifecycle.destroyed_count
        )

    @property
    def pooled_containers(self) -> int:
        """Idle containers currently sitting in the warm pool."""
        return len(self.sim.pool)

    def health(self) -> Dict[str, object]:
        """Run the live invariant monitors and report engine health.

        With ``SimulationConfig(verify=True)`` this executes a full
        monitor checkpoint on demand (the same six invariants the offline
        harness asserts per event) and reports the first violation, if
        any.  Without verification it reports healthy with
        ``verified=False``.
        """
        report: Dict[str, object] = {
            "healthy": True,
            "verified": self.sim.verifier is not None,
            "draining": self._closed,
            "submitted": self.submitted,
            "inflight": self.sim_inflight,
            "live_containers": self.live_containers,
            "pooled_containers": self.pooled_containers,
        }
        if getattr(self.scheduler, "surrogate", None) is not None:
            report["surrogate"] = {
                "fallbacks": self.scheduler.surrogate_fallbacks,
                "audits": self.scheduler.surrogate_audits,
                "disagreements": self.scheduler.surrogate_disagreements,
            }
        if self.sim.verifier is not None:
            report.update(self.sim.verifier.health_report())
        return report

    # -- internals -----------------------------------------------------------
    def _resolve(self, function: Union[str, int, FunctionSpec]) -> FunctionSpec:
        """Resolve a request's function reference to a spec."""
        if isinstance(function, FunctionSpec):
            return function
        if isinstance(function, int):
            return function_by_id(function)
        return function_by_name(function)

    def _stamp(self, t: float) -> float:
        """Clamp a wall reading into a valid (monotone, non-past) stamp."""
        if t < self._last_t:
            t = self._last_t
        if t < self.sim.loop.now:
            t = self.sim.loop.now
        self._last_t = t
        return t
