"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``
    List the FStartBench workload sets with their metrics.
``simulate``
    Run one scheduler over one workload at a chosen pool level.
``train``
    Train an MLCR policy and save it to a ``.npz`` file.
``train-offline``
    Fit the off-policy tabular Q-agent from recorded decision traces
    (golden-trace or serve-recording JSONL) and save it to ``.npz``.
``distill``
    Distill a trained MLCR policy into a µs-scale decision-tree surrogate
    and save it next to the network checkpoint.
``experiment``
    Run a paper experiment by id (fig1, fig2, fig3, tab2, fig8, fig9,
    fig10, fig11a/b/c, overhead, ablations, stream) and print its report.
``trace``
    Golden-trace tooling: ``record`` a decision trace for one
    (workload, scheduler, seed, pool) cell, ``replay`` a trace file and
    fail on any divergence, or ``diff`` two trace files.
``serve``
    Run the online asyncio serving plane: accept invocation requests over
    HTTP, schedule them against a live warm pool through the simulator
    core, and (optionally) record the session for deterministic replay.
``serve-replay``
    Replay a recorded serving session through a fresh simulator and fail
    on the first diverging decision.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import ascii_table
from repro.cluster.simulator import SimulationConfig
from repro.experiments.common import (
    ExperimentScale,
    make_training_factory,
    pool_sizes,
)
from repro.experiments.parallel import (
    GRID_KEYS,
    SCHEDULER_FACTORIES,
    GridTask,
    run_grid,
)
from repro.workloads.fstartbench import WORKLOAD_BUILDERS, build_workload

_SCHEDULERS = SCHEDULER_FACTORIES

_EXPERIMENTS = (
    "fig1", "fig2", "fig3", "tab2", "fig8", "fig9", "fig10",
    "fig11a", "fig11b", "fig11c", "overhead", "ablations", "stream",
)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_workloads(args: argparse.Namespace) -> int:
    """``repro workloads``: list or characterize workload sets."""
    if args.detail:
        from repro.analysis.workload_report import full_report

        print(full_report(build_workload(args.detail, seed=args.seed)))
        return 0
    rows = []
    for name in WORKLOAD_BUILDERS:
        wl = build_workload(name, seed=args.seed)
        rows.append([
            name,
            str(len(wl)),
            f"{wl.duration_s:.0f}",
            str(len(wl.function_specs())),
            f"{wl.metadata.get('similarity', float('nan')):.2f}",
            f"{wl.metadata.get('size_variance', float('nan')):.0f}",
        ])
    print(ascii_table(
        ["workload", "invocations", "duration s", "functions",
         "similarity", "size var"],
        rows,
        title=f"FStartBench workloads (seed {args.seed})",
    ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """``repro simulate``: run scheduler(s) over a workload.

    With ``--jobs N`` the scheduler runs fan out over worker processes via
    :func:`repro.experiments.parallel.run_grid`; the printed table is
    byte-identical to the serial run.  Cells (and the pool-sizing
    reference run) are served from the content-addressed
    ``.repro_cache/`` unless ``--no-cache`` (or ``REPRO_CACHE=off``) is
    given; ``--profile`` prints the top cumulative-time entries of the
    run.  ``--stream`` feeds arrivals through the O(1)-memory streaming
    pipeline (``run_stream``) instead of batch ``run``; the printed table
    is identical either way.  ``--lanes L`` batches supported schedulers
    onto the lane kernel, L cells per process step (byte-identical
    results); combined with ``--profile`` the profile attributes time
    inside the kernel itself, not just the per-cell driver.
    """
    from repro.experiments.cache import ExperimentCache, pool_sizes_cached

    cache = ExperimentCache(enabled=False if args.no_cache else None)
    capacity = pool_sizes_cached(
        args.workload, args.seed, cache
    )[args.pool.capitalize()]
    keys = list(GRID_KEYS) if args.scheduler == "all" else [args.scheduler]
    tasks = [
        GridTask(scheduler=key, workload=args.workload, seed=args.seed,
                 pool_label=args.pool.capitalize(), capacity_mb=capacity,
                 stream=args.stream)
        for key in keys
    ]
    if args.profile:
        from repro.profiling import profile_call

        cells = profile_call(
            lambda: run_grid(tasks, jobs=args.jobs, cache=cache,
                             lanes=args.lanes)
        )
    else:
        cells = run_grid(tasks, jobs=args.jobs, cache=cache,
                         lanes=args.lanes)
    rows = []
    for cell in cells:
        s = cell.summary
        rows.append([
            cell.method,
            f"{s['total_startup_s']:.1f}",
            f"{s['mean_startup_s'] * 1e3:.0f}",
            str(int(s["cold_starts"])),
            str(int(s["evictions"])),
            f"{s['peak_warm_memory_mb']:.0f}",
        ])
    print(ascii_table(
        ["policy", "total [s]", "mean [ms]", "cold", "evictions",
         "peak warm MB"],
        rows,
        title=(f"{args.workload} (seed {args.seed}), {args.pool} pool "
               f"= {capacity:.0f} MB"),
    ))
    # Proactive-policy accounting blocks (only for cells that have them).
    for cell in cells:
        s = cell.summary
        if s.get("prewarms_issued"):
            hit = s["prewarm_reuses"] / s["prewarms_issued"]
            print(f"{cell.method}: pre-warms "
                  f"{int(s['prewarms_issued'])} issued, "
                  f"{int(s['prewarm_reuses'])} reused, "
                  f"{int(s['prewarm_wasted'])} wasted "
                  f"(hit rate {hit:.1%})")
        if s.get("lends_issued"):
            hit = s["lend_reuses"] / s["lends_issued"]
            print(f"{cell.method}: lends {int(s['lends_issued'])} issued, "
                  f"{int(s['lend_reuses'])} reused by target "
                  f"(hit rate {hit:.1%})")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: train an MLCR policy and save it."""
    from repro.core.mlcr import train_mlcr_scheduler
    from repro.core.persistence import save_scheduler

    scale = ExperimentScale.from_env()
    builder = WORKLOAD_BUILDERS[args.workload]
    capacity = pool_sizes(builder(seed=0))[args.pool.capitalize()]
    config = scale.mlcr_config(seed=args.seed)
    if args.episodes:
        from dataclasses import replace

        config = replace(config, n_episodes=args.episodes)
    print(f"training on {args.workload}@{args.pool} ({capacity:.0f} MB), "
          f"{config.n_episodes} episodes...")
    scheduler, history = train_mlcr_scheduler(
        workload_factory=make_training_factory(lambda s: builder(seed=s),
                                               scale),
        sim_config=SimulationConfig(pool_capacity_mb=capacity),
        config=config,
        verbose=args.verbose,
    )
    path = save_scheduler(scheduler, config, args.output)
    print(f"best validation latency: {history.best_eval_latency:.1f}s")
    print(f"saved policy to {path}")
    return 0


def cmd_train_offline(args: argparse.Namespace) -> int:
    """``repro train-offline``: fit the tabular Q-agent from trace JSONL.

    The sources are decision traces in either recorded dialect: golden
    traces (``repro trace record`` / ``tests/golden_traces``) or serving
    recordings (``repro serve --record``).  Fitting is order-independent
    over the shards -- see :func:`repro.drl.offline.fit_from_traces`.
    """
    from repro.drl.offline import fit_from_traces

    policy = fit_from_traces(
        args.traces, gamma=args.gamma, iterations=args.iterations
    )
    if not policy.n_transitions:
        print("no decision lines found in the given traces", file=sys.stderr)
        return 1
    path = policy.save(args.output)
    print(f"fitted {len(policy.states)} states / "
          f"{policy.n_transitions} transitions "
          f"(gamma={policy.gamma}, {policy.iterations} sweeps)")
    print(f"saved policy to {path}")
    if args.evaluate:
        from repro.experiments.cache import pool_sizes_cached
        from repro.experiments.common import evaluate_scheduler
        from repro.schedulers.offline import OfflineQScheduler

        workload = build_workload(args.evaluate, seed=args.seed)
        capacity = pool_sizes_cached(
            args.evaluate, args.seed, None
        )[args.pool.capitalize()]
        outcome = evaluate_scheduler(
            OfflineQScheduler(policy), workload, capacity,
            pool_label=args.pool.capitalize(),
        )
        print(f"evaluation on {args.evaluate}@{args.pool}: "
              f"total startup {outcome.total_startup_s:.1f}s, "
              f"{outcome.cold_starts} cold starts")
    return 0


def cmd_distill(args: argparse.Namespace) -> int:
    """``repro distill``: compress a trained policy into a tree surrogate.

    Loads the ``.npz`` checkpoint, replays ``--seeds`` draws of the
    workload through the network to collect its greedy decisions, fits
    the CART surrogate and saves it.  The printed report shows dataset
    size, tree size and in-sample agreement -- the quantity the
    ``surrogate_vs_network`` oracle bounds at 99 %.
    """
    from repro.core.persistence import load_scheduler
    from repro.drl.distill import (
        DistillConfig,
        distill_scheduler,
        save_surrogate,
    )

    scheduler = load_scheduler(args.policy)
    builder = WORKLOAD_BUILDERS[args.workload]
    capacity = pool_sizes(builder(seed=0))[args.pool.capitalize()]
    workloads = [builder(seed=s) for s in range(args.seeds)]
    print(f"distilling {args.policy} over {args.seeds} draws of "
          f"{args.workload}@{args.pool} ({capacity:.0f} MB)...")
    surrogate, report = distill_scheduler(
        scheduler, workloads, capacity,
        config=DistillConfig(max_depth=args.max_depth),
    )
    save_surrogate(surrogate, args.output)
    print(f"{report.n_states} states -> {report.n_nodes} tree nodes, "
          f"in-sample agreement {report.agreement:.1%}")
    print(f"saved surrogate to {args.output}")
    return 0 if report.agreement >= 0.99 else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro experiment``: run one paper experiment."""
    from repro.experiments import (
        ablations,
        ext_stream_replay,
        fig1_breakdown,
        fig2_motivation,
        fig3_dockerhub,
        fig8_overall,
        fig9_trajectory,
        fig10_memory,
        fig11_benchmarks,
        overhead,
        tab2_functions,
    )

    simple = {
        "fig1": fig1_breakdown,
        "fig2": fig2_motivation,
        "fig3": fig3_dockerhub,
        "tab2": tab2_functions,
    }
    scaled = {
        "fig8": fig8_overall,
        "fig9": fig9_trajectory,
        "fig10": fig10_memory,
        "overhead": overhead,
        "ablations": ablations,
        "stream": ext_stream_replay,
    }
    if args.id in simple:
        module = simple[args.id]
        print(module.report(module.run()))
    elif args.id == "stream":
        # The streaming family takes the lane count: cells replaying the
        # same stream share one chunked lane pass under --lanes.
        print(ext_stream_replay.report(ext_stream_replay.run(
            ExperimentScale.from_env(), lanes=getattr(args, "lanes", 1)
        )))
    elif args.id in scaled:
        module = scaled[args.id]
        print(module.report(module.run(ExperimentScale.from_env())))
    elif args.id.startswith("fig11"):
        sub = {"fig11a": "a:similarity", "fig11b": "b:variance",
               "fig11c": "c:arrival"}[args.id]
        print(fig11_benchmarks.report(
            fig11_benchmarks.run_subfigure(sub, ExperimentScale.from_env())
        ))
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"unknown experiment {args.id}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: record / replay / diff simulator decision traces."""
    from repro.verify.trace import (
        TraceSpec,
        diff_traces,
        read_trace,
        record_trace,
        replay_trace,
        write_trace,
    )

    if args.action == "record":
        trace = record_trace(TraceSpec(
            workload=args.workload,
            scheduler=args.scheduler,
            seed=args.seed,
            pool=args.pool.capitalize(),
            verify=args.verify,
        ))
        path = write_trace(trace, args.output)
        print(f"recorded {trace.header.n_events} events to {path}")
        return 0
    if args.action == "replay":
        expected = read_trace(args.trace)
        actual = replay_trace(expected, verify=args.verify)
        divergence = diff_traces(expected, actual)
        if divergence is not None:
            print(divergence)
            return 1
        print(f"{args.trace}: replayed {expected.header.n_events} events, "
              "bit-identical")
        return 0
    # diff
    divergence = diff_traces(read_trace(args.expected),
                             read_trace(args.actual))
    if divergence is not None:
        print(divergence)
        return 1
    print("traces identical")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the online HTTP serving plane until Ctrl-C."""
    import asyncio

    from repro.serve.engine import ServeEngine
    from repro.serve.recorder import DecisionRecorder
    from repro.serve.server import ServePlane

    config = SimulationConfig(
        pool_capacity_mb=args.pool_mb,
        n_workers=args.workers,
        worker_concurrency=args.concurrency,
        bounded_telemetry=True,
        verify=not args.no_verify,
    )
    recorder = DecisionRecorder(args.record) if args.record else None
    scheduler = args.scheduler
    if args.policy:
        from repro.core.persistence import load_scheduler

        if args.record:
            print("--policy cannot be combined with --record: replay "
                  "rebuilds schedulers from registry keys", file=sys.stderr)
            return 2
        scheduler = load_scheduler(args.policy)
        if args.surrogate:
            from repro.drl.distill import load_surrogate

            scheduler.attach_surrogate(load_surrogate(args.surrogate),
                                       audit_every=args.audit_every)
    elif args.surrogate:
        print("--surrogate requires --policy", file=sys.stderr)
        return 2
    engine = ServeEngine(
        config,
        scheduler=scheduler,
        keepalive_ttl_s=args.keepalive,
        recorder=recorder,
    )
    plane = ServePlane(
        engine,
        host=args.host,
        port=args.port,
        time_scale=args.time_scale,
        janitor_interval_s=args.janitor_interval,
    )

    async def _run() -> None:
        await plane.start()
        print(f"serving on http://{args.host}:{plane.port} "
              f"(scheduler={engine.scheduler_key}, workers={args.workers}, "
              f"pool={args.pool_mb:.0f} MB)")
        print("endpoints: POST /invoke  GET /stats  GET /healthz  "
              "POST /scheduler")
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            result = await plane.stop()
            summary = result.summary()
            print(f"\ndrained: {summary['invocations']:.0f} invocations, "
                  f"{summary['cold_starts']:.0f} cold starts")
            if args.record:
                print(f"recording written to {args.record}")

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_serve_replay(args: argparse.Namespace) -> int:
    """``repro serve-replay``: verify a recorded serving session."""
    from repro.serve.recorder import replay_recording

    report = replay_recording(args.recording, verify=args.verify)
    if not report.ok:
        print(report.divergence)
        return 1
    print(f"{args.recording}: replayed {report.n_decisions} decisions "
          f"({report.n_swaps} scheduler swaps), byte-identical")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLCR reproduction: simulator, FStartBench, experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list FStartBench workload sets")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--detail", default=None,
                   choices=sorted(WORKLOAD_BUILDERS),
                   help="print the full characterization of one workload")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("simulate", help="run a scheduler over a workload")
    p.add_argument("--workload", default="Overall",
                   choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--scheduler", default="all",
                   choices=["all", *sorted(_SCHEDULERS)])
    p.add_argument("--pool", default="tight",
                   choices=["tight", "moderate", "loose"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the scheduler runs")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed experiment cache")
    p.add_argument("--stream", action="store_true",
                   help="feed arrivals through the O(1)-memory streaming "
                        "pipeline (identical results to batch mode)")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top-25 "
                        "cumulative-time entries")
    p.add_argument("--lanes", type=int, default=1,
                   help="simulation lanes per process: batch supported "
                        "schedulers onto the lane kernel (byte-identical "
                        "results, several times faster)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("train", help="train and save an MLCR policy")
    p.add_argument("--workload", default="Overall",
                   choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--pool", default="tight",
                   choices=["tight", "moderate", "loose"])
    p.add_argument("--episodes", type=int, default=0,
                   help="override training episodes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="mlcr_policy.npz")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("train-offline",
                       help="fit the off-policy Q-agent from trace JSONL")
    p.add_argument("traces", nargs="+",
                   help="decision-trace JSONL files (golden traces or "
                        "serve recordings)")
    p.add_argument("--gamma", type=float, default=0.95,
                   help="discount factor")
    p.add_argument("--iterations", type=int, default=50,
                   help="value-iteration sweeps")
    p.add_argument("--output", default="offline_q_policy.npz")
    p.add_argument("--evaluate", default=None,
                   choices=sorted(WORKLOAD_BUILDERS),
                   help="additionally evaluate the fitted policy on a "
                        "workload")
    p.add_argument("--pool", default="tight",
                   choices=["tight", "moderate", "loose"])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_train_offline)

    p = sub.add_parser("distill",
                       help="distill a trained policy into a tree surrogate")
    p.add_argument("--policy", default="mlcr_policy.npz",
                   help="trained checkpoint from `repro train`")
    p.add_argument("--workload", default="Overall",
                   choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--pool", default="tight",
                   choices=["tight", "moderate", "loose"])
    p.add_argument("--seeds", type=int, default=3,
                   help="workload draws to collect decisions over")
    p.add_argument("--max-depth", type=int, default=12,
                   help="decision-tree depth bound")
    p.add_argument("--output", default="mlcr_surrogate.npz")
    p.set_defaults(func=cmd_distill)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("id", choices=_EXPERIMENTS)
    p.add_argument("--lanes", type=int, default=1,
                   help="simulation lanes for the stream family: replay "
                        "cells sharing a stream through one chunked lane "
                        "pass (byte-identical results; ignored by other "
                        "experiments)")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("trace",
                       help="record / replay / diff decision traces")
    trace_sub = p.add_subparsers(dest="action", required=True)

    t = trace_sub.add_parser("record", help="record one cell's trace")
    t.add_argument("--workload", default="LO-Sim",
                   choices=sorted(WORKLOAD_BUILDERS))
    t.add_argument("--scheduler", default="lru",
                   choices=sorted(_SCHEDULERS))
    t.add_argument("--pool", default="tight",
                   choices=["tight", "moderate", "loose"])
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--output", default="trace.jsonl")
    t.add_argument("--verify", action="store_true",
                   help="attach the invariant monitors while recording")
    t.set_defaults(func=cmd_trace)

    t = trace_sub.add_parser(
        "replay", help="re-run a trace's cell and fail on divergence")
    t.add_argument("trace", help="trace file to replay")
    t.add_argument("--verify", action="store_true",
                   help="attach the invariant monitors while replaying")
    t.set_defaults(func=cmd_trace)

    t = trace_sub.add_parser("diff", help="diff two trace files")
    t.add_argument("expected")
    t.add_argument("actual")
    t.set_defaults(func=cmd_trace)

    p = sub.add_parser("serve", help="run the online HTTP serving plane")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--scheduler", default="lru",
                   choices=sorted(_SCHEDULERS))
    p.add_argument("--pool-mb", type=float, default=4096.0,
                   help="warm-pool memory capacity")
    p.add_argument("--workers", type=int, default=4,
                   help="simulated worker nodes")
    p.add_argument("--concurrency", type=int, default=8,
                   help="containers concurrently starting/executing per "
                        "worker (admission bound = workers * concurrency)")
    p.add_argument("--keepalive", type=float, default=None,
                   help="scale-to-zero keep-alive TTL in seconds "
                        "(default: the eviction policy's own TTL)")
    p.add_argument("--time-scale", type=float, default=0.0,
                   help="wall seconds each request holds per simulated "
                        "service second (0 = respond immediately)")
    p.add_argument("--janitor-interval", type=float, default=0.05,
                   help="wall seconds between keep-alive sweeps")
    p.add_argument("--record", default=None,
                   help="JSONL path recording every decision for "
                        "deterministic replay")
    p.add_argument("--no-verify", action="store_true",
                   help="disable the live invariant monitors")
    p.add_argument("--policy", default=None,
                   help="serve a trained MLCR checkpoint (.npz from "
                        "`repro train`) instead of a registry scheduler")
    p.add_argument("--surrogate", default=None,
                   help="serve decisions from a distilled surrogate (.npz "
                        "from `repro distill`); requires --policy")
    p.add_argument("--audit-every", type=int, default=64,
                   help="audit every Nth surrogate decision against the "
                        "network (0 disables auditing)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("serve-replay",
                       help="verify a recorded serving session")
    p.add_argument("recording", help="JSONL recording from repro serve")
    p.add_argument("--verify", action="store_true",
                   help="attach the invariant monitors while replaying")
    p.set_defaults(func=cmd_serve_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
