"""Eviction (keep-alive) policies for the warm pool.

Three policies from the paper's comparison set:

* :class:`LRUEviction` -- evict least-recently-used idle containers until the
  newcomer fits (used by LRU, Greedy-Match and MLCR).
* :class:`FaasCacheEviction` -- FaasCache's greedy-dual priority
  (``clock + frequency * cost / size``); evicts the minimum-priority
  container and advances the clock (Fuerst & Sharma, ASPLOS'21).
* :class:`RejectNewcomerEviction` -- the KeepAlive baseline: a 10-minute TTL
  and, when the pool is full, simply reject the keep-warm request of a newly
  finished container.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.cluster.pool import WarmPool
from repro.containers.container import Container


class EvictionPolicy(abc.ABC):
    """Decides which warm containers to evict to admit a newcomer.

    Attributes
    ----------
    ttl_s:
        Optional keep-alive time-to-live.  When set, the simulator expires
        pooled containers idle longer than this.
    """

    ttl_s: Optional[float] = None

    @abc.abstractmethod
    def select_victims(
        self, pool: WarmPool, incoming: Container, now: float
    ) -> Optional[List[Container]]:
        """Containers to evict so ``incoming`` fits, or ``None`` to reject it.

        Returning ``[]`` admits the newcomer without evictions.  The policy
        must return victims whose freed memory actually makes room; the
        simulator validates this.
        """

    def on_function_start(
        self,
        function_name: str,
        startup_cost_s: float,
        memory_mb: float,
        now: float,
    ) -> None:
        """Hook: observe a function start (used by FaasCache's statistics)."""

    def reset(self) -> None:
        """Clear any accumulated state between runs."""


def _never_fits(pool: WarmPool, incoming: Container) -> bool:
    """True when the container cannot fit even in an empty pool."""
    return incoming.memory_mb > pool.capacity_mb


class LRUEviction(EvictionPolicy):
    """Evict least-recently-used idle containers until the newcomer fits."""

    def select_victims(
        self, pool: WarmPool, incoming: Container, now: float
    ) -> Optional[List[Container]]:
        """Containers to evict so the newcomer fits, or None to reject it."""
        if _never_fits(pool, incoming):
            return None
        victims: List[Container] = []
        freed = 0.0
        needed = incoming.memory_mb - pool.free_mb
        if needed <= 0:
            return []
        for container in pool.lru_order():
            victims.append(container)
            freed += container.memory_mb
            if freed >= needed:
                return victims
        return None  # unreachable for consistent pools; defensive


class RejectNewcomerEviction(EvictionPolicy):
    """KeepAlive: 10-minute TTL; reject keep-warm requests when full."""

    def __init__(self, ttl_s: float = 600.0) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.ttl_s = ttl_s

    def select_victims(
        self, pool: WarmPool, incoming: Container, now: float
    ) -> Optional[List[Container]]:
        """Containers to evict so the newcomer fits, or None to reject it."""
        if incoming.memory_mb <= pool.free_mb:
            return []
        return None


class FaasCacheEviction(EvictionPolicy):
    """Greedy-dual keep-alive priority from FaasCache.

    Each warm container gets ``priority = clock + freq * cost / size`` where
    ``freq`` is the invocation count of its function, ``cost`` the observed
    startup latency and ``size`` the container memory.  Eviction removes the
    lowest-priority container and sets the clock to its priority, aging the
    rest of the cache.
    """

    def __init__(self) -> None:
        self._clock = 0.0
        self._freq: Dict[str, int] = {}
        self._cost: Dict[str, float] = {}

    def reset(self) -> None:
        """Clear per-run state."""
        self._clock = 0.0
        self._freq.clear()
        self._cost.clear()

    def on_function_start(
        self,
        function_name: str,
        startup_cost_s: float,
        memory_mb: float,
        now: float,
    ) -> None:
        """Observe a function start (frequency/cost statistics)."""
        self._freq[function_name] = self._freq.get(function_name, 0) + 1
        # Track the cold-ish cost: keep the max observed so a lucky warm
        # start does not make the function look cheap to restart.
        self._cost[function_name] = max(
            self._cost.get(function_name, 0.0), startup_cost_s
        )

    def priority(self, container: Container) -> float:
        """Greedy-dual priority of a warm container."""
        name = container.current_function or container.image.name
        freq = self._freq.get(name, 1)
        cost = self._cost.get(name, 1.0)
        size = max(container.memory_mb, 1.0)
        return self._clock + freq * cost / size

    def select_victims(
        self, pool: WarmPool, incoming: Container, now: float
    ) -> Optional[List[Container]]:
        """Containers to evict so the newcomer fits, or None to reject it."""
        if _never_fits(pool, incoming):
            return None
        needed = incoming.memory_mb - pool.free_mb
        if needed <= 0:
            return []
        ranked = sorted(pool.containers(), key=self.priority)
        victims: List[Container] = []
        freed = 0.0
        for container in ranked:
            victims.append(container)
            freed += container.memory_mb
            if freed >= needed:
                # Age the cache: the clock advances to the last victim's
                # priority, exactly as greedy-dual prescribes.
                self._clock = self.priority(container)
                return victims
        return None
