"""Control-plane event loop: the time source, the queue and periodic sweeps.

The :class:`EventLoop` owns the pieces of the simulator that define *when*
things happen: the deterministic event queue, a pluggable
:class:`TimeSource`, and an optional sweep hook that runs after every clock
advance (the simulator installs the warm-pool TTL sweep there, so expiry
happens exactly where the old monolithic loop ran it -- once per popped
event, after time has advanced).

Time is abstracted behind the :class:`TimeSource` protocol so sim-time and
wall-time are interchangeable:

* :class:`VirtualClock` -- the historical simulation clock: time is a plain
  float that only moves when the loop advances it.  Fully deterministic;
  every offline mode (batch, streaming, incremental) uses it, and the
  golden traces / differential oracles pin its behaviour byte-for-byte.
* :class:`WallClock` -- real elapsed time from ``time.monotonic`` relative
  to a construction-time epoch.  ``advance_to`` never *sets* wall time (it
  cannot); it only clamps the reading forward, so a loop driven by a wall
  clock processes events when reality catches up with them.

The online serving plane (:mod:`repro.serve`) samples a :class:`WallClock`
to timestamp arriving requests and then drives the same deterministic
event-loop machinery with those timestamps, which is what makes a serving
session replayable through the offline simulator (the ``serve_replay``
differential oracle).

Separating this layer from the container data plane means the policy
driver (:class:`~repro.cluster.simulator.ClusterSimulator`) contains no
time-keeping logic at all: it only decides what to do with the events the
loop hands it.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.cluster.events import Event, EventKind, EventQueue


@runtime_checkable
class TimeSource(Protocol):
    """Protocol every clock implementation satisfies.

    A time source exposes a monotone non-decreasing reading (:attr:`now`)
    and an :meth:`advance_to` operation.  For a virtual clock the operation
    *moves* time; for a wall clock it merely clamps the reading so it never
    runs behind an already-processed event.  Either way callers may rely
    on ``advance_to(t)`` returning a value ``>= t`` whenever ``t`` is not
    in the past, and on :attr:`now` never rewinding.
    """

    @property
    def now(self) -> float:
        """Current time in seconds."""
        ...  # pragma: no cover - protocol

    def advance_to(self, time: float) -> float:
        """Move (or clamp) the reading to at least ``time``; returns it."""
        ...  # pragma: no cover - protocol


class VirtualClock:
    """Monotonic simulation clock: time advances, never rewinds.

    The deterministic :class:`TimeSource`: ``now`` is a plain float moved
    only by :meth:`advance_to`.  This is byte-for-byte the historical
    ``SimulationClock`` behaviour that the golden traces pin.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance_to(self, time: float) -> float:
        """Advance to ``time`` (no-op when ``time`` is in the past)."""
        if time > self.now:
            self.now = time
        return self.now


#: Historical name of :class:`VirtualClock`, kept as an alias so existing
#: imports and pickles keep working.
SimulationClock = VirtualClock


class WallClock:
    """Real elapsed time relative to a construction-time epoch.

    A :class:`TimeSource` whose reading is ``time.monotonic() - epoch``
    (plus a clamp): wall time advances on its own, so :meth:`advance_to`
    cannot move it -- it only ratchets the *minimum* reading forward,
    guaranteeing the monotone-reading contract even across scheduler
    hiccups where a caller hands us an event time slightly ahead of the
    OS clock.  Timestamps are therefore directly comparable with the
    virtual timestamps of a replayed session (both start at 0.0).
    """

    def __init__(self, monotonic: Callable[[], float] = _time.monotonic) -> None:
        self._monotonic = monotonic
        self._epoch = monotonic()
        self._floor = 0.0

    @property
    def now(self) -> float:
        """Seconds elapsed since construction (never rewinds)."""
        reading = self._monotonic() - self._epoch
        if reading < self._floor:
            return self._floor
        return reading

    def advance_to(self, time: float) -> float:
        """Clamp the reading to at least ``time``; wall time is not moved."""
        if time > self._floor:
            self._floor = time
        return self.now


class EventLoop:
    """Deterministic event queue plus time source plus per-advance sweep.

    Parameters
    ----------
    sweep:
        Optional callable invoked with the current time after every clock
        advance (i.e. once per popped event and once per explicit
        :meth:`advance_to`).  The cluster simulator installs the
        container-lifecycle TTL sweep here.
    observer:
        Optional callable ``(kind, time)`` notified on every ``"schedule"``
        (with the event's time) and every ``"advance"`` (with the new clock
        reading).  The verification harness installs its clock-monotonicity
        monitor here; ``None`` (the default) keeps the loop observer-free.
    clock:
        The :class:`TimeSource` driving the loop.  Defaults to a fresh
        :class:`VirtualClock`, which reproduces the historical simulator
        behaviour exactly; pass a :class:`WallClock` for an online loop
        whose reading tracks real time.
    """

    def __init__(
        self,
        sweep: Optional[Callable[[float], None]] = None,
        observer: Optional[Callable[[str, float], None]] = None,
        clock: Optional[TimeSource] = None,
    ) -> None:
        self.clock: TimeSource = clock if clock is not None else VirtualClock()
        self._queue = EventQueue()
        self._sweep = sweep
        self._observer = observer

    @property
    def now(self) -> float:
        """Current time as read from the loop's time source."""
        return self.clock.now

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Queue an event at ``time``; returns the created event."""
        if self._observer is not None:
            self._observer("schedule", time)
        return self._queue.push(time, kind, payload)

    def pop_next(self) -> Optional[Event]:
        """Pop the earliest event, advance the clock, run the sweep.

        Returns ``None`` when the queue is empty (the clock and sweep are
        untouched in that case).
        """
        if not self._queue:
            return None
        event = self._queue.pop()
        self.clock.advance_to(event.time)
        if self._observer is not None:
            self._observer("advance", self.clock.now)
        if self._sweep is not None:
            self._sweep(self.clock.now)
        return event

    def advance_to(self, time: float) -> float:
        """Advance the clock with no event, running the observer and sweep.

        The online serving plane's janitor uses this to make "wall time
        passed with nothing due" a first-class loop operation: TTL expiry
        (the sweep hook) runs exactly as it would at an event pop, so idle
        containers scale to zero between requests.  Returns the new clock
        reading (which, for a :class:`WallClock`, may exceed ``time``).
        """
        now = self.clock.advance_to(time)
        if self._observer is not None:
            self._observer("advance", now)
        if self._sweep is not None:
            self._sweep(now)
        return now

    def peek(self) -> Optional[Event]:
        """The earliest queued event without popping it."""
        return self._queue.peek()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
