"""Control-plane event loop: the clock, the queue and periodic sweeps.

The :class:`EventLoop` owns the pieces of the simulator that define *when*
things happen: the deterministic event queue, the monotonic simulation
clock, and an optional sweep hook that runs after every clock advance
(the simulator installs the warm-pool TTL sweep there, so expiry happens
exactly where the old monolithic loop ran it -- once per popped event,
after time has advanced).

Separating this layer from the container data plane means the policy
driver (:class:`~repro.cluster.simulator.ClusterSimulator`) contains no
time-keeping logic at all: it only decides what to do with the events the
loop hands it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cluster.events import Event, EventKind, EventQueue


class SimulationClock:
    """Monotonic simulation clock: time advances, never rewinds."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance_to(self, time: float) -> float:
        """Advance to ``time`` (no-op when ``time`` is in the past)."""
        if time > self.now:
            self.now = time
        return self.now


class EventLoop:
    """Deterministic event queue plus clock plus per-event sweep hook.

    Parameters
    ----------
    sweep:
        Optional callable invoked with the current time after every clock
        advance (i.e. once per popped event).  The cluster simulator
        installs the container-lifecycle TTL sweep here.
    observer:
        Optional callable ``(kind, time)`` notified on every ``"schedule"``
        (with the event's time) and every ``"advance"`` (with the new clock
        reading).  The verification harness installs its clock-monotonicity
        monitor here; ``None`` (the default) keeps the loop observer-free.
    """

    def __init__(
        self,
        sweep: Optional[Callable[[float], None]] = None,
        observer: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.clock = SimulationClock()
        self._queue = EventQueue()
        self._sweep = sweep
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Queue an event at ``time``; returns the created event."""
        if self._observer is not None:
            self._observer("schedule", time)
        return self._queue.push(time, kind, payload)

    def pop_next(self) -> Optional[Event]:
        """Pop the earliest event, advance the clock, run the sweep.

        Returns ``None`` when the queue is empty (the clock and sweep are
        untouched in that case).
        """
        if not self._queue:
            return None
        event = self._queue.pop()
        self.clock.advance_to(event.time)
        if self._observer is not None:
            self._observer("advance", self.clock.now)
        if self._sweep is not None:
            self._sweep(self.clock.now)
        return event

    def peek(self) -> Optional[Event]:
        """The earliest queued event without popping it."""
        return self._queue.peek()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
