"""Fault injection for the cluster simulator.

Real serverless platforms see two perturbations the paper's clean model
ignores: containers occasionally die (OOM kills, node drains) instead of
returning to the warm pool, and registry pulls occasionally straggle.  The
:class:`FaultModel` injects both, deterministically per seed, so schedulers
can be evaluated under realistic noise and the test suite can assert that
every invariant (conservation, capacity, isolation) survives faults.

Faults are applied inside the simulator:

* **container crash** -- with probability ``crash_prob``, a container that
  finishes execution is destroyed instead of being kept warm (counted in
  ``Telemetry.container_crashes``);
* **pull straggler** -- with probability ``straggler_prob``, a start's PULL
  phase is multiplied by ``straggler_factor`` (counted in
  ``Telemetry.stragglers``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.containers.costmodel import StartupBreakdown


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection probabilities (all zero = no faults)."""

    crash_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name, p in (("crash_prob", self.crash_prob),
                        ("straggler_prob", self.straggler_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")

    @property
    def enabled(self) -> bool:
        """Whether any fault has a non-zero probability."""
        return self.crash_prob > 0 or self.straggler_prob > 0


class FaultModel:
    """Stateful fault sampler driven by a seeded generator."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def should_crash(self) -> bool:
        """Sample whether a finishing container dies instead of pooling."""
        if self.config.crash_prob <= 0:
            return False
        return bool(self._rng.random() < self.config.crash_prob)

    def perturb_breakdown(self, breakdown: StartupBreakdown) -> tuple:
        """Possibly stretch the PULL phase; returns (breakdown, straggled)."""
        cfg = self.config
        if (
            cfg.straggler_prob <= 0
            or breakdown.pull_s <= 0
            or self._rng.random() >= cfg.straggler_prob
        ):
            return breakdown, False
        return (
            replace(breakdown, pull_s=breakdown.pull_s * cfg.straggler_factor),
            True,
        )
